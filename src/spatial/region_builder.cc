#include "spatial/region_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "core/real.h"
#include "spatial/segment_grid.h"

namespace modb {

namespace {

using VertexKey = std::pair<double, double>;

VertexKey KeyOf(const Point& p) { return {p.x, p.y}; }

// ---------------------------------------------------------------------------
// Pairwise constraint validation.
// ---------------------------------------------------------------------------

Status CheckPair(const Seg& s, const Seg& t) {
  if (PIntersect(s, t)) {
    return Status::InvalidArgument("segments intersect properly: " +
                                   s.ToString() + " x " + t.ToString());
  }
  if (Overlap(s, t)) {
    return Status::InvalidArgument("segments overlap: " + s.ToString() +
                                   " / " + t.ToString());
  }
  return Status::OK();
}

Status ValidateNaive(const std::vector<Seg>& segs) {
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      // segs sorted by left endpoint: once j's left end passes i's right
      // end in x, no intersection with i is possible.
      if (segs[j].a().x > segs[i].b().x) break;
      MODB_RETURN_IF_ERROR(CheckPair(segs[i], segs[j]));
    }
  }
  return Status::OK();
}

Status ValidateWithGrid(const std::vector<Seg>& segs,
                        const SegmentGrid& grid) {
  Status failure = Status::OK();
  grid.VisitCandidatePairs([&](int32_t i, int32_t j) {
    Status s = CheckPair(segs[std::size_t(i)], segs[std::size_t(j)]);
    if (!s.ok()) {
      failure = std::move(s);
      return false;
    }
    return true;
  });
  return failure;
}

// ---------------------------------------------------------------------------
// Cycle extraction via directed face walks.
// ---------------------------------------------------------------------------

struct WalkResult {
  // Each cycle: segment indices in walk order.
  std::vector<std::vector<int32_t>> cycles;
};

Result<WalkResult> ExtractCycles(const std::vector<Seg>& segs) {
  const std::size_t n = segs.size();
  auto origin = [&](std::size_t e) -> const Point& {
    return (e & 1) ? segs[e >> 1].b() : segs[e >> 1].a();
  };
  auto target = [&](std::size_t e) -> const Point& {
    return (e & 1) ? segs[e >> 1].a() : segs[e >> 1].b();
  };

  // Outgoing directed edges per vertex, sorted counterclockwise.
  std::map<VertexKey, std::vector<std::size_t>> out_edges;
  for (std::size_t e = 0; e < 2 * n; ++e) {
    out_edges[KeyOf(origin(e))].push_back(e);
  }
  for (auto& [key, edges] : out_edges) {
    if (edges.size() % 2 != 0 || edges.size() < 2) {
      return Status::InvalidArgument(
          "region boundary has a vertex of odd or deficient degree");
    }
    std::sort(edges.begin(), edges.end(), [&](std::size_t x, std::size_t y) {
      const Point& o = origin(x);
      const Point& px = target(x);
      const Point& py = target(y);
      return std::atan2(px.y - o.y, px.x - o.x) <
             std::atan2(py.y - o.y, py.x - o.x);
    });
  }

  // next(e): at v = target(e), the outgoing edge immediately clockwise
  // from twin(e) in the CCW-sorted list (face interior on the left).
  auto next_edge = [&](std::size_t e) -> std::size_t {
    std::size_t twin = e ^ 1;
    const auto& edges = out_edges.at(KeyOf(target(e)));
    auto it = std::find(edges.begin(), edges.end(), twin);
    return it == edges.begin() ? edges.back() : *std::prev(it);
  };

  std::vector<bool> used(2 * n, false);
  // Directed walks; keep only simple ones (no vertex repeated), which are
  // the boundary walks of single cycles.
  std::vector<std::vector<std::size_t>> simple_walks;
  for (std::size_t start = 0; start < 2 * n; ++start) {
    if (used[start]) continue;
    std::vector<std::size_t> walk;
    std::set<VertexKey> visited;
    bool simple = true;
    std::size_t e = start;
    do {
      used[e] = true;
      walk.push_back(e);
      if (!visited.insert(KeyOf(origin(e))).second) simple = false;
      e = next_edge(e);
    } while (e != start);
    if (simple) simple_walks.push_back(std::move(walk));
  }

  // Deduplicate the two directed walks of each cycle via the undirected
  // segment-index set.
  std::set<std::vector<int32_t>> seen_sets;
  WalkResult result;
  std::vector<int> covered(n, 0);
  for (const auto& walk : simple_walks) {
    std::vector<int32_t> segs_in_walk;
    segs_in_walk.reserve(walk.size());
    for (std::size_t e : walk) segs_in_walk.push_back(int32_t(e >> 1));
    std::vector<int32_t> sorted = segs_in_walk;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      continue;  // Walk uses a segment twice: not a simple cycle.
    }
    if (!seen_sets.insert(sorted).second) continue;  // The twin walk.
    for (int32_t i : sorted) ++covered[i];
    result.cycles.push_back(std::move(segs_in_walk));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (covered[i] != 1) {
      return Status::InvalidArgument(
          "segment set does not decompose into simple cycles (segment " +
          segs[i].ToString() + " covered " + std::to_string(covered[i]) +
          " times)");
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Parity rays (plumbline) over the grid.
// ---------------------------------------------------------------------------

// Crossing parities of the upward vertical ray from `probe` against every
// cycle at once. Sets *on_boundary when the probe lies on some segment.
std::vector<uint8_t> CycleParitiesAt(const std::vector<Seg>& segs,
                                     const SegmentGrid& grid,
                                     const std::vector<int32_t>& cycle_of_seg,
                                     std::size_t num_cycles, int32_t self_cycle,
                                     const Point& probe, bool* on_boundary) {
  std::vector<uint8_t> parity(num_cycles, 0);
  *on_boundary = false;
  grid.VisitColumn(probe.x, [&](int32_t i) {
    const Seg& t = segs[std::size_t(i)];
    // The probe is an edge midpoint of self_cycle; only *other* cycles
    // grazing it force a retry.
    if (cycle_of_seg[std::size_t(i)] != self_cycle && t.Contains(probe)) {
      *on_boundary = true;
      return;
    }
    const Point& a = t.a();
    const Point& b = t.b();
    bool spans = (a.x <= probe.x) != (b.x <= probe.x);
    if (!spans) return;
    double y_at = a.y + (probe.x - a.x) * (b.y - a.y) / (b.x - a.x);
    if (y_at > probe.y) parity[std::size_t(cycle_of_seg[std::size_t(i)])] ^= 1;
  });
  return parity;
}

// Inside-above flag of `s` via exact parity counting over the grid.
bool ComputeInsideAbove(const Seg& s, std::size_t self,
                        const std::vector<Seg>& segs,
                        const SegmentGrid& grid) {
  Point m = s.Midpoint();
  int parity = 0;
  if (!s.IsVertical()) {
    // Crossings of the upward vertical ray from m, excluding s itself.
    grid.VisitColumn(m.x, [&](int32_t i) {
      if (std::size_t(i) == self) return;
      const Seg& t = segs[std::size_t(i)];
      const Point& a = t.a();
      const Point& b = t.b();
      bool spans = (a.x <= m.x) != (b.x <= m.x);
      if (!spans) return;
      double y_at = a.y + (m.x - a.x) * (b.y - a.y) / (b.x - a.x);
      if (y_at > m.y) ++parity;
    });
    return (parity % 2) == 1;
  }
  // Vertical segment: inside_above means "interior to the left"; count
  // crossings of the leftward horizontal ray from m.
  grid.VisitRow(m.y, [&](int32_t i) {
    if (std::size_t(i) == self) return;
    const Seg& t = segs[std::size_t(i)];
    const Point& a = t.a();
    const Point& b = t.b();
    bool spans = (a.y <= m.y) != (b.y <= m.y);
    if (!spans) return;
    double x_at = a.x + (m.y - a.y) * (b.x - a.x) / (b.y - a.y);
    if (x_at < m.x) ++parity;
  });
  return (parity % 2) == 1;
}

}  // namespace

Result<Region> RegionBuilder::Close(std::vector<Seg> segs,
                                    Validation validation) {
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  if (segs.empty()) return Region();
  if (segs.size() < 3) {
    return Status::InvalidArgument("a region needs at least 3 segments");
  }

  SegmentGrid grid(segs);
  MODB_RETURN_IF_ERROR(validation == Validation::kGrid
                           ? ValidateWithGrid(segs, grid)
                           : ValidateNaive(segs));

  Result<WalkResult> walks = ExtractCycles(segs);
  if (!walks.ok()) return walks.status();
  const std::vector<std::vector<int32_t>>& cycle_segs = walks->cycles;
  const std::size_t num_cycles = cycle_segs.size();

  std::vector<int32_t> cycle_of_seg(segs.size(), -1);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    for (int32_t i : cycle_segs[c]) cycle_of_seg[std::size_t(i)] = int32_t(c);
  }

  // Per-cycle validation: size and the no-touch-within-a-cycle rule
  // (candidate pairs from the grid; only same-cycle pairs are checked).
  for (const auto& cyc : cycle_segs) {
    if (cyc.size() < 3) {
      return Status::InvalidArgument("cycle with fewer than 3 segments");
    }
  }
  {
    Status failure = Status::OK();
    grid.VisitCandidatePairs([&](int32_t i, int32_t j) {
      if (cycle_of_seg[std::size_t(i)] != cycle_of_seg[std::size_t(j)]) {
        return true;
      }
      if (Touch(segs[std::size_t(i)], segs[std::size_t(j)])) {
        failure = Status::InvalidArgument(
            "segments of one cycle touch: " + segs[std::size_t(i)].ToString() +
            " / " + segs[std::size_t(j)].ToString());
        return false;
      }
      return true;
    });
    MODB_RETURN_IF_ERROR(failure);
  }

  // Containment: one plumbline ray per cycle gives its parity against
  // every other cycle at once. depth = number of strictly containing
  // cycles; even depth → outer cycle, odd → hole.
  std::vector<std::vector<uint8_t>> inside(num_cycles);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    bool decided = false;
    for (int32_t si : cycle_segs[c]) {
      Point probe = segs[std::size_t(si)].Midpoint();
      bool on_boundary = false;
      std::vector<uint8_t> parity =
          CycleParitiesAt(segs, grid, cycle_of_seg, num_cycles, int32_t(c),
                          probe, &on_boundary);
      if (on_boundary) continue;  // Probe grazed another cycle; retry.
      parity[c] = 0;  // A cycle does not contain itself.
      inside[c] = std::move(parity);
      decided = true;
      break;
    }
    if (!decided) {
      return Status::InvalidArgument(
          "cannot separate touching cycles (shared edges?)");
    }
  }
  std::vector<int> depth(num_cycles, 0);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    for (std::size_t d = 0; d < num_cycles; ++d) depth[c] += inside[c][d];
  }

  // Assign holes to faces: a hole's face is the containing outer cycle
  // one level up.
  std::vector<int32_t> face_of_cycle(num_cycles, -1);
  std::vector<int32_t> outer_cycles;
  for (std::size_t c = 0; c < num_cycles; ++c) {
    if (depth[c] % 2 == 0) outer_cycles.push_back(int32_t(c));
  }
  std::vector<FaceRecord> faces(outer_cycles.size());
  for (std::size_t f = 0; f < outer_cycles.size(); ++f) {
    face_of_cycle[std::size_t(outer_cycles[f])] = int32_t(f);
  }
  for (std::size_t c = 0; c < num_cycles; ++c) {
    if (depth[c] % 2 == 0) continue;
    int32_t parent = -1;
    for (int32_t oc : outer_cycles) {
      if (depth[std::size_t(oc)] == depth[c] - 1 && inside[c][std::size_t(oc)]) {
        parent = oc;
        break;
      }
    }
    if (parent < 0) {
      return Status::InvalidArgument("hole cycle without containing face");
    }
    face_of_cycle[c] = face_of_cycle[std::size_t(parent)];
    ++faces[std::size_t(face_of_cycle[c])].num_holes;
  }

  // Area, perimeter, bounding box.
  double area = 0;
  double perimeter = 0;
  Rect bbox;
  for (std::size_t c = 0; c < num_cycles; ++c) {
    // Vertices in walk order for the signed area.
    std::vector<Point> ring;
    const auto& cyc = cycle_segs[c];
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const Seg& cur = segs[std::size_t(cyc[i])];
      const Seg& nxt = segs[std::size_t(cyc[(i + 1) % cyc.size()])];
      ring.push_back(nxt.HasEndpoint(cur.a()) ? cur.b() : cur.a());
    }
    double a = std::fabs(SignedArea(ring));
    area += (depth[c] % 2 == 0) ? a : -a;
    for (int32_t si : cyc) {
      const Seg& s = segs[std::size_t(si)];
      perimeter += s.Length();
      bbox.Extend(s.a());
      bbox.Extend(s.b());
    }
  }

  // Build the sorted halfsegment array with cycle/face ids, inside-above
  // flags, and next-in-cycle links.
  std::vector<HalfSegment> hs = MakeHalfSegments(segs);
  std::map<std::pair<VertexKey, VertexKey>, int32_t> left_index;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    if (hs[i].left_dominating) {
      left_index[{KeyOf(hs[i].seg.a()), KeyOf(hs[i].seg.b())}] = int32_t(i);
    }
  }
  auto index_of = [&](const Seg& s) {
    return left_index.at({KeyOf(s.a()), KeyOf(s.b())});
  };
  std::vector<int32_t> next_left(segs.size(), -1);  // By segment index.
  for (std::size_t c = 0; c < num_cycles; ++c) {
    const auto& cyc = cycle_segs[c];
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      next_left[std::size_t(cyc[i])] =
          index_of(segs[std::size_t(cyc[(i + 1) % cyc.size()])]);
    }
  }
  // Map halfsegments back to their segment index for attribute fill.
  std::map<std::pair<VertexKey, VertexKey>, int32_t> seg_index;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    seg_index[{KeyOf(segs[i].a()), KeyOf(segs[i].b())}] = int32_t(i);
  }
  // Compute inside_above once per segment, then share with both halves.
  std::vector<bool> above(segs.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    above[i] = ComputeInsideAbove(segs[i], i, segs, grid);
  }
  for (HalfSegment& h : hs) {
    int32_t si = seg_index.at({KeyOf(h.seg.a()), KeyOf(h.seg.b())});
    h.cycle = cycle_of_seg[std::size_t(si)];
    h.face = face_of_cycle[std::size_t(h.cycle)];
    h.next_in_cycle = next_left[std::size_t(si)];
    h.inside_above = above[std::size_t(si)];
  }

  // Cycle and face records.
  std::vector<CycleRecord> cycles(num_cycles);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    cycles[c].first_halfsegment =
        index_of(segs[std::size_t(cycle_segs[c][0])]);
    cycles[c].face = face_of_cycle[c];
    cycles[c].is_hole = (depth[c] % 2 == 1);
    cycles[c].size = int32_t(cycle_segs[c].size());
  }
  // Chain cycles within each face: outer first, then holes.
  for (std::size_t f = 0; f < outer_cycles.size(); ++f) {
    faces[f].first_cycle = outer_cycles[f];
    int32_t tail = outer_cycles[f];
    for (std::size_t c = 0; c < num_cycles; ++c) {
      if (!cycles[c].is_hole || face_of_cycle[c] != int32_t(f)) continue;
      cycles[std::size_t(tail)].next_cycle_in_face = int32_t(c);
      tail = int32_t(c);
    }
  }

  return Region(std::move(hs), std::move(cycles), std::move(faces), area,
                perimeter, bbox);
}

}  // namespace modb
