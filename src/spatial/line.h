// The `line` type (Section 3.2.2): a finite set of line segments with the
// single constraint that collinear segments are disjoint
//   D_line = {S ⊂ Seg | ∀s,t ∈ S: s ≠ t ∧ collinear(s,t) ⇒ disjoint(s,t)},
// which guarantees a unique representation. The paper deliberately uses
// this unstructured segment-set view (Figure 2c) rather than a polyline or
// graph view, so that e.g. trajectories of moving points are cheap to
// build.

#ifndef MODB_SPATIAL_LINE_H_
#define MODB_SPATIAL_LINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/halfsegment.h"
#include "spatial/points.h"
#include "spatial/seg.h"

namespace modb {

/// merge-segs of Section 3.2.6: merges collinear segments that share at
/// least one point into maximal segments. The result satisfies the D_line
/// constraint.
std::vector<Seg> MergeSegs(std::vector<Seg> segs);

/// A line value in canonical form (sorted segments, no collinear pair
/// sharing a point).
class Line {
 public:
  /// The empty line.
  Line() = default;

  /// Strict factory: rejects inputs violating the D_line constraint.
  static Result<Line> Make(std::vector<Seg> segs);

  /// Canonicalizing factory: merges collinear touching/overlapping
  /// segments (merge-segs), so any set of segments yields a valid value —
  /// Figure 2(c)'s observation that every segment set denotes a line.
  static Line Canonical(std::vector<Seg> segs);

  bool IsEmpty() const { return segs_.empty(); }
  std::size_t NumSegments() const { return segs_.size(); }
  const std::vector<Seg>& segments() const { return segs_; }
  const Seg& segment(std::size_t i) const { return segs_[i]; }

  /// Total Euclidean length (the `length` operation of Section 2).
  double Length() const;
  Rect BoundingBox() const;

  /// True iff p lies on some segment of the line.
  bool Contains(const Point& p) const;

  /// The ordered halfsegment array of Section 4.1.
  std::vector<HalfSegment> HalfSegments() const {
    return MakeHalfSegments(segs_);
  }

  /// Set operations with line semantics (1-dimensional parts only).
  static Line Union(const Line& a, const Line& b);
  /// Common 1-dimensional parts (collinear overlaps).
  static Line Intersection(const Line& a, const Line& b);
  /// a minus the 1-dimensional parts shared with b.
  static Line Difference(const Line& a, const Line& b);
  /// 0-dimensional intersections: points where segments of a and b cross
  /// or touch without collinear overlap.
  static Points CrossingPoints(const Line& a, const Line& b);

  friend bool operator==(const Line& a, const Line& b) {
    return a.segs_ == b.segs_;
  }

  std::string ToString() const;

 private:
  explicit Line(std::vector<Seg> sorted) : segs_(std::move(sorted)) {}

  std::vector<Seg> segs_;
};

}  // namespace modb

#endif  // MODB_SPATIAL_LINE_H_
