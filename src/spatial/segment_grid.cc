#include "spatial/segment_grid.h"

#include <algorithm>
#include <cmath>

#include "spatial/bbox.h"

namespace modb {

SegmentGrid::SegmentGrid(const std::vector<Seg>& segs) : segs_(&segs) {
  const std::size_t n = segs.size();
  if (n == 0) return;
  Rect bbox;
  for (const Seg& s : segs) {
    bbox.Extend(s.a());
    bbox.Extend(s.b());
  }
  dim_ = std::max(1, int(std::sqrt(double(n))));
  min_x_ = bbox.min_x;
  min_y_ = bbox.min_y;
  wx_ = std::max(bbox.max_x - bbox.min_x, 1e-9) / dim_;
  wy_ = std::max(bbox.max_y - bbox.min_y, 1e-9) / dim_;
  cells_.resize(std::size_t(dim_) * dim_);
  for (std::size_t i = 0; i < n; ++i) {
    Rect r = segs[i].BoundingBox();
    int x0 = CellX(r.min_x), x1 = CellX(r.max_x);
    int y0 = CellY(r.min_y), y1 = CellY(r.max_y);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        cells_[std::size_t(cy) * dim_ + cx].push_back(int32_t(i));
      }
    }
  }
  stamp_.assign(n, 0);
}

int SegmentGrid::CellX(double x) const {
  return std::clamp(int((x - min_x_) / wx_), 0, dim_ - 1);
}

int SegmentGrid::CellY(double y) const {
  return std::clamp(int((y - min_y_) / wy_), 0, dim_ - 1);
}

void SegmentGrid::NextEpoch() const {
  ++epoch_;
  if (epoch_ == 0) {  // Wrapped: reset all stamps.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

bool SegmentGrid::MarkOnce(int32_t i) const {
  if (stamp_[std::size_t(i)] == epoch_) return false;
  stamp_[std::size_t(i)] = epoch_;
  return true;
}

}  // namespace modb
