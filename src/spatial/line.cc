#include "spatial/line.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace modb {

namespace {

// Union-find over segment indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Parameter of p along the supporting line of s (dominant axis).
double ParamOf(const Seg& s, const Point& p) {
  double dx = s.b().x - s.a().x;
  double dy = s.b().y - s.a().y;
  if (std::fabs(dx) >= std::fabs(dy)) return (p.x - s.a().x) / dx;
  return (p.y - s.a().y) / dy;
}

Point Lerp(const Seg& s, double u) {
  return Point(s.a().x + u * (s.b().x - s.a().x),
               s.a().y + u * (s.b().y - s.a().y));
}

}  // namespace

std::vector<Seg> MergeSegs(std::vector<Seg> segs) {
  const std::size_t n = segs.size();
  if (n <= 1) return segs;
  // Group collinear segments that share at least one point; each group is
  // a contiguous piece of one supporting line (connectivity is transitive
  // along the line).
  DisjointSets ds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (Collinear(segs[i], segs[j]) && SegsIntersect(segs[i], segs[j])) {
        ds.Merge(i, j);
      }
    }
  }
  std::vector<Seg> out;
  std::vector<bool> done(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t root = ds.Find(i);
    if (done[root]) continue;
    done[root] = true;
    // Collect the group's extreme endpoints along segs[root].
    double lo = 0, hi = 1;
    bool first = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (ds.Find(j) != root) continue;
      double u0 = ParamOf(segs[root], segs[j].a());
      double u1 = ParamOf(segs[root], segs[j].b());
      if (first) {
        lo = std::min(u0, u1);
        hi = std::max(u0, u1);
        first = false;
      } else {
        lo = std::min({lo, u0, u1});
        hi = std::max({hi, u0, u1});
      }
    }
    auto merged = Seg::Make(Lerp(segs[root], lo), Lerp(segs[root], hi));
    if (merged.ok()) out.push_back(*merged);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<Line> Line::Make(std::vector<Seg> segs) {
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      // Segments are sorted by left endpoint; once j starts past i's
      // right end in x, no later j can share a point with i.
      if (segs[j].a().x > segs[i].b().x) break;
      if (Collinear(segs[i], segs[j]) && SegsIntersect(segs[i], segs[j])) {
        return Status::InvalidArgument(
            "line value contains collinear non-disjoint segments: " +
            segs[i].ToString() + " and " + segs[j].ToString());
      }
    }
  }
  return Line(std::move(segs));
}

Line Line::Canonical(std::vector<Seg> segs) {
  return Line(MergeSegs(std::move(segs)));
}

double Line::Length() const {
  double total = 0;
  for (const Seg& s : segs_) total += s.Length();
  return total;
}

Rect Line::BoundingBox() const {
  Rect r;
  for (const Seg& s : segs_) {
    r.Extend(s.a());
    r.Extend(s.b());
  }
  return r;
}

bool Line::Contains(const Point& p) const {
  for (const Seg& s : segs_) {
    if (s.Contains(p)) return true;
  }
  return false;
}

Line Line::Union(const Line& a, const Line& b) {
  std::vector<Seg> all = a.segs_;
  all.insert(all.end(), b.segs_.begin(), b.segs_.end());
  return Canonical(std::move(all));
}

Line Line::Intersection(const Line& a, const Line& b) {
  std::vector<Seg> out;
  for (const Seg& s : a.segs_) {
    for (const Seg& t : b.segs_) {
      SegIntersection x = Intersect(s, t);
      if (x.kind == SegIntersection::Kind::kSegment) {
        auto frag = Seg::Make(x.seg_a, x.seg_b);
        if (frag.ok()) out.push_back(*frag);
      }
    }
  }
  return Canonical(std::move(out));
}

Line Line::Difference(const Line& a, const Line& b) {
  std::vector<Seg> out;
  for (const Seg& s : a.segs_) {
    // Collect the parameter intervals of s covered by b, then keep the
    // complement.
    std::vector<std::pair<double, double>> covered;
    for (const Seg& t : b.segs_) {
      SegIntersection x = Intersect(s, t);
      if (x.kind != SegIntersection::Kind::kSegment) continue;
      double u0 = ParamOf(s, x.seg_a);
      double u1 = ParamOf(s, x.seg_b);
      covered.emplace_back(std::min(u0, u1), std::max(u0, u1));
    }
    std::sort(covered.begin(), covered.end());
    double pos = 0;
    double eps = kEpsilon / std::max(s.Length(), kEpsilon);
    for (const auto& [lo, hi] : covered) {
      if (lo > pos + eps) {
        auto piece = Seg::Make(Lerp(s, pos), Lerp(s, lo));
        if (piece.ok()) out.push_back(*piece);
      }
      pos = std::max(pos, hi);
    }
    if (pos < 1 - eps) {
      auto piece = Seg::Make(Lerp(s, pos), Lerp(s, 1));
      if (piece.ok()) out.push_back(*piece);
    }
  }
  return Canonical(std::move(out));
}

Points Line::CrossingPoints(const Line& a, const Line& b) {
  std::vector<Point> pts;
  for (const Seg& s : a.segs_) {
    for (const Seg& t : b.segs_) {
      SegIntersection x = Intersect(s, t);
      if (x.kind == SegIntersection::Kind::kPoint) pts.push_back(x.point);
    }
  }
  return Points::FromVector(std::move(pts));
}

std::string Line::ToString() const {
  std::ostringstream os;
  os << "line(" << segs_.size() << " segs)";
  return os.str();
}

}  // namespace modb
