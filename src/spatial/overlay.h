// Boolean set operations on regions via segment arrangement + side
// classification, feeding RegionBuilder::Close — the halfsegment-pipeline
// approach of the ROSE algebra implementation [GdRS95] the paper builds
// its data structures for.
//
// Pipeline: node all boundary segments at mutual intersections, snap the
// resulting endpoints, classify for each sub-segment which operand
// interiors lie immediately above/below it, and keep exactly the
// sub-segments where the result interior differs across the two sides.

#ifndef MODB_SPATIAL_OVERLAY_H_
#define MODB_SPATIAL_OVERLAY_H_

#include "core/status.h"
#include "spatial/region.h"

namespace modb {

enum class BoolOp { kUnion, kIntersection, kDifference };

/// Applies a boolean operation to two regions.
Result<Region> Overlay(const Region& a, const Region& b, BoolOp op);

inline Result<Region> Union(const Region& a, const Region& b) {
  return Overlay(a, b, BoolOp::kUnion);
}
inline Result<Region> Intersection(const Region& a, const Region& b) {
  return Overlay(a, b, BoolOp::kIntersection);
}
inline Result<Region> Difference(const Region& a, const Region& b) {
  return Overlay(a, b, BoolOp::kDifference);
}

}  // namespace modb

#endif  // MODB_SPATIAL_OVERLAY_H_
