// The segment carrier Seg = {(u, v) | u, v ∈ Point, u < v} of Section
// 3.2.2 together with the predicates the paper's definitions rest on:
// collinear, p-intersect (proper intersection), touch, and meet.

#ifndef MODB_SPATIAL_SEG_H_
#define MODB_SPATIAL_SEG_H_

#include <optional>
#include <ostream>
#include <string>
#include <variant>

#include "core/status.h"
#include "spatial/bbox.h"
#include "spatial/point.h"

namespace modb {

/// A line segment with normalized endpoints a < b (lexicographic).
class Seg {
 public:
  /// Validating factory; rejects degenerate segments (p == q) and
  /// normalizes endpoint order.
  static Result<Seg> Make(const Point& p, const Point& q) {
    if (p == q) return Status::InvalidArgument("degenerate segment");
    return p < q ? Seg(p, q) : Seg(q, p);
  }

  /// Left (smaller) endpoint.
  const Point& a() const { return a_; }
  /// Right (larger) endpoint.
  const Point& b() const { return b_; }

  double Length() const { return Distance(a_, b_); }
  Point Midpoint() const { return Point((a_.x + b_.x) / 2, (a_.y + b_.y) / 2); }
  Rect BoundingBox() const {
    Rect r = Rect::Of(a_);
    r.Extend(b_);
    return r;
  }
  bool IsVertical() const { return a_.x == b_.x; }

  /// True iff p lies on the segment (endpoints included).
  bool Contains(const Point& p) const;
  /// True iff p lies in the segment's interior (endpoints excluded).
  bool InteriorContains(const Point& p) const;
  /// True iff p is one of the endpoints.
  bool HasEndpoint(const Point& p) const { return p == a_ || p == b_; }

  friend bool operator==(const Seg& s, const Seg& t) {
    return s.a_ == t.a_ && s.b_ == t.b_;
  }
  /// Lexicographic order on (a, b); the canonical order for segment sets.
  friend bool operator<(const Seg& s, const Seg& t) {
    if (!(s.a_ == t.a_)) return s.a_ < t.a_;
    return s.b_ < t.b_;
  }

  std::string ToString() const;

 private:
  Seg(const Point& a, const Point& b) : a_(a), b_(b) {}

  Point a_;
  Point b_;
};

std::ostream& operator<<(std::ostream& os, const Seg& s);

/// collinear(s, t): the segments lie on the same infinite line.
bool Collinear(const Seg& s, const Seg& t);

/// p-intersect(s, t): the segments intersect in a point that is interior
/// to both (a "proper" crossing).
bool PIntersect(const Seg& s, const Seg& t);

/// touch(s, t): an endpoint of one segment lies in the interior of the
/// other.
bool Touch(const Seg& s, const Seg& t);

/// meet(s, t): the segments share an endpoint.
bool Meet(const Seg& s, const Seg& t);

/// True iff the segments are collinear and share more than one point.
/// This is the configuration D_line forbids ("collinear ⇒ disjoint").
bool Overlap(const Seg& s, const Seg& t);

/// True iff the segments share at least one point.
bool SegsIntersect(const Seg& s, const Seg& t);

/// Result of intersecting two segments.
struct SegIntersection {
  enum class Kind { kNone, kPoint, kSegment };
  Kind kind = Kind::kNone;
  Point point;     // Valid when kind == kPoint.
  Point seg_a;     // Valid when kind == kSegment (seg_a < seg_b).
  Point seg_b;
};

/// Exact-configuration intersection of two segments (point crossing,
/// collinear overlap, or none).
SegIntersection Intersect(const Seg& s, const Seg& t);

/// Distance from a point to a segment.
double Distance(const Point& p, const Seg& s);

/// Minimum distance between two segments (0 when they intersect).
double Distance(const Seg& s, const Seg& t);

}  // namespace modb

#endif  // MODB_SPATIAL_SEG_H_
