// The `point` type of the SPATIAL kind (Section 3.2.2): a pair (x, y) in
// the Euclidean plane with the paper's lexicographic order
//   p < q  ⇔  p.x < q.x ∨ (p.x = q.x ∧ p.y < q.y).

#ifndef MODB_SPATIAL_POINT_H_
#define MODB_SPATIAL_POINT_H_

#include <cmath>
#include <ostream>
#include <string>

#include "core/real.h"

namespace modb {

/// A defined point value. The undefined point (D_point = Point ∪ {⊥}) is
/// modeled as BaseValue<Point> where an undefined attribute is needed.
struct Point {
  double x = 0;
  double y = 0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  friend Point operator+(const Point& a, const Point& b) {
    return Point(a.x + b.x, a.y + b.y);
  }
  friend Point operator-(const Point& a, const Point& b) {
    return Point(a.x - b.x, a.y - b.y);
  }
  friend Point operator*(const Point& a, double k) {
    return Point(a.x * k, a.y * k);
  }
  friend Point operator*(double k, const Point& a) { return a * k; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  /// Lexicographic order on points (Section 3.2.2).
  friend bool operator<(const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  }
  friend bool operator<=(const Point& a, const Point& b) {
    return a == b || a < b;
  }
  friend bool operator>(const Point& a, const Point& b) { return b < a; }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// 2D cross product (b - a) × (c - a).
inline double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Dot product of vectors (b - a) and (c - a).
inline double Dot(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.x - a.x) + (b.y - a.y) * (c.y - a.y);
}

inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Orientation of c relative to the directed line a→b with relative
/// tolerance: +1 left turn, -1 right turn, 0 collinear.
int Orientation(const Point& a, const Point& b, const Point& c);

/// True iff a and b coincide under the library epsilon.
inline bool ApproxEqual(const Point& a, const Point& b,
                        double eps = kEpsilon) {
  return ApproxEq(a.x, b.x, eps) && ApproxEq(a.y, b.y, eps);
}

}  // namespace modb

#endif  // MODB_SPATIAL_POINT_H_
