// A uniform spatial hash over a segment set. Segments are registered in
// every grid cell their bounding box overlaps, which makes three queries
// cheap and sound:
//   * candidate pairs for pairwise-intersection validation (two
//     intersecting segments always share the cell of the intersection),
//   * all segments whose x-range can contain a given x (one column) —
//     the candidate set for vertical plumbline rays,
//   * all segments whose y-range can contain a given y (one row) — for
//     horizontal rays.
// This is what keeps RegionBuilder::Close near-linear on realistic
// boundaries instead of quadratic.

#ifndef MODB_SPATIAL_SEGMENT_GRID_H_
#define MODB_SPATIAL_SEGMENT_GRID_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spatial/seg.h"

namespace modb {

class SegmentGrid {
 public:
  explicit SegmentGrid(const std::vector<Seg>& segs);

  /// Calls fn(index) once for every segment registered in the column of
  /// cells containing x (a superset of the segments whose x-range covers
  /// x).
  template <typename Fn>
  void VisitColumn(double x, Fn&& fn) const {
    if (dim_ == 0) return;
    int cx = CellX(x);
    NextEpoch();
    for (int cy = 0; cy < dim_; ++cy) {
      for (int32_t i : cells_[std::size_t(cy) * dim_ + cx]) {
        if (MarkOnce(i)) fn(i);
      }
    }
  }

  /// Calls fn(index) once for every segment registered in any column
  /// overlapping [min_x, max_x] — a sound candidate superset for
  /// intersection queries against that x-range.
  template <typename Fn>
  void VisitXRange(double min_x, double max_x, Fn&& fn) const {
    if (dim_ == 0) return;
    int c0 = CellX(min_x);
    int c1 = CellX(max_x);
    NextEpoch();
    for (int cx = c0; cx <= c1; ++cx) {
      for (int cy = 0; cy < dim_; ++cy) {
        for (int32_t i : cells_[std::size_t(cy) * dim_ + cx]) {
          if (MarkOnce(i)) fn(i);
        }
      }
    }
  }

  /// Row-wise analogue for horizontal rays.
  template <typename Fn>
  void VisitRow(double y, Fn&& fn) const {
    if (dim_ == 0) return;
    int cy = CellY(y);
    NextEpoch();
    for (int cx = 0; cx < dim_; ++cx) {
      for (int32_t i : cells_[std::size_t(cy) * dim_ + cx]) {
        if (MarkOnce(i)) fn(i);
      }
    }
  }

  /// Calls fn(i, j) with i < j once for every pair of segments sharing a
  /// cell — the sound candidate set for pairwise intersection checks.
  template <typename Fn>
  bool VisitCandidatePairs(Fn&& fn) const {
    std::vector<uint64_t> seen;
    seen.reserve(segs_->size() * 4);
    for (const auto& cell : cells_) {
      for (std::size_t a = 0; a < cell.size(); ++a) {
        for (std::size_t b = a + 1; b < cell.size(); ++b) {
          int32_t i = cell[a], j = cell[b];
          if (i > j) std::swap(i, j);
          seen.push_back((uint64_t(uint32_t(i)) << 32) | uint32_t(j));
        }
      }
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (uint64_t key : seen) {
      if (!fn(int32_t(key >> 32), int32_t(key & 0xffffffffu))) return false;
    }
    return true;
  }

  int dim() const { return dim_; }

 private:
  int CellX(double x) const;
  int CellY(double y) const;
  void NextEpoch() const;
  bool MarkOnce(int32_t i) const;

  const std::vector<Seg>* segs_;
  int dim_ = 0;
  double min_x_ = 0, min_y_ = 0, wx_ = 1, wy_ = 1;
  std::vector<std::vector<int32_t>> cells_;
  // Deduplication stamps for the visit methods.
  mutable std::vector<uint32_t> stamp_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace modb

#endif  // MODB_SPATIAL_SEGMENT_GRID_H_
