// Non-temporal operations of the abstract model (Section 2, [GBE+98]):
// predicates, distance, and direction across the spatial types. These are
// the operations that temporal lifting (src/temporal/lifted_ops.h) makes
// applicable to moving types.

#ifndef MODB_SPATIAL_SPATIAL_OPS_H_
#define MODB_SPATIAL_SPATIAL_OPS_H_

#include "spatial/line.h"
#include "spatial/points.h"
#include "spatial/region.h"

namespace modb {

// -- inside ----------------------------------------------------------------

/// Point-set containment of p in r (boundary counts as inside).
bool Inside(const Point& p, const Region& r);
/// True iff every point of ps is inside r.
bool Inside(const Points& ps, const Region& r);
/// True iff every segment of l is inside r.
bool Inside(const Line& l, const Region& r);
/// True iff region a is a subset of region b.
bool Inside(const Region& a, const Region& b);

// -- intersects ------------------------------------------------------------

bool Intersects(const Line& a, const Line& b);
bool Intersects(const Line& l, const Region& r);
bool Intersects(const Region& a, const Region& b);

// -- intersection / clipping -------------------------------------------------

/// The 1-dimensional part of l ∩ r: the line clipped to the region
/// (boundary included). Segments are split at boundary crossings and the
/// inside pieces kept.
Line Intersection(const Line& l, const Region& r);

/// The part of l outside r (complement of the clip).
Line Difference(const Line& l, const Region& r);

// -- distance --------------------------------------------------------------

double SpatialDistance(const Point& p, const Points& ps);
double SpatialDistance(const Point& p, const Line& l);
/// 0 when p is inside r, else distance to r's boundary.
double SpatialDistance(const Point& p, const Region& r);
double SpatialDistance(const Line& a, const Line& b);
double SpatialDistance(const Region& a, const Region& b);

// -- direction -------------------------------------------------------------

/// Direction from p to q in degrees in [0, 360); -1 when p == q
/// (undefined in the abstract model).
double Direction(const Point& p, const Point& q);

}  // namespace modb

#endif  // MODB_SPATIAL_SPATIAL_OPS_H_
