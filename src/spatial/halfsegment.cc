#include "spatial/halfsegment.h"

#include <algorithm>
#include <cmath>

namespace modb {

bool HalfSegmentLess(const HalfSegment& s, const HalfSegment& t) {
  const Point& dp = s.DominatingPoint();
  const Point& dq = t.DominatingPoint();
  if (!(dp == dq)) return dp < dq;
  // Equal dominating points: right halfsegments precede left ones, so a
  // sweep retires a segment before admitting its successor.
  if (s.left_dominating != t.left_dominating) return !s.left_dominating;
  // Same flavor: angular order of the secondary endpoint around the
  // dominating point.
  const Point& p = s.SecondaryPoint();
  const Point& q = t.SecondaryPoint();
  double ang_p = std::atan2(p.y - dp.y, p.x - dp.x);
  double ang_q = std::atan2(q.y - dq.y, q.x - dq.x);
  if (ang_p != ang_q) return ang_p < ang_q;
  // Collinear same-direction halfsegments: shorter first for determinism.
  return SquaredDistance(dp, p) < SquaredDistance(dq, q);
}

std::vector<HalfSegment> MakeHalfSegments(const std::vector<Seg>& segs) {
  std::vector<HalfSegment> out;
  out.reserve(segs.size() * 2);
  for (const Seg& s : segs) {
    out.push_back(HalfSegment{.seg = s, .left_dominating = true});
    out.push_back(HalfSegment{.seg = s, .left_dominating = false});
  }
  std::sort(out.begin(), out.end(), HalfSegmentLess);
  return out;
}

}  // namespace modb
