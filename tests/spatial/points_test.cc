#include "spatial/points.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

TEST(Points, CanonicalSortedUnique) {
  Points ps = Points::FromVector({{2, 2}, {1, 1}, {2, 2}, {0, 5}});
  ASSERT_EQ(ps.Size(), 3u);
  EXPECT_EQ(ps.point(0), Point(0, 5));
  EXPECT_EQ(ps.point(1), Point(1, 1));
  EXPECT_EQ(ps.point(2), Point(2, 2));
}

TEST(Points, EqualityIsArrayEquality) {
  // Section 4: equal set values iff equal array representations.
  Points a = Points::FromVector({{1, 1}, {2, 2}});
  Points b = Points::FromVector({{2, 2}, {1, 1}, {1, 1}});
  EXPECT_EQ(a, b);
}

TEST(Points, ContainsBinarySearch) {
  Points ps = Points::FromVector({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_TRUE(ps.Contains(Point(2, 2)));
  EXPECT_FALSE(ps.Contains(Point(2, 3)));
}

TEST(Points, BoundingBox) {
  Points ps = Points::FromVector({{1, 5}, {-2, 2}, {4, 0}});
  Rect r = ps.BoundingBox();
  EXPECT_EQ(r.min_x, -2);
  EXPECT_EQ(r.min_y, 0);
  EXPECT_EQ(r.max_x, 4);
  EXPECT_EQ(r.max_y, 5);
}

TEST(Points, SetOperations) {
  Points a = Points::FromVector({{1, 1}, {2, 2}, {3, 3}});
  Points b = Points::FromVector({{2, 2}, {4, 4}});
  EXPECT_EQ(Points::Union(a, b),
            Points::FromVector({{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  EXPECT_EQ(Points::Intersection(a, b), Points::FromVector({{2, 2}}));
  EXPECT_EQ(Points::Difference(a, b), Points::FromVector({{1, 1}, {3, 3}}));
  EXPECT_EQ(Points::Difference(b, a), Points::FromVector({{4, 4}}));
}

TEST(Points, EmptyBehavior) {
  Points e;
  EXPECT_TRUE(e.IsEmpty());
  Points a = Points::FromVector({{1, 1}});
  EXPECT_EQ(Points::Union(e, a), a);
  EXPECT_TRUE(Points::Intersection(e, a).IsEmpty());
}

}  // namespace
}  // namespace modb
