#include "spatial/region.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "spatial/region_builder.h"

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

std::vector<Point> Square(double x0, double y0, double side) {
  return {Point(x0, y0), Point(x0 + side, y0), Point(x0 + side, y0 + side),
          Point(x0, y0 + side)};
}

TEST(RegionFromPolygon, UnitSquare) {
  auto r = Region::FromPolygon(Square(0, 0, 1));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumFaces(), 1u);
  EXPECT_EQ(r->NumCycles(), 1u);
  EXPECT_EQ(r->NumSegments(), 4u);
  EXPECT_DOUBLE_EQ(r->Area(), 1);
  EXPECT_DOUBLE_EQ(r->Perimeter(), 4);
}

TEST(RegionFromPolygon, OrientationIrrelevant) {
  std::vector<Point> cw = Square(0, 0, 2);
  std::reverse(cw.begin(), cw.end());
  auto r = Region::FromPolygon(cw);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Area(), 4);
}

TEST(RegionFromRings, SquareWithHole) {
  auto r = Region::FromRings(Square(0, 0, 10), {Square(4, 4, 2)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumFaces(), 1u);
  EXPECT_EQ(r->NumCycles(), 2u);
  EXPECT_DOUBLE_EQ(r->Area(), 100 - 4);
  EXPECT_DOUBLE_EQ(r->Perimeter(), 40 + 8);
  EXPECT_EQ(r->faces()[0].num_holes, 1);
}

TEST(RegionContains, InteriorHoleBoundary) {
  Region r = *Region::FromRings(Square(0, 0, 10), {Square(4, 4, 2)});
  EXPECT_TRUE(r.Contains(Point(1, 1)));         // Interior.
  EXPECT_FALSE(r.Contains(Point(5, 5)));        // In the hole.
  EXPECT_TRUE(r.Contains(Point(0, 5)));         // Outer boundary.
  EXPECT_TRUE(r.Contains(Point(4, 5)));         // Hole boundary (closure!).
  EXPECT_FALSE(r.Contains(Point(-1, 5)));       // Outside.
  EXPECT_TRUE(r.OnBoundary(Point(4, 5)));
  EXPECT_FALSE(r.InteriorContains(Point(4, 5)));
  EXPECT_TRUE(r.InteriorContains(Point(1, 1)));
}

TEST(RegionMultipleFaces, TwoDisjointSquares) {
  std::vector<Seg> segs;
  for (auto sq : {Square(0, 0, 1), Square(5, 5, 2)}) {
    for (int i = 0; i < 4; ++i) {
      segs.push_back(*Seg::Make(sq[std::size_t(i)], sq[std::size_t((i + 1) % 4)]));
    }
  }
  auto r = RegionBuilder::Close(segs);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumFaces(), 2u);
  EXPECT_EQ(r->NumCycles(), 2u);
  EXPECT_DOUBLE_EQ(r->Area(), 1 + 4);
}

TEST(RegionNesting, FaceInsideHole) {
  // A face lying within the hole of another face (the paper explicitly
  // allows this).
  auto r = Region::FromRings(Square(0, 0, 10), {Square(2, 2, 6)});
  ASSERT_TRUE(r.ok());
  std::vector<Seg> segs = r->Segments();
  for (auto sq = Square(4, 4, 2); const Seg& s :
       {*Seg::Make(sq[0], sq[1]), *Seg::Make(sq[1], sq[2]),
        *Seg::Make(sq[2], sq[3]), *Seg::Make(sq[3], sq[0])}) {
    segs.push_back(s);
  }
  auto nested = RegionBuilder::Close(segs);
  ASSERT_TRUE(nested.ok()) << nested.status();
  EXPECT_EQ(nested->NumFaces(), 2u);
  EXPECT_EQ(nested->NumCycles(), 3u);
  EXPECT_DOUBLE_EQ(nested->Area(), (100 - 36) + 4);
  EXPECT_TRUE(nested->Contains(Point(5, 5)));    // Inner face.
  EXPECT_FALSE(nested->Contains(Point(3, 3)));   // Hole space.
  EXPECT_TRUE(nested->Contains(Point(1, 1)));    // Outer face.
}

TEST(RegionTouchingCycles, SharedVertexAllowed) {
  // Two triangles meeting in exactly one point: valid, two faces.
  std::vector<Seg> segs = {
      S(0, 0, 2, 0), S(2, 0, 1, 1), S(1, 1, 0, 0),   // Lower triangle.
      S(1, 1, 2, 2), S(2, 2, 0, 2), S(0, 2, 1, 1)};  // Upper triangle.
  auto r = RegionBuilder::Close(segs);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumFaces(), 2u);
  EXPECT_EQ(r->NumCycles(), 2u);
  EXPECT_TRUE(r->Contains(Point(1, 0.3)));
  EXPECT_TRUE(r->Contains(Point(1, 1.9)));
  EXPECT_FALSE(r->Contains(Point(0.2, 1.0)));
}

// -- constraint violations ---------------------------------------------------

TEST(RegionInvalid, ProperIntersection) {
  std::vector<Seg> segs = {S(0, 0, 4, 4), S(0, 4, 4, 0),  // Crossing pair.
                           S(0, 0, 4, 0), S(4, 0, 4, 4),
                           S(0, 4, 0, 0), S(4, 4, 0, 4)};
  EXPECT_FALSE(RegionBuilder::Close(segs).ok());
}

TEST(RegionInvalid, OverlappingSegments) {
  std::vector<Seg> segs = {S(0, 0, 2, 0), S(1, 0, 3, 0), S(3, 0, 3, 1),
                           S(3, 1, 0, 1), S(0, 1, 0, 0)};
  EXPECT_FALSE(RegionBuilder::Close(segs).ok());
}

TEST(RegionInvalid, DanglingSegment) {
  std::vector<Seg> segs = {S(0, 0, 1, 0), S(1, 0, 1, 1), S(1, 1, 0, 0),
                           S(5, 5, 6, 6)};  // Dangling.
  EXPECT_FALSE(RegionBuilder::Close(segs).ok());
}

TEST(RegionInvalid, TooFewSegments) {
  EXPECT_FALSE(RegionBuilder::Close({S(0, 0, 1, 0), S(1, 0, 0, 0)}).ok());
}

TEST(RegionInvalid, TouchWithinOneCycle) {
  // A pentagon whose vertex (2,0) lies in the interior of its own bottom
  // edge: every vertex has even degree and nothing crosses properly, but
  // two segments of one cycle touch — forbidden by the Cycle definition.
  std::vector<Seg> segs = {S(0, 0, 4, 0), S(4, 0, 4, 4), S(4, 4, 2, 0),
                           S(2, 0, 0, 4), S(0, 4, 0, 0)};
  EXPECT_FALSE(RegionBuilder::Close(segs).ok());
}

TEST(RegionInvalid, HoleWithoutFace) {
  // Ring vertices walked so segments form a cycle, but placed outside any
  // other cycle... a lone cycle is a face, so instead test odd nesting:
  // a "hole" candidate cannot exist without this; covered by depth logic.
  // Here: two identical squares — duplicate segments collapse, leaving a
  // single valid square.
  std::vector<Seg> segs;
  for (int rep = 0; rep < 2; ++rep) {
    auto sq = Square(0, 0, 1);
    for (int i = 0; i < 4; ++i) {
      segs.push_back(*Seg::Make(sq[std::size_t(i)], sq[std::size_t((i + 1) % 4)]));
    }
  }
  auto r = RegionBuilder::Close(segs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumSegments(), 4u);
}

// -- structure arrays --------------------------------------------------------

TEST(RegionStructure, HalfSegmentsSortedWithAttributes) {
  Region r = *Region::FromRings(Square(0, 0, 10), {Square(4, 4, 2)});
  const auto& hs = r.halfsegments();
  EXPECT_EQ(hs.size(), 16u);
  EXPECT_TRUE(std::is_sorted(hs.begin(), hs.end(), HalfSegmentLess));
  for (const HalfSegment& h : hs) {
    EXPECT_GE(h.cycle, 0);
    EXPECT_LT(h.cycle, int32_t(r.NumCycles()));
    EXPECT_GE(h.face, 0);
    EXPECT_LT(h.face, int32_t(r.NumFaces()));
    EXPECT_GE(h.next_in_cycle, 0);
  }
}

TEST(RegionStructure, CycleWalkCloses) {
  Region r = *Region::FromPolygon(Square(0, 0, 3));
  std::vector<Seg> cyc = r.CycleSegments(0);
  ASSERT_EQ(cyc.size(), 4u);
  // Consecutive walk segments share endpoints.
  for (std::size_t i = 0; i < cyc.size(); ++i) {
    EXPECT_TRUE(Meet(cyc[i], cyc[(i + 1) % cyc.size()]));
  }
}

TEST(RegionStructure, CycleVerticesFormRing) {
  Region r = *Region::FromPolygon(Square(0, 0, 3));
  std::vector<Point> ring = r.CycleVertices(0);
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_NEAR(std::fabs(SignedArea(ring)), 9, 1e-9);
}

TEST(RegionStructure, InsideAboveFlags) {
  Region r = *Region::FromPolygon(Square(0, 0, 2));
  for (const HalfSegment& h : r.halfsegments()) {
    if (h.seg.IsVertical()) {
      // Left edge: interior right → inside_above false; right edge: true.
      EXPECT_EQ(h.inside_above, h.seg.a().x == 2);
    } else {
      // Bottom edge: interior above; top edge: interior below.
      EXPECT_EQ(h.inside_above, h.seg.a().y == 0);
    }
  }
}

TEST(RegionStructure, HoleCycleChainLinked) {
  Region r = *Region::FromRings(Square(0, 0, 10),
                                {Square(2, 2, 1), Square(6, 6, 1)});
  ASSERT_EQ(r.NumCycles(), 3u);
  const FaceRecord& f = r.faces()[0];
  EXPECT_EQ(f.num_holes, 2);
  // Walk the cycle chain: outer first, then the two holes.
  int32_t c = f.first_cycle;
  int seen = 0, holes = 0;
  while (c >= 0) {
    ++seen;
    if (r.cycles()[std::size_t(c)].is_hole) ++holes;
    c = r.cycles()[std::size_t(c)].next_cycle_in_face;
  }
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(holes, 2);
}

TEST(RegionEquality, SameGeometryEqual) {
  Region a = *Region::FromPolygon(Square(0, 0, 1));
  std::vector<Point> rotated = {Point(1, 0), Point(1, 1), Point(0, 1),
                                Point(0, 0)};
  Region b = *Region::FromPolygon(rotated);
  EXPECT_TRUE(a == b);
}

TEST(RegionFromParts, RoundTripOfArrays) {
  Region r = *Region::FromRings(Square(0, 0, 10), {Square(4, 4, 2)});
  auto rebuilt = Region::FromParts(r.halfsegments(), r.cycles(), r.faces(),
                                   r.Area(), r.Perimeter(), r.BoundingBox());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(*rebuilt == r);
  EXPECT_DOUBLE_EQ(rebuilt->Area(), r.Area());
}

TEST(RegionFromParts, RejectsBrokenLinks) {
  Region r = *Region::FromPolygon(Square(0, 0, 1));
  auto hs = r.halfsegments();
  hs[0].next_in_cycle = 99;
  EXPECT_FALSE(Region::FromParts(hs, r.cycles(), r.faces(), r.Area(),
                                 r.Perimeter(), r.BoundingBox()).ok());
}

TEST(EvenOdd, PlumblineAgainstSoup) {
  std::vector<Seg> square = {S(0, 0, 2, 0), S(2, 0, 2, 2), S(2, 2, 0, 2),
                             S(0, 2, 0, 0)};
  bool on_boundary = false;
  EXPECT_TRUE(EvenOddContains(square, Point(1, 1), &on_boundary));
  EXPECT_FALSE(on_boundary);
  EXPECT_TRUE(EvenOddContains(square, Point(0, 1), &on_boundary));
  EXPECT_TRUE(on_boundary);
  EXPECT_FALSE(EvenOddContains(square, Point(3, 1)));
  // Ray through a vertex is counted once.
  EXPECT_FALSE(EvenOddContains(square, Point(0, -1)));
}

// Property: validation strategies agree on random polygons.
class RegionValidationParity : public ::testing::TestWithParam<int> {};

TEST_P(RegionValidationParity, GridMatchesNaive) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> jitter(-0.3, 0.3);
  std::vector<Point> ring;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * 3.14159265358979 * i / n;
    double radius = 10 * (1 + jitter(rng));
    ring.push_back(Point(radius * std::cos(angle), radius * std::sin(angle)));
  }
  std::vector<Seg> segs;
  for (int i = 0; i < n; ++i) {
    segs.push_back(*Seg::Make(ring[std::size_t(i)], ring[std::size_t((i + 1) % n)]));
  }
  auto grid = RegionBuilder::Close(segs, RegionBuilder::Validation::kGrid);
  auto naive = RegionBuilder::Close(segs, RegionBuilder::Validation::kNaive);
  ASSERT_EQ(grid.ok(), naive.ok());
  if (grid.ok()) {
    EXPECT_TRUE(*grid == *naive);
    EXPECT_DOUBLE_EQ(grid->Area(), naive->Area());
    EXPECT_GT(grid->Area(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegionValidationParity,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace modb
