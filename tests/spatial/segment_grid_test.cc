#include "spatial/segment_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

TEST(SegmentGridTest, EmptyInput) {
  std::vector<Seg> none;
  SegmentGrid grid(none);
  int visits = 0;
  grid.VisitColumn(0, [&](int32_t) { ++visits; });
  grid.VisitRow(0, [&](int32_t) { ++visits; });
  grid.VisitCandidatePairs([&](int32_t, int32_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(SegmentGridTest, ColumnVisitCoversStabbedSegments) {
  std::vector<Seg> segs = {S(0, 0, 10, 0), S(2, 5, 4, 5), S(20, 0, 30, 0)};
  SegmentGrid grid(segs);
  std::set<int32_t> hit;
  grid.VisitColumn(3, [&](int32_t i) { hit.insert(i); });
  // Soundness: every segment whose x-range contains 3 is visited.
  EXPECT_TRUE(hit.count(0));
  EXPECT_TRUE(hit.count(1));
}

TEST(SegmentGridTest, VisitsAreDeduplicated) {
  // A long segment spans many cells of its column.
  std::vector<Seg> segs = {S(5, 0, 5, 100), S(0, 0, 10, 1), S(0, 50, 10, 51)};
  SegmentGrid grid(segs);
  std::vector<int32_t> hits;
  grid.VisitColumn(5, [&](int32_t i) { hits.push_back(i); });
  std::vector<int32_t> sorted = hits;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(SegmentGridTest, CandidatePairsSound) {
  // Every actually intersecting pair must appear among the candidates.
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> pos(0, 100);
  std::vector<Seg> segs;
  for (int i = 0; i < 60; ++i) {
    Point a(pos(rng), pos(rng));
    Point b(a.x + pos(rng) / 10 + 0.1, a.y + pos(rng) / 10 + 0.1);
    segs.push_back(*Seg::Make(a, b));
  }
  SegmentGrid grid(segs);
  std::set<std::pair<int32_t, int32_t>> candidates;
  grid.VisitCandidatePairs([&](int32_t i, int32_t j) {
    candidates.insert({i, j});
    return true;
  });
  for (int32_t i = 0; i < 60; ++i) {
    for (int32_t j = i + 1; j < 60; ++j) {
      if (SegsIntersect(segs[std::size_t(i)], segs[std::size_t(j)])) {
        EXPECT_TRUE(candidates.count({i, j}))
            << "missing intersecting pair " << i << "," << j;
      }
    }
  }
}

TEST(SegmentGridTest, CandidatePairsEarlyStop) {
  std::vector<Seg> segs = {S(0, 0, 1, 1), S(0, 1, 1, 0), S(0, 0.5, 1, 0.5)};
  SegmentGrid grid(segs);
  int visited = 0;
  grid.VisitCandidatePairs([&](int32_t, int32_t) {
    ++visited;
    return false;  // Stop immediately.
  });
  EXPECT_EQ(visited, 1);
}

TEST(SegmentGridTest, RowVisitCoversStabbedSegments) {
  std::vector<Seg> segs = {S(0, 0, 0, 10), S(5, 2, 5, 4), S(9, 20, 9, 30)};
  SegmentGrid grid(segs);
  std::set<int32_t> hit;
  grid.VisitRow(3, [&](int32_t i) { hit.insert(i); });
  EXPECT_TRUE(hit.count(0));
  EXPECT_TRUE(hit.count(1));
}

}  // namespace
}  // namespace modb
