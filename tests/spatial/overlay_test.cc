#include "spatial/overlay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace modb {
namespace {

std::vector<Point> Square(double x0, double y0, double side) {
  return {Point(x0, y0), Point(x0 + side, y0), Point(x0 + side, y0 + side),
          Point(x0, y0 + side)};
}

Region Sq(double x0, double y0, double side) {
  return *Region::FromPolygon(Square(x0, y0, side));
}

TEST(OverlayUnion, DisjointSquaresKeepTwoFaces) {
  auto u = Union(Sq(0, 0, 1), Sq(5, 5, 1));
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->NumFaces(), 2u);
  EXPECT_NEAR(u->Area(), 2, 1e-9);
}

TEST(OverlayUnion, OverlappingSquaresMerge) {
  auto u = Union(Sq(0, 0, 2), Sq(1, 1, 2));
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->NumFaces(), 1u);
  EXPECT_NEAR(u->Area(), 4 + 4 - 1, 1e-9);
  EXPECT_TRUE(u->Contains(Point(0.5, 0.5)));
  EXPECT_TRUE(u->Contains(Point(2.5, 2.5)));
  EXPECT_FALSE(u->Contains(Point(2.5, 0.5)));
}

TEST(OverlayUnion, SharedEdgeDissolves) {
  auto u = Union(Sq(0, 0, 1), Sq(1, 0, 1));
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->NumFaces(), 1u);
  EXPECT_NEAR(u->Area(), 2, 1e-9);
  // The shared edge at x=1 is gone from the boundary.
  EXPECT_FALSE(u->OnBoundary(Point(1, 0.5)));
  EXPECT_TRUE(u->Contains(Point(1, 0.5)));
}

TEST(OverlayIntersection, OverlappingSquares) {
  auto i = Intersection(Sq(0, 0, 2), Sq(1, 1, 2));
  ASSERT_TRUE(i.ok()) << i.status();
  EXPECT_NEAR(i->Area(), 1, 1e-9);
  EXPECT_TRUE(i->Contains(Point(1.5, 1.5)));
  EXPECT_FALSE(i->Contains(Point(0.5, 0.5)));
}

TEST(OverlayIntersection, DisjointIsEmpty) {
  auto i = Intersection(Sq(0, 0, 1), Sq(5, 5, 1));
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE(i->IsEmpty());
  EXPECT_NEAR(i->Area(), 0, 1e-12);
}

TEST(OverlayDifference, PunchesHole) {
  auto d = Difference(Sq(0, 0, 10), Sq(4, 4, 2));
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->NumFaces(), 1u);
  EXPECT_EQ(d->NumCycles(), 2u);  // Outer + hole.
  EXPECT_NEAR(d->Area(), 100 - 4, 1e-9);
  EXPECT_FALSE(d->Contains(Point(5, 5)));
  EXPECT_TRUE(d->Contains(Point(1, 1)));
}

TEST(OverlayDifference, ClipsCorner) {
  auto d = Difference(Sq(0, 0, 2), Sq(1, 1, 2));
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_NEAR(d->Area(), 4 - 1, 1e-9);
  EXPECT_TRUE(d->Contains(Point(0.5, 0.5)));
  EXPECT_FALSE(d->Contains(Point(1.5, 1.5)));
}

TEST(OverlayDifference, SubtractAllGivesEmpty) {
  auto d = Difference(Sq(1, 1, 1), Sq(0, 0, 4));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsEmpty());
}

TEST(OverlayDifference, ContainedOperandSplitsIntoHole) {
  // Subtracting a band through the middle splits the square in two.
  Region band = *Region::FromPolygon(
      {Point(-1, 1), Point(3, 1), Point(3, 1.5), Point(-1, 1.5)});
  auto d = Difference(Sq(0, 0, 2), band);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->NumFaces(), 2u);
  EXPECT_NEAR(d->Area(), 4 - 2 * 0.5, 1e-9);
}

TEST(OverlayEmptyOperands, Identities) {
  Region e;
  Region a = Sq(0, 0, 1);
  EXPECT_TRUE(*Union(e, a) == a);
  EXPECT_TRUE(*Union(a, e) == a);
  EXPECT_TRUE(Intersection(e, a)->IsEmpty());
  EXPECT_TRUE(Difference(e, a)->IsEmpty());
  EXPECT_TRUE(*Difference(a, e) == a);
}

// Property sweep: inclusion-exclusion and pointwise classification on
// random rectangle pairs.
class OverlayAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(OverlayAlgebra, InclusionExclusionAndPointwise) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> pick(0, 8);
  std::uniform_real_distribution<double> side(1, 5);
  Region a = Sq(pick(rng), pick(rng), side(rng));
  Region b = Sq(pick(rng), pick(rng), side(rng));
  auto u = Union(a, b);
  auto i = Intersection(a, b);
  auto d = Difference(a, b);
  ASSERT_TRUE(u.ok()) << u.status();
  ASSERT_TRUE(i.ok()) << i.status();
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_NEAR(u->Area(), a.Area() + b.Area() - i->Area(), 1e-6);
  EXPECT_NEAR(d->Area(), a.Area() - i->Area(), 1e-6);
  // Pointwise agreement on a grid (skipping boundary-grazing points).
  for (int gx = 0; gx < 14; ++gx) {
    for (int gy = 0; gy < 14; ++gy) {
      Point p(gx + 0.137, gy + 0.261);
      bool in_a = a.InteriorContains(p);
      bool in_b = b.InteriorContains(p);
      if (a.OnBoundary(p) || b.OnBoundary(p)) continue;
      EXPECT_EQ(u->Contains(p), in_a || in_b) << p.ToString();
      EXPECT_EQ(i->Contains(p), in_a && in_b) << p.ToString();
      EXPECT_EQ(d->Contains(p), in_a && !in_b) << p.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OverlayAlgebra, ::testing::Range(0, 40));

}  // namespace
}  // namespace modb
