#include "spatial/spatial_ops.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

std::vector<Point> Square(double x0, double y0, double side) {
  return {Point(x0, y0), Point(x0 + side, y0), Point(x0 + side, y0 + side),
          Point(x0, y0 + side)};
}

Region Sq(double x0, double y0, double side) {
  return *Region::FromPolygon(Square(x0, y0, side));
}

TEST(InsidePredicate, PointInRegion) {
  Region r = Sq(0, 0, 4);
  EXPECT_TRUE(Inside(Point(2, 2), r));
  EXPECT_TRUE(Inside(Point(0, 2), r));  // Boundary counts.
  EXPECT_FALSE(Inside(Point(5, 2), r));
}

TEST(InsidePredicate, PointsInRegion) {
  Region r = Sq(0, 0, 4);
  EXPECT_TRUE(Inside(Points::FromVector({{1, 1}, {2, 3}}), r));
  EXPECT_FALSE(Inside(Points::FromVector({{1, 1}, {9, 9}}), r));
  EXPECT_FALSE(Inside(Points(), r));  // Empty set: vacuous → false.
}

TEST(InsidePredicate, LineInRegion) {
  Region r = Sq(0, 0, 4);
  EXPECT_TRUE(Inside(*Line::Make({S(1, 1, 3, 3)}), r));
  EXPECT_FALSE(Inside(*Line::Make({S(1, 1, 6, 6)}), r));
  // Chord with endpoints on the boundary stays inside.
  EXPECT_TRUE(Inside(*Line::Make({S(0, 0, 4, 4)}), r));
}

TEST(InsidePredicate, RegionInRegion) {
  EXPECT_TRUE(Inside(Sq(1, 1, 2), Sq(0, 0, 4)));
  EXPECT_FALSE(Inside(Sq(0, 0, 4), Sq(1, 1, 2)));
  EXPECT_FALSE(Inside(Sq(3, 3, 4), Sq(0, 0, 4)));  // Partial overlap.
  EXPECT_TRUE(Inside(Sq(0, 0, 4), Sq(0, 0, 4)));   // Subset of itself.
}

TEST(IntersectsPredicate, LineLine) {
  Line a = *Line::Make({S(0, 0, 2, 2)});
  EXPECT_TRUE(Intersects(a, *Line::Make({S(0, 2, 2, 0)})));
  EXPECT_FALSE(Intersects(a, *Line::Make({S(3, 0, 4, 0)})));
}

TEST(IntersectsPredicate, LineRegion) {
  Region r = Sq(0, 0, 4);
  EXPECT_TRUE(Intersects(*Line::Make({S(-1, 2, 1, 2)}), r));  // Crosses in.
  EXPECT_TRUE(Intersects(*Line::Make({S(1, 1, 2, 2)}), r));   // Fully inside.
  EXPECT_FALSE(Intersects(*Line::Make({S(5, 5, 6, 6)}), r));
}

TEST(IntersectsPredicate, RegionRegion) {
  EXPECT_TRUE(Intersects(Sq(0, 0, 4), Sq(2, 2, 4)));
  EXPECT_FALSE(Intersects(Sq(0, 0, 1), Sq(5, 5, 1)));
  EXPECT_TRUE(Intersects(Sq(0, 0, 4), Sq(1, 1, 1)));  // Containment.
  EXPECT_TRUE(Intersects(Sq(1, 1, 1), Sq(0, 0, 4)));
  EXPECT_TRUE(Intersects(Sq(0, 0, 1), Sq(1, 0, 1)));  // Shared edge.
}

TEST(LineClip, CrossingChordSplits) {
  Region r = Sq(2, -1, 4);  // x ∈ [2, 6], y ∈ [-1, 3].
  Line l = *Line::Make({S(0, 0, 10, 0)});
  Line inside = Intersection(l, r);
  ASSERT_EQ(inside.NumSegments(), 1u);
  EXPECT_EQ(inside.segment(0), S(2, 0, 6, 0));
  Line outside = Difference(l, r);
  ASSERT_EQ(outside.NumSegments(), 2u);
  EXPECT_DOUBLE_EQ(outside.Length(), 2 + 4);
  EXPECT_DOUBLE_EQ(inside.Length() + outside.Length(), l.Length());
}

TEST(LineClip, FullyInsideOrOutside) {
  Region r = Sq(0, 0, 10);
  Line in = *Line::Make({S(1, 1, 3, 3)});
  EXPECT_EQ(Intersection(in, r), in);
  EXPECT_TRUE(Difference(in, r).IsEmpty());
  Line out = *Line::Make({S(20, 20, 30, 30)});
  EXPECT_TRUE(Intersection(out, r).IsEmpty());
  EXPECT_EQ(Difference(out, r), out);
}

TEST(LineClip, HoleExcludedFromIntersection) {
  Region r = *Region::FromRings(Square(0, 0, 10), {Square(4, 4, 2)});
  Line l = *Line::Make({S(0, 5, 10, 5)});  // Crosses the hole.
  Line inside = Intersection(l, r);
  // Two pieces: [0,4] and [6,10] at y=5.
  EXPECT_EQ(inside.NumSegments(), 2u);
  EXPECT_DOUBLE_EQ(inside.Length(), 8);
  Line in_hole = Difference(l, r);
  ASSERT_EQ(in_hole.NumSegments(), 1u);
  EXPECT_DOUBLE_EQ(in_hole.Length(), 2);
}

TEST(DistanceOps, PointToSets) {
  EXPECT_DOUBLE_EQ(
      SpatialDistance(Point(0, 0), Points::FromVector({{3, 4}, {6, 8}})), 5);
  EXPECT_DOUBLE_EQ(SpatialDistance(Point(0, 3), *Line::Make({S(0, 0, 4, 0)})),
                   3);
  EXPECT_DOUBLE_EQ(SpatialDistance(Point(2, 2), Sq(0, 0, 4)), 0);
  EXPECT_DOUBLE_EQ(SpatialDistance(Point(6, 2), Sq(0, 0, 4)), 2);
}

TEST(DistanceOps, LineLineAndRegionRegion) {
  EXPECT_DOUBLE_EQ(SpatialDistance(*Line::Make({S(0, 0, 1, 0)}),
                                   *Line::Make({S(0, 3, 1, 3)})),
                   3);
  EXPECT_DOUBLE_EQ(SpatialDistance(Sq(0, 0, 1), Sq(4, 0, 1)), 3);
  EXPECT_DOUBLE_EQ(SpatialDistance(Sq(0, 0, 4), Sq(1, 1, 1)), 0);
}

TEST(DirectionOp, CompassDegrees) {
  EXPECT_DOUBLE_EQ(Direction(Point(0, 0), Point(1, 0)), 0);
  EXPECT_DOUBLE_EQ(Direction(Point(0, 0), Point(0, 1)), 90);
  EXPECT_DOUBLE_EQ(Direction(Point(0, 0), Point(-1, 0)), 180);
  EXPECT_DOUBLE_EQ(Direction(Point(0, 0), Point(0, -1)), 270);
  EXPECT_DOUBLE_EQ(Direction(Point(0, 0), Point(1, 1)), 45);
  EXPECT_EQ(Direction(Point(1, 1), Point(1, 1)), -1);  // Undefined.
}

}  // namespace
}  // namespace modb
