#include "spatial/halfsegment.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

TEST(HalfSegment, DominatingPointSelection) {
  HalfSegment left{.seg = S(0, 0, 2, 2), .left_dominating = true};
  HalfSegment right{.seg = S(0, 0, 2, 2), .left_dominating = false};
  EXPECT_EQ(left.DominatingPoint(), Point(0, 0));
  EXPECT_EQ(left.SecondaryPoint(), Point(2, 2));
  EXPECT_EQ(right.DominatingPoint(), Point(2, 2));
  EXPECT_EQ(right.SecondaryPoint(), Point(0, 0));
}

TEST(HalfSegmentOrder, ByDominatingPointFirst) {
  HalfSegment a{.seg = S(0, 0, 1, 1), .left_dominating = true};
  HalfSegment b{.seg = S(2, 0, 3, 1), .left_dominating = true};
  EXPECT_TRUE(HalfSegmentLess(a, b));
  EXPECT_FALSE(HalfSegmentLess(b, a));
}

TEST(HalfSegmentOrder, RightBeforeLeftAtSharedPoint) {
  // At a shared dominating point, the sweep must retire the ending
  // segment before admitting the starting one.
  HalfSegment ending{.seg = S(0, 0, 2, 0), .left_dominating = false};
  HalfSegment starting{.seg = S(2, 0, 4, 0), .left_dominating = true};
  EXPECT_TRUE(HalfSegmentLess(ending, starting));
  EXPECT_FALSE(HalfSegmentLess(starting, ending));
}

TEST(HalfSegmentOrder, AngularOrderAmongLeftHalves) {
  HalfSegment down{.seg = S(0, 0, 1, -1), .left_dominating = true};
  HalfSegment flat{.seg = S(0, 0, 1, 0), .left_dominating = true};
  HalfSegment up{.seg = S(0, 0, 1, 1), .left_dominating = true};
  EXPECT_TRUE(HalfSegmentLess(down, flat));
  EXPECT_TRUE(HalfSegmentLess(flat, up));
  EXPECT_TRUE(HalfSegmentLess(down, up));
}

TEST(HalfSegmentOrder, StrictWeakOrdering) {
  std::vector<HalfSegment> hs = MakeHalfSegments(
      {S(0, 0, 1, 1), S(0, 0, 1, -1), S(1, 1, 2, 0), S(-1, 0, 0, 0)});
  EXPECT_TRUE(std::is_sorted(hs.begin(), hs.end(), HalfSegmentLess));
  for (const HalfSegment& h : hs) {
    EXPECT_FALSE(HalfSegmentLess(h, h));  // Irreflexive.
  }
  for (std::size_t i = 0; i < hs.size(); ++i) {
    for (std::size_t j = i + 1; j < hs.size(); ++j) {
      // Antisymmetric over the sorted sequence.
      EXPECT_FALSE(HalfSegmentLess(hs[j], hs[i]) &&
                   HalfSegmentLess(hs[i], hs[j]));
    }
  }
}

TEST(MakeHalfSegments, TwoPerSegmentSorted) {
  std::vector<HalfSegment> hs =
      MakeHalfSegments({S(2, 0, 3, 0), S(0, 0, 1, 0)});
  ASSERT_EQ(hs.size(), 4u);
  EXPECT_EQ(hs[0].DominatingPoint(), Point(0, 0));
  EXPECT_EQ(hs[1].DominatingPoint(), Point(1, 0));
  EXPECT_EQ(hs[2].DominatingPoint(), Point(2, 0));
  EXPECT_EQ(hs[3].DominatingPoint(), Point(3, 0));
}

}  // namespace
}  // namespace modb
