#include "spatial/line.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

// D_line: collinear segments must be disjoint.
TEST(LineMake, AcceptsCrossingSegments) {
  // Figure 2(c): any set of segments is a line value — crossings are fine.
  auto l = Line::Make({S(0, 0, 2, 2), S(0, 2, 2, 0)});
  ASSERT_TRUE(l.ok()) << l.status();
  EXPECT_EQ(l->NumSegments(), 2u);
}

TEST(LineMake, RejectsCollinearOverlap) {
  EXPECT_FALSE(Line::Make({S(0, 0, 2, 0), S(1, 0, 3, 0)}).ok());
}

TEST(LineMake, RejectsCollinearMeet) {
  // Collinear segments sharing an endpoint are not disjoint → invalid
  // (they must be merged into one).
  EXPECT_FALSE(Line::Make({S(0, 0, 1, 0), S(1, 0, 2, 0)}).ok());
}

TEST(LineMake, AcceptsCollinearGap) {
  auto l = Line::Make({S(0, 0, 1, 0), S(2, 0, 3, 0)});
  EXPECT_TRUE(l.ok()) << l.status();
}

TEST(LineMake, DeduplicatesExactCopies) {
  auto l = Line::Make({S(0, 0, 1, 1), S(0, 0, 1, 1)});
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->NumSegments(), 1u);
}

TEST(MergeSegs, FusesOverlappingChain) {
  std::vector<Seg> merged =
      MergeSegs({S(0, 0, 2, 0), S(1, 0, 3, 0), S(3, 0, 5, 0)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], S(0, 0, 5, 0));
}

TEST(MergeSegs, KeepsSeparateLines) {
  std::vector<Seg> merged = MergeSegs({S(0, 0, 2, 0), S(0, 1, 2, 1)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeSegs, NestedSegmentAbsorbed) {
  std::vector<Seg> merged = MergeSegs({S(0, 0, 4, 0), S(1, 0, 2, 0)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], S(0, 0, 4, 0));
}

TEST(LineCanonical, AnySegmentSetBecomesValid) {
  Line l = Line::Canonical({S(0, 0, 2, 0), S(1, 0, 3, 0), S(0, 1, 1, 2)});
  EXPECT_EQ(l.NumSegments(), 2u);
  // Canonical result passes strict validation.
  EXPECT_TRUE(Line::Make(l.segments()).ok());
}

TEST(LineLength, SumOfSegments) {
  Line l = *Line::Make({S(0, 0, 3, 4), S(10, 0, 13, 4)});
  EXPECT_DOUBLE_EQ(l.Length(), 10);
}

TEST(LineContains, OnAnySegment) {
  Line l = *Line::Make({S(0, 0, 2, 2), S(5, 0, 7, 0)});
  EXPECT_TRUE(l.Contains(Point(1, 1)));
  EXPECT_TRUE(l.Contains(Point(6, 0)));
  EXPECT_FALSE(l.Contains(Point(3, 3)));
}

TEST(LineUnion, MergesCollinearAcrossOperands) {
  Line a = *Line::Make({S(0, 0, 2, 0)});
  Line b = *Line::Make({S(1, 0, 4, 0)});
  Line u = Line::Union(a, b);
  ASSERT_EQ(u.NumSegments(), 1u);
  EXPECT_EQ(u.segment(0), S(0, 0, 4, 0));
  EXPECT_DOUBLE_EQ(u.Length(), 4);
}

TEST(LineIntersection, CollinearOverlapOnly) {
  Line a = *Line::Make({S(0, 0, 3, 0), S(0, 1, 3, 1)});
  Line b = *Line::Make({S(2, 0, 5, 0), S(0, -1, 3, -1)});
  Line i = Line::Intersection(a, b);
  ASSERT_EQ(i.NumSegments(), 1u);
  EXPECT_EQ(i.segment(0), S(2, 0, 3, 0));
}

TEST(LineIntersection, CrossingContributesNothing) {
  Line a = *Line::Make({S(0, 0, 2, 2)});
  Line b = *Line::Make({S(0, 2, 2, 0)});
  EXPECT_TRUE(Line::Intersection(a, b).IsEmpty());
  Points xp = Line::CrossingPoints(a, b);
  ASSERT_EQ(xp.Size(), 1u);
  EXPECT_TRUE(ApproxEqual(xp.point(0), Point(1, 1)));
}

TEST(LineDifference, RemovesSharedParts) {
  Line a = *Line::Make({S(0, 0, 4, 0)});
  Line b = *Line::Make({S(1, 0, 2, 0)});
  Line d = Line::Difference(a, b);
  ASSERT_EQ(d.NumSegments(), 2u);
  EXPECT_EQ(d.segment(0), S(0, 0, 1, 0));
  EXPECT_EQ(d.segment(1), S(2, 0, 4, 0));
  EXPECT_DOUBLE_EQ(d.Length(), 3);
}

TEST(LineDifference, DisjointLeavesUntouched) {
  Line a = *Line::Make({S(0, 0, 1, 0)});
  Line b = *Line::Make({S(0, 1, 1, 1)});
  EXPECT_EQ(Line::Difference(a, b), a);
}

TEST(LineEquality, UniqueRepresentation) {
  // The same point set assembled differently compares equal after
  // canonicalization.
  Line a = Line::Canonical({S(0, 0, 1, 0), S(1, 0, 3, 0)});
  Line b = Line::Canonical({S(0, 0, 3, 0)});
  EXPECT_EQ(a, b);
}

TEST(LineHalfSegments, SortedPairPerSegment) {
  Line l = *Line::Make({S(0, 0, 1, 1), S(2, 0, 3, 1)});
  std::vector<HalfSegment> hs = l.HalfSegments();
  ASSERT_EQ(hs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(hs.begin(), hs.end(), HalfSegmentLess));
}

TEST(LineBoundingBox, CoversAllSegments) {
  Line l = *Line::Make({S(0, 0, 1, 1), S(-5, 2, -1, 2)});
  Rect r = l.BoundingBox();
  EXPECT_EQ(r.min_x, -5);
  EXPECT_EQ(r.max_x, 1);
}

}  // namespace
}  // namespace modb
