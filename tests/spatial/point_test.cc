#include "spatial/point.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace modb {
namespace {

TEST(PointOrder, LexicographicPerPaper) {
  // p < q ⇔ p.x < q.x ∨ (p.x = q.x ∧ p.y < q.y)
  EXPECT_TRUE(Point(1, 5) < Point(2, 0));
  EXPECT_TRUE(Point(1, 1) < Point(1, 2));
  EXPECT_FALSE(Point(1, 2) < Point(1, 2));
  EXPECT_FALSE(Point(2, 0) < Point(1, 9));
}

TEST(PointOrder, SortGroupsByX) {
  std::vector<Point> v = {{2, 1}, {1, 2}, {1, 1}, {0, 9}};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0], Point(0, 9));
  EXPECT_EQ(v[1], Point(1, 1));
  EXPECT_EQ(v[2], Point(1, 2));
  EXPECT_EQ(v[3], Point(2, 1));
}

TEST(PointArithmetic, VectorOps) {
  Point p = Point(1, 2) + Point(3, 4);
  EXPECT_EQ(p, Point(4, 6));
  EXPECT_EQ(Point(3, 4) - Point(1, 1), Point(2, 3));
  EXPECT_EQ(Point(1, 2) * 2.0, Point(2, 4));
}

TEST(PointDistance, Euclidean) {
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5);
  EXPECT_DOUBLE_EQ(SquaredDistance(Point(1, 1), Point(2, 2)), 2);
}

TEST(Orientation, LeftRightCollinear) {
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(0.5, 1)), 1);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(0.5, -1)), -1);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(2, 0)), 0);
}

TEST(Orientation, ToleranceScalesWithMagnitude) {
  // Collinearity detection should survive large coordinates.
  Point a(1e6, 1e6), b(2e6, 2e6), c(3e6, 3e6);
  EXPECT_EQ(Orientation(a, b, c), 0);
  // And a real turn at large scale is still a turn.
  EXPECT_NE(Orientation(a, b, Point(3e6, 3e6 + 10)), 0);
}

TEST(PointApprox, EqualWithinEpsilon) {
  EXPECT_TRUE(ApproxEqual(Point(1, 1), Point(1 + 1e-12, 1 - 1e-12)));
  EXPECT_FALSE(ApproxEqual(Point(1, 1), Point(1.001, 1)));
}

TEST(Cross, SignedParallelogramArea) {
  EXPECT_DOUBLE_EQ(Cross(Point(0, 0), Point(2, 0), Point(0, 3)), 6);
  EXPECT_DOUBLE_EQ(Cross(Point(0, 0), Point(0, 3), Point(2, 0)), -6);
}

}  // namespace
}  // namespace modb
