#include "spatial/seg.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

TEST(SegMake, RejectsDegenerate) {
  EXPECT_FALSE(Seg::Make(Point(1, 1), Point(1, 1)).ok());
}

TEST(SegMake, NormalizesEndpointOrder) {
  Seg s = S(3, 3, 1, 1);
  EXPECT_EQ(s.a(), Point(1, 1));
  EXPECT_EQ(s.b(), Point(3, 3));
  EXPECT_EQ(S(1, 1, 3, 3), S(3, 3, 1, 1));
}

TEST(SegBasics, LengthMidpointBBox) {
  Seg s = S(0, 0, 3, 4);
  EXPECT_DOUBLE_EQ(s.Length(), 5);
  EXPECT_EQ(s.Midpoint(), Point(1.5, 2));
  Rect r = s.BoundingBox();
  EXPECT_EQ(r.min_x, 0);
  EXPECT_EQ(r.max_y, 4);
  EXPECT_TRUE(S(1, 0, 1, 5).IsVertical());
  EXPECT_FALSE(s.IsVertical());
}

TEST(SegContains, OnAndOff) {
  Seg s = S(0, 0, 4, 4);
  EXPECT_TRUE(s.Contains(Point(2, 2)));
  EXPECT_TRUE(s.Contains(Point(0, 0)));
  EXPECT_FALSE(s.Contains(Point(5, 5)));   // On the line, off the segment.
  EXPECT_FALSE(s.Contains(Point(2, 3)));
  EXPECT_TRUE(s.InteriorContains(Point(2, 2)));
  EXPECT_FALSE(s.InteriorContains(Point(0, 0)));
}

// -- the paper's predicates --------------------------------------------------

TEST(Collinear, DetectsSharedLine) {
  EXPECT_TRUE(Collinear(S(0, 0, 1, 1), S(2, 2, 3, 3)));
  EXPECT_TRUE(Collinear(S(0, 0, 1, 1), S(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(Collinear(S(0, 0, 1, 1), S(0, 1, 1, 2)));  // Parallel only.
  EXPECT_FALSE(Collinear(S(0, 0, 1, 1), S(0, 0, 1, 2)));
}

TEST(PIntersect, ProperCrossingOnly) {
  // X crossing: proper.
  EXPECT_TRUE(PIntersect(S(0, 0, 2, 2), S(0, 2, 2, 0)));
  // T touch: endpoint in interior → not proper.
  EXPECT_FALSE(PIntersect(S(0, 0, 2, 0), S(1, 0, 1, 1)));
  // V meet at endpoints → not proper.
  EXPECT_FALSE(PIntersect(S(0, 0, 1, 1), S(1, 1, 2, 0)));
  // Disjoint.
  EXPECT_FALSE(PIntersect(S(0, 0, 1, 0), S(0, 1, 1, 1)));
  // Collinear overlap is not a proper intersection.
  EXPECT_FALSE(PIntersect(S(0, 0, 2, 0), S(1, 0, 3, 0)));
}

TEST(Touch, EndpointInInterior) {
  EXPECT_TRUE(Touch(S(0, 0, 2, 0), S(1, 0, 1, 1)));   // T from above.
  EXPECT_TRUE(Touch(S(1, 0, 1, 1), S(0, 0, 2, 0)));   // Symmetric.
  EXPECT_FALSE(Touch(S(0, 0, 1, 1), S(1, 1, 2, 0)));  // Meet, not touch.
  EXPECT_FALSE(Touch(S(0, 0, 2, 2), S(0, 2, 2, 0)));  // Proper crossing.
}

TEST(Meet, SharedEndpoint) {
  EXPECT_TRUE(Meet(S(0, 0, 1, 1), S(1, 1, 2, 0)));
  EXPECT_FALSE(Meet(S(0, 0, 1, 1), S(2, 2, 3, 3)));
}

TEST(Overlap, CollinearSharedLengthOnly) {
  EXPECT_TRUE(Overlap(S(0, 0, 2, 0), S(1, 0, 3, 0)));
  EXPECT_TRUE(Overlap(S(0, 0, 3, 0), S(1, 0, 2, 0)));   // Nested.
  EXPECT_FALSE(Overlap(S(0, 0, 1, 0), S(1, 0, 2, 0)));  // Meet at a point.
  EXPECT_FALSE(Overlap(S(0, 0, 1, 0), S(2, 0, 3, 0)));  // Disjoint.
  EXPECT_FALSE(Overlap(S(0, 0, 2, 2), S(0, 2, 2, 0)));  // Crossing.
}

// -- intersection construction -----------------------------------------------

TEST(Intersect, CrossingPoint) {
  SegIntersection x = Intersect(S(0, 0, 2, 2), S(0, 2, 2, 0));
  ASSERT_EQ(x.kind, SegIntersection::Kind::kPoint);
  EXPECT_TRUE(ApproxEqual(x.point, Point(1, 1)));
}

TEST(Intersect, TouchPoint) {
  SegIntersection x = Intersect(S(0, 0, 2, 0), S(1, 0, 1, 3));
  ASSERT_EQ(x.kind, SegIntersection::Kind::kPoint);
  EXPECT_TRUE(ApproxEqual(x.point, Point(1, 0)));
}

TEST(Intersect, CollinearOverlapSegment) {
  SegIntersection x = Intersect(S(0, 0, 2, 0), S(1, 0, 3, 0));
  ASSERT_EQ(x.kind, SegIntersection::Kind::kSegment);
  EXPECT_TRUE(ApproxEqual(x.seg_a, Point(1, 0)));
  EXPECT_TRUE(ApproxEqual(x.seg_b, Point(2, 0)));
}

TEST(Intersect, CollinearMeetIsPoint) {
  SegIntersection x = Intersect(S(0, 0, 1, 0), S(1, 0, 2, 0));
  ASSERT_EQ(x.kind, SegIntersection::Kind::kPoint);
  EXPECT_TRUE(ApproxEqual(x.point, Point(1, 0)));
}

TEST(Intersect, ParallelNone) {
  EXPECT_EQ(Intersect(S(0, 0, 1, 0), S(0, 1, 1, 1)).kind,
            SegIntersection::Kind::kNone);
}

TEST(Intersect, NearMissOutsideParamRange) {
  EXPECT_EQ(Intersect(S(0, 0, 1, 1), S(3, 0, 4, -5)).kind,
            SegIntersection::Kind::kNone);
}

// -- distances ---------------------------------------------------------------

TEST(SegDistance, PointToSegment) {
  Seg s = S(0, 0, 4, 0);
  EXPECT_DOUBLE_EQ(Distance(Point(2, 3), s), 3);   // Perpendicular foot.
  EXPECT_DOUBLE_EQ(Distance(Point(-3, 4), s), 5);  // Clamped to endpoint.
  EXPECT_DOUBLE_EQ(Distance(Point(2, 0), s), 0);
}

TEST(SegDistance, SegmentToSegment) {
  EXPECT_DOUBLE_EQ(Distance(S(0, 0, 1, 0), S(0, 2, 1, 2)), 2);
  EXPECT_DOUBLE_EQ(Distance(S(0, 0, 2, 2), S(0, 2, 2, 0)), 0);  // Crossing.
  EXPECT_DOUBLE_EQ(Distance(S(0, 0, 1, 0), S(4, 0, 5, 0)), 3);
}

}  // namespace
}  // namespace modb
