#include "spatial/components.h"

#include <gtest/gtest.h>

#include "spatial/region_builder.h"

namespace modb {
namespace {

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

std::vector<Seg> SquareSegs(double x0, double y0, double side) {
  return {S(x0, y0, x0 + side, y0), S(x0 + side, y0, x0 + side, y0 + side),
          S(x0 + side, y0 + side, x0, y0 + side), S(x0, y0 + side, x0, y0)};
}

TEST(RegionComponents, SplitsFacesKeepingHoles) {
  std::vector<Seg> segs = SquareSegs(0, 0, 10);
  for (const Seg& s : SquareSegs(4, 4, 2)) segs.push_back(s);  // Hole.
  for (const Seg& s : SquareSegs(20, 20, 3)) segs.push_back(s);  // Face 2.
  Region r = *RegionBuilder::Close(segs);
  ASSERT_EQ(r.NumFaces(), 2u);
  auto parts = Components(r);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  // One part has the hole, the other does not; areas sum to the whole.
  double total = 0;
  bool saw_holed = false;
  for (const Region& part : *parts) {
    EXPECT_EQ(part.NumFaces(), 1u);
    total += part.Area();
    if (part.NumCycles() == 2) saw_holed = true;
  }
  EXPECT_TRUE(saw_holed);
  EXPECT_NEAR(total, r.Area(), 1e-9);
}

TEST(RegionComponents, SingleFaceIdentity) {
  Region r = *Region::FromPolygon(
      {Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)});
  auto parts = Components(r);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 1u);
  EXPECT_TRUE((*parts)[0] == r);
  EXPECT_EQ(NumComponents(r), 1u);
}

TEST(RegionComponents, EmptyRegion) {
  auto parts = Components(Region());
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

TEST(LineComponents, DisconnectedPieces) {
  Line l = *Line::Make({S(0, 0, 1, 1), S(1, 1, 2, 0),   // Connected pair.
                        S(10, 0, 11, 0)});              // Lone segment.
  std::vector<Line> parts = Components(l);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(NumComponents(l), 2u);
  std::size_t sizes[2] = {parts[0].NumSegments(), parts[1].NumSegments()};
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
}

TEST(LineComponents, CrossingCountsAsConnected) {
  Line l = *Line::Make({S(0, 0, 2, 2), S(0, 2, 2, 0)});
  EXPECT_EQ(NumComponents(l), 1u);
}

TEST(LineComponents, EmptyLine) {
  EXPECT_TRUE(Components(Line()).empty());
  EXPECT_EQ(NumComponents(Line()), 0u);
}

TEST(LineComponents, ChainTransitivity) {
  // a-b-c-d chained: one component even though a and d don't touch.
  Line l = *Line::Make({S(0, 0, 1, 1), S(1, 1, 2, 1), S(2, 1, 3, 0),
                        S(3, 0, 4, 4)});
  EXPECT_EQ(NumComponents(l), 1u);
}

}  // namespace
}  // namespace modb
