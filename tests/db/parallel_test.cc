#include "db/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "db/query.h"
#include "db/relation_io.h"
#include "gen/flights_gen.h"

namespace modb {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == kTasks; });
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 5u, 100u, 1000u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 7u, 64u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(pool, n, chunks,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      hits[i].fetch_add(1);
                    }
                  });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " chunks=" << chunks
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, ChunkBoundariesAreContiguousAndOrdered) {
  ThreadPool pool(2);
  const std::size_t n = 37, chunks = 5;
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
  std::mutex mu;
  ParallelFor(pool, n, chunks,
              [&](std::size_t c, std::size_t begin, std::size_t end) {
                std::lock_guard<std::mutex> lock(mu);
                ranges[c] = {begin, end};
              });
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, expect_begin) << c;
    EXPECT_LE(ranges[c].first, ranges[c].second) << c;
    expect_begin = ranges[c].second;
  }
  EXPECT_EQ(expect_begin, n);
}

// ---------------------------------------------------------------------------
// Parallel operators: byte-identical to the serial operators at every
// thread count (per-chunk buffers merged in chunk order).
// ---------------------------------------------------------------------------

// AttributeValue has no operator==, so compare through the storage
// serialization: two relations are byte-identical iff every serialized
// attribute of every tuple matches, in order.
void ExpectByteIdentical(const Relation& a, const Relation& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.schema().NumAttributes(), b.schema().NumAttributes());
  ASSERT_EQ(a.NumTuples(), b.NumTuples());
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    const Tuple& ta = a.tuple(i);
    const Tuple& tb = b.tuple(i);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      auto sa = SerializeAttribute(ta[j]);
      auto sb = SerializeAttribute(tb[j]);
      ASSERT_TRUE(sa.ok() && sb.ok());
      ASSERT_EQ(*sa, *sb) << "tuple " << i << " attr " << j;
    }
  }
}

Relation TestPlanes(int num_flights, std::uint64_t seed) {
  FlightsOptions opt;
  opt.num_flights = num_flights;
  opt.seed = seed;
  auto rel = GeneratePlanes(opt);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return *rel;
}

const std::vector<int> kThreadCounts = {1, 2, 4, 7};

// ExecOptions running on a pool (one chunk per pool thread).
ExecOptions PoolOptions(ThreadPool* pool) {
  ExecOptions options;
  options.parallel.num_threads = 0;
  options.parallel.pool = pool;
  return options;
}

TEST(ParallelOperators, SelectMatchesSerial) {
  Relation planes = TestPlanes(60, 1);
  auto pred = [](const Tuple& t) {
    const auto& mp = std::get<MovingPoint>(t[std::size_t(kFlightAttrFlight)]);
    return mp.NumUnits() % 2 == 0;
  };
  Relation serial = *Select(planes, pred);
  EXPECT_GT(serial.NumTuples(), 0u);
  EXPECT_LT(serial.NumTuples(), planes.NumTuples());
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ExpectByteIdentical(serial, *Select(planes, pred, PoolOptions(&pool)));
    // num_threads overrides chunking without a private pool.
    ExecOptions by_count;
    by_count.parallel.num_threads = threads;
    ExpectByteIdentical(serial, *Select(planes, pred, by_count));
  }
}

TEST(ParallelOperators, NestedLoopJoinMatchesSerial) {
  Relation a = TestPlanes(24, 2);
  Relation b = TestPlanes(24, 3);
  // Join flights whose deftimes overlap.
  auto pred = [&](const Tuple& ta, std::size_t, const Tuple& tb,
                  std::size_t) {
    const auto& ma = std::get<MovingPoint>(ta[std::size_t(kFlightAttrFlight)]);
    const auto& mb = std::get<MovingPoint>(tb[std::size_t(kFlightAttrFlight)]);
    if (ma.IsEmpty() || mb.IsEmpty()) return false;
    return ma.units().front().interval().start() <=
               mb.units().back().interval().end() &&
           mb.units().front().interval().start() <=
               ma.units().back().interval().end();
  };
  Relation serial = *NestedLoopJoin(a, b, pred);
  EXPECT_GT(serial.NumTuples(), 0u);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ExpectByteIdentical(serial, *NestedLoopJoin(a, b, pred,
                                                PoolOptions(&pool)));
  }
}

TEST(ParallelOperators, IndexJoinMatchesSerial) {
  Relation a = TestPlanes(32, 4);
  Relation b = TestPlanes(32, 5);
  auto pred = [](const Tuple&, std::size_t i, const Tuple&, std::size_t j) {
    return i != j;
  };
  Relation serial =
      *IndexJoinOnMovingPoint(a, kFlightAttrFlight, b, kFlightAttrFlight,
                              500.0, pred);
  EXPECT_GT(serial.NumTuples(), 0u);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    Relation par =
        *IndexJoinOnMovingPoint(a, kFlightAttrFlight, b, kFlightAttrFlight,
                                500.0, pred, PoolOptions(&pool));
    ExpectByteIdentical(serial, par);
  }
}

// Satellite: the prebuilt-index overload must produce a byte-identical
// relation to the building overload, serial and parallel, and the
// ExecStats tree must expose the rebuild count (1 building, 0 reusing).
TEST(ParallelOperators, PrebuiltIndexMatchesBuildingOverload) {
  Relation a = TestPlanes(32, 4);
  Relation b = TestPlanes(32, 5);
  auto pred = [](const Tuple&, std::size_t i, const Tuple&, std::size_t j) {
    return i != j;
  };
  ExecStats stats_built;
  ExecOptions opts_built;
  opts_built.stats = &stats_built;
  Relation built = *IndexJoinOnMovingPoint(a, kFlightAttrFlight, b,
                                           kFlightAttrFlight, 500.0, pred,
                                           opts_built);
  EXPECT_EQ(stats_built.index_builds, 1u);

  Result<RTree3D> index = BuildMovingPointIndex(b, kFlightAttrFlight);
  ASSERT_TRUE(index.ok());
  ExecStats stats_pre;
  ExecOptions opts_pre;
  opts_pre.stats = &stats_pre;
  Relation pre = *IndexJoinOnMovingPoint(a, kFlightAttrFlight, b, *index,
                                         500.0, pred, opts_pre);
  ExpectByteIdentical(built, pre);
  EXPECT_EQ(stats_pre.index_builds, 0u);

  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    Relation par = *IndexJoinOnMovingPoint(a, kFlightAttrFlight, b, *index,
                                           500.0, pred, PoolOptions(&pool));
    ExpectByteIdentical(built, par);
  }

  // Bad attribute index / non-moving-point attribute are rejected, not
  // fatal.
  EXPECT_FALSE(BuildMovingPointIndex(b, 999).ok());
  EXPECT_FALSE(BuildMovingPointIndex(b, -1).ok());
}

TEST(ParallelOperators, EmptyRelationAndMoreChunksThanTuples) {
  Relation planes = TestPlanes(3, 6);
  Relation empty("planes", planes.schema());
  auto all = [](const Tuple&) { return true; };
  ExecOptions options;
  options.parallel.num_threads = 8;  // more chunks than tuples
  ExpectByteIdentical(*Select(empty, all), *Select(empty, all, options));
  ExpectByteIdentical(*Select(planes, all), *Select(planes, all, options));
}

TEST(ParallelOperators, RejectsAbsurdThreadCounts) {
  Relation planes = TestPlanes(3, 6);
  auto all = [](const Tuple&) { return true; };
  ExecOptions options;
  options.parallel.num_threads = kMaxQueryThreads + 1;
  auto r = Select(planes, all, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // <= 0 means "auto" and stays valid.
  options.parallel.num_threads = -5;
  EXPECT_TRUE(Select(planes, all, options).ok());
  options.parallel.num_threads = kMaxQueryThreads;
  EXPECT_TRUE(Select(planes, all, options).ok());
}

// Requesting an ExecStats sink must not change the produced relation
// (the differential guarantee the instrumentation relies on), and the
// tree must describe the work that actually happened.
TEST(ParallelOperators, StatsSinkDoesNotChangeOutput) {
  Relation planes = TestPlanes(40, 7);
  auto pred = [](const Tuple& t) {
    const auto& mp = std::get<MovingPoint>(t[std::size_t(kFlightAttrFlight)]);
    return mp.NumUnits() % 2 == 1;
  };
  Relation plain = *Select(planes, pred);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ExecStats stats;
    ExecOptions options = PoolOptions(&pool);
    options.stats = &stats;
    ExpectByteIdentical(plain, *Select(planes, pred, options));
    EXPECT_EQ(stats.op, "select");
    EXPECT_EQ(stats.tuples_in, planes.NumTuples());
    EXPECT_EQ(stats.tuples_out, plain.NumTuples());
    EXPECT_EQ(stats.predicate_evals, planes.NumTuples());
    EXPECT_EQ(stats.workers, std::uint64_t(threads));
    // The pipelined engine reports one child per fused stage: the scan,
    // the selection, and the ordered sink.
    ASSERT_EQ(stats.children.size(), 3u);
    EXPECT_EQ(stats.children[0].op, "scan");
    EXPECT_EQ(stats.children[1].op, "select");
    EXPECT_EQ(stats.children[2].op, "sink");
    EXPECT_EQ(stats.children[0].tuples_in, planes.NumTuples());
    EXPECT_EQ(stats.children[1].predicate_evals, planes.NumTuples());
    EXPECT_EQ(stats.children[2].tuples_out, plain.NumTuples());
    // Exactly one relation materialized (the sink), every morsel
    // accounted for.
    EXPECT_EQ(stats.materializations, 1u);
    EXPECT_GE(stats.morsels, 1u);
  }
}

}  // namespace
}  // namespace modb
