#include "db/relation_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/flights_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

TEST(AttributeBlob, TaggedRoundTripAllKinds) {
  std::vector<AttributeValue> values = {
      IntValue(7),
      RealValue(2.5),
      BoolValue(true),
      StringValue(std::string("KLM")),
      Point(1, 2),
      Points::FromVector({{1, 1}, {2, 2}}),
      *Line::Make({*Seg::Make(Point(0, 0), Point(1, 1))}),
      *Region::FromPolygon({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)}),
      Periods::FromIntervals({TI(0, 1)}),
      AttributeValue(*MovingBool::Make({*UBool::Make(TI(0, 1), true)})),
      AttributeValue(*MovingReal::Make({*UReal::Make(TI(0, 1), 1, 0, 0, false)})),
      AttributeValue(*MovingPoint::Make(
          {*UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 1))})),
  };
  for (const AttributeValue& v : values) {
    Result<std::string> blob = SerializeAttribute(v);
    ASSERT_TRUE(blob.ok()) << blob.status();
    Result<AttributeValue> back = DeserializeAttribute(*blob);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(TypeOf(*back), TypeOf(v));
  }
}

TEST(AttributeBlob, RejectsCorruption) {
  EXPECT_FALSE(DeserializeAttribute("").ok());
  EXPECT_FALSE(DeserializeAttribute("\xff" "junk").ok());
  Result<std::string> blob = SerializeAttribute(IntValue(1));
  std::string truncated = blob->substr(0, blob->size() - 3);
  EXPECT_FALSE(DeserializeAttribute(truncated).ok());
}

TEST(RelationIO, PlanesRoundTripThroughFile) {
  Relation planes = *GeneratePlanes({.num_airports = 6,
                                     .num_flights = 15,
                                     .extent = 1000,
                                     .units_per_flight = 4,
                                     .speed = 100,
                                     .departure_window = 5,
                                     .seed = 5});
  std::string path = ::testing::TempDir() + "/planes.modb";
  ASSERT_TRUE(SaveRelation(planes, path).ok());
  Result<Relation> back = LoadRelation(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->name(), planes.name());
  ASSERT_EQ(back->NumTuples(), planes.NumTuples());
  ASSERT_EQ(back->schema().NumAttributes(), 3u);
  for (std::size_t i = 0; i < planes.NumTuples(); ++i) {
    EXPECT_EQ(std::get<StringValue>(back->tuple(i)[1]),
              std::get<StringValue>(planes.tuple(i)[1]));
    const auto& orig = std::get<MovingPoint>(planes.tuple(i)[2]);
    const auto& load = std::get<MovingPoint>(back->tuple(i)[2]);
    ASSERT_EQ(load.NumUnits(), orig.NumUnits());
    Instant mid = orig.DefTime().Minimum() + 0.3;
    EXPECT_TRUE(ApproxEqual(load.AtInstant(mid).val(),
                            orig.AtInstant(mid).val()));
  }
}

TEST(RelationIO, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.modb";
  {
    std::ofstream out(path, std::ios::binary);
    out << "nope";
  }
  EXPECT_FALSE(LoadRelation(path).ok());
  EXPECT_FALSE(LoadRelation("/does/not/exist").ok());
}

TEST(TimesliceOp, CollapsesMovingTypes) {
  Relation rel("obs", Schema({{"name", AttributeType::kString},
                              {"pos", AttributeType::kMovingPoint},
                              {"load", AttributeType::kMovingReal}}));
  ASSERT_TRUE(rel.Insert({StringValue(std::string("a")),
                          *MovingPoint::Make({*UPoint::FromEndpoints(
                              TI(0, 10), Point(0, 0), Point(10, 0))}),
                          *MovingReal::Make(
                              {*UReal::Make(TI(0, 10), 0, 2, 0, false)})})
                  .ok());
  ASSERT_TRUE(rel.Insert({StringValue(std::string("b")),
                          *MovingPoint::Make({*UPoint::FromEndpoints(
                              TI(20, 30), Point(5, 5), Point(6, 6))}),
                          *MovingReal::Make(
                              {*UReal::Constant(TI(20, 30), 1)})})
                  .ok());
  Result<Relation> slice = Timeslice(rel, 4);
  ASSERT_TRUE(slice.ok()) << slice.status();
  // Only tuple "a" exists at t=4.
  ASSERT_EQ(slice->NumTuples(), 1u);
  EXPECT_EQ(slice->schema().attribute(1).type, AttributeType::kPoint);
  EXPECT_EQ(slice->schema().attribute(2).type, AttributeType::kReal);
  EXPECT_TRUE(ApproxEqual(std::get<Point>(slice->tuple(0)[1]), Point(4, 0)));
  EXPECT_DOUBLE_EQ(std::get<RealValue>(slice->tuple(0)[2]).value(), 8);
}

TEST(TimesliceOp, StaticAttributesPassThrough) {
  Relation rel("mixed", Schema({{"id", AttributeType::kInt},
                                {"zone", AttributeType::kRegion}}));
  Region zone = *Region::FromPolygon(
      {Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)});
  ASSERT_TRUE(rel.Insert({IntValue(1), zone}).ok());
  Result<Relation> slice = Timeslice(rel, 99);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->NumTuples(), 1u);
  EXPECT_TRUE(std::get<Region>(slice->tuple(0)[1]) == zone);
}

}  // namespace
}  // namespace modb
