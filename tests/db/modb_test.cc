// modb::Db facade tests: registration lifecycle, typed request
// validation (unknown relations/attributes/type mismatches are typed
// errors that name the offender), result payloads matching direct
// operator calls, and the determinism contract — byte-identical result
// blocks for every thread count.

#include "db/modb.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "db/relation.h"
#include "gen/flights_gen.h"
#include "serve/wire.h"
#include "spatial/point.h"
#include "temporal/batch_ops.h"
#include "temporal/lifted_ops.h"
#include "temporal/moving.h"

namespace modb {
namespace {

Relation Planes(int flights = 16) {
  FlightsOptions gen;
  gen.num_flights = flights;
  gen.seed = 99;
  Result<Relation> planes = GeneratePlanes(gen);
  EXPECT_TRUE(planes.ok()) << planes.status();
  return *std::move(planes);
}

std::string Airline(const Relation& rel, std::size_t i) {
  return std::get<StringValue>(rel.tuple(i)[kFlightAttrAirline]).value();
}

const MovingPoint& Flight(const Relation& rel, std::size_t i) {
  return std::get<MovingPoint>(rel.tuple(i)[kFlightAttrFlight]);
}

std::string Block(const QueryResult& result) {
  Result<std::string> block = serve::EncodeResultBlock(result);
  EXPECT_TRUE(block.ok()) << block.status();
  return block.ok() ? *block : std::string();
}

// ---------------------------------------------------------------------------
// Registration lifecycle.
// ---------------------------------------------------------------------------

TEST(DbLifecycle, RegisterDropAndIntrospection) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"planes"});
  Result<std::uint64_t> n = db.NumTuples("planes");
  ASSERT_TRUE(n.ok());
  EXPECT_GT(*n, 0u);

  // Duplicate name, empty name, unknown drops.
  EXPECT_EQ(db.Register(Planes()).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Register(Relation("", Schema{})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Drop("ships").code(), StatusCode::kNotFound);
  EXPECT_EQ(db.NumTuples("ships").status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(db.Drop("planes").ok());
  EXPECT_TRUE(db.RelationNames().empty());
}

TEST(DbLifecycle, BuildIndexValidatesRelationAndAttribute) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  EXPECT_EQ(db.BuildIndex("ships", "flight").code(), StatusCode::kNotFound);

  Status bad_attr = db.BuildIndex("planes", "altitude");
  EXPECT_EQ(bad_attr.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_attr.message().find("altitude"), std::string::npos);

  // airline is a string, not an mpoint — the message names both types.
  Status bad_type = db.BuildIndex("planes", "airline");
  EXPECT_EQ(bad_type.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_type.message().find("string"), std::string::npos);
  EXPECT_NE(bad_type.message().find("mpoint"), std::string::npos);

  EXPECT_TRUE(db.BuildIndex("planes", "flight").ok());
}

// ---------------------------------------------------------------------------
// Request validation.
// ---------------------------------------------------------------------------

TEST(DbRun, TypedErrorsNameTheOffender) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());

  QueryRequest req;
  req.relation = "ships";
  EXPECT_EQ(db.Run(req).status().code(), StatusCode::kNotFound);

  req.relation = "planes";
  FilterSpec f;
  f.kind = FilterSpec::Kind::kStringEquals;
  f.attr = "altitude";
  req.filters = {f};
  Result<QueryResult> r = db.Run(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("altitude"), std::string::npos);

  // Type mismatch: string-equals over the mpoint attribute.
  f.attr = "flight";
  req.filters = {f};
  r = db.Run(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("mpoint"), std::string::npos);

  // Empty deftime window.
  f.kind = FilterSpec::Kind::kDeftimeIntersects;
  f.t0 = 5;
  f.t1 = 1;
  req.filters = {f};
  r = db.Run(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Project onto an unknown attribute.
  req.filters.clear();
  req.kind = QueryRequest::Kind::kProject;
  req.project = {"altitude"};
  r = db.Run(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Project with no attributes at all.
  req.project.clear();
  EXPECT_EQ(db.Run(req).status().code(), StatusCode::kInvalidArgument);

  // Join against an unregistered inner.
  req.kind = QueryRequest::Kind::kJoin;
  req.join_relation = "ships";
  req.attr = "flight";
  req.join_attr = "flight";
  EXPECT_EQ(db.Run(req).status().code(), StatusCode::kNotFound);
}

TEST(DbRun, InvalidThreadCountFailsTheSharedValidation) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  QueryRequest req;
  req.relation = "planes";
  ExecOptions options;
  options.parallel.num_threads = 5000;  // past kMaxQueryThreads = 4096
  Result<QueryResult> r = db.Run(req, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("num_threads"), std::string::npos);
  EXPECT_NE(r.status().message().find("4096"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Payloads match direct operator evaluation.
// ---------------------------------------------------------------------------

TEST(DbRun, SelectMatchesBruteForce) {
  const Relation planes = Planes();
  Db db;
  ASSERT_TRUE(db.Register(planes).ok());

  // Filter on the airline of the first tuple: guaranteed non-empty.
  const std::string airline = Airline(planes, 0);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < planes.NumTuples(); ++i) {
    if (Airline(planes, i) == airline) ++expect;
  }

  QueryRequest req;
  req.kind = QueryRequest::Kind::kSelect;
  req.relation = "planes";
  FilterSpec f;
  f.kind = FilterSpec::Kind::kStringEquals;
  f.attr = "airline";
  f.value = airline;
  req.filters = {f};
  Result<QueryResult> r = db.Run(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->payload, QueryResult::Payload::kRows);
  EXPECT_EQ(r->rows.NumTuples(), expect);
  EXPECT_GT(expect, 0u);
  EXPECT_FALSE(r->stats.op.empty());
}

TEST(DbRun, PresentAtFilterMatchesDirectPresent) {
  const Relation planes = Planes();
  Db db;
  ASSERT_TRUE(db.Register(planes).ok());

  const Instant t = 12.0;
  std::size_t expect = 0;
  for (std::size_t i = 0; i < planes.NumTuples(); ++i) {
    if (Flight(planes, i).Present(t)) ++expect;
  }

  QueryRequest req;
  req.relation = "planes";
  FilterSpec f;
  f.kind = FilterSpec::Kind::kPresentAt;
  f.attr = "flight";
  f.t0 = t;
  req.filters = {f};
  Result<QueryResult> r = db.Run(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.NumTuples(), expect);
}

TEST(DbRun, ProjectKeepsNamedAttributesInOrder) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  QueryRequest req;
  req.kind = QueryRequest::Kind::kProject;
  req.relation = "planes";
  req.project = {"id", "airline"};
  Result<QueryResult> r = db.Run(req);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.schema().NumAttributes(), 2u);
  EXPECT_EQ(r->rows.schema().attribute(0).name, "id");
  EXPECT_EQ(r->rows.schema().attribute(1).name, "airline");
  Result<std::uint64_t> n = db.NumTuples("planes");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(r->rows.NumTuples(), *n);
}

TEST(DbRun, IndexJoinMatchesNestedLoopJoin) {
  Db db;
  ASSERT_TRUE(db.Register(Planes(12)).ok());
  ASSERT_TRUE(db.BuildIndex("planes", "flight").ok());

  QueryRequest req;
  req.kind = QueryRequest::Kind::kJoin;
  req.relation = "planes";
  req.join_relation = "planes";
  req.attr = "flight";
  req.join_attr = "flight";
  req.distance = 500.0;
  req.distinct_pairs = true;
  Result<QueryResult> nested = db.Run(req);
  ASSERT_TRUE(nested.ok()) << nested.status();

  req.kind = QueryRequest::Kind::kIndexJoin;
  Result<QueryResult> indexed = db.Run(req);
  ASSERT_TRUE(indexed.ok()) << indexed.status();

  // The engine names the output relations differently per algorithm
  // (planes_x_planes vs planes_ix_planes); the contract is on schema and
  // tuples. Re-materialize both under one name and compare the blocks.
  auto renamed = [](const QueryResult& r) {
    QueryResult out;
    out.rows = Relation("joined", r.rows.schema());
    for (const Tuple& t : r.rows.tuples()) {
      EXPECT_TRUE(out.rows.Insert(t).ok());
    }
    return out;
  };
  EXPECT_GT(nested->rows.NumTuples(), 0u);
  EXPECT_EQ(Block(renamed(*nested)), Block(renamed(*indexed)));
  // The prebuilt index was reused, not rebuilt inside the plan.
  EXPECT_EQ(indexed->stats.index_builds, 0u);
}

TEST(DbRun, AtInstantBatchMatchesPerTupleKernels) {
  const Relation planes = Planes();
  Db db;
  ASSERT_TRUE(db.Register(planes).ok());

  std::vector<Instant> instants;
  for (Instant t = 0; t <= 24.0; t += 1.0) instants.push_back(t);

  QueryRequest req;
  req.kind = QueryRequest::Kind::kAtInstantBatch;
  req.relation = "planes";
  req.attr = "flight";
  req.instants = instants;
  Result<QueryResult> r = db.Run(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->payload, QueryResult::Payload::kXY);
  ASSERT_EQ(r->batch_tuples, planes.NumTuples());
  ASSERT_EQ(r->batch_instants, instants.size());
  const std::size_t cells = planes.NumTuples() * instants.size();
  ASSERT_EQ(r->xs.size(), cells);
  ASSERT_EQ(r->ys.size(), cells);
  ASSERT_EQ(r->defined.size(), cells);

  BatchScratch scratch;
  BatchXYOutput xy;
  for (std::size_t i = 0; i < planes.NumTuples(); ++i) {
    ASSERT_TRUE(
        AtInstantBatchXYInto(Flight(planes, i), instants, &xy, &scratch).ok());
    for (std::size_t k = 0; k < instants.size(); ++k) {
      const std::size_t cell = i * instants.size() + k;
      EXPECT_EQ(r->xs[cell], xy.xs[k]);
      EXPECT_EQ(r->ys[cell], xy.ys[k]);
      EXPECT_EQ(r->defined[cell], xy.defined[k]);
    }
  }
}

TEST(DbRun, PresentBatchMatchesDirectPresent) {
  const Relation planes = Planes();
  Db db;
  ASSERT_TRUE(db.Register(planes).ok());

  const std::vector<Instant> instants = {0.0, 6.0, 12.0, 18.0, 24.0};
  QueryRequest req;
  req.kind = QueryRequest::Kind::kPresentBatch;
  req.relation = "planes";
  req.attr = "flight";
  req.instants = instants;
  Result<QueryResult> r = db.Run(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->payload, QueryResult::Payload::kPresent);
  ASSERT_EQ(r->present.size(), planes.NumTuples() * instants.size());
  for (std::size_t i = 0; i < planes.NumTuples(); ++i) {
    for (std::size_t k = 0; k < instants.size(); ++k) {
      EXPECT_EQ(r->present[i * instants.size() + k] != 0,
                Flight(planes, i).Present(instants[k]))
          << "tuple " << i << " instant " << instants[k];
    }
  }
  EXPECT_EQ(r->stats.op, "present_batch_many");
}

TEST(DbRun, BatchKindsRejectUnsortedInstants) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  QueryRequest req;
  req.kind = QueryRequest::Kind::kAtInstantBatch;
  req.relation = "planes";
  req.attr = "flight";
  req.instants = {2.0, 1.0};
  EXPECT_EQ(db.Run(req).status().code(), StatusCode::kInvalidArgument);
  req.kind = QueryRequest::Kind::kPresentBatch;
  EXPECT_EQ(db.Run(req).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical result blocks for every thread count.
// ---------------------------------------------------------------------------

TEST(DbRun, ResultBlocksAreByteIdenticalAcrossThreadCounts) {
  Db db;
  ASSERT_TRUE(db.Register(Planes(12)).ok());
  ASSERT_TRUE(db.BuildIndex("planes", "flight").ok());

  std::vector<QueryRequest> requests;
  QueryRequest select;
  select.kind = QueryRequest::Kind::kSelect;
  select.relation = "planes";
  FilterSpec f;
  f.kind = FilterSpec::Kind::kTrajectoryLengthAtLeast;
  f.attr = "flight";
  f.threshold = 5000.0;
  select.filters = {f};
  requests.push_back(select);

  QueryRequest join;
  join.kind = QueryRequest::Kind::kIndexJoin;
  join.relation = "planes";
  join.join_relation = "planes";
  join.attr = "flight";
  join.join_attr = "flight";
  join.distance = 500.0;
  requests.push_back(join);

  QueryRequest batch;
  batch.kind = QueryRequest::Kind::kAtInstantBatch;
  batch.relation = "planes";
  batch.attr = "flight";
  for (Instant t = 0; t <= 24.0; t += 0.5) batch.instants.push_back(t);
  requests.push_back(batch);

  for (const QueryRequest& req : requests) {
    ExecOptions serial;
    serial.parallel.num_threads = 1;
    Result<QueryResult> base = db.Run(req, serial);
    ASSERT_TRUE(base.ok()) << base.status();
    const std::string expect = Block(*base);
    for (int threads : {2, 4, 8}) {
      ExecOptions options;
      options.parallel.num_threads = threads;
      Result<QueryResult> r = db.Run(req, options);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(Block(*r), expect)
          << "kind " << int(req.kind) << " threads " << threads;
    }
  }
}

TEST(DbRun, StatsMirrorIntoCallerSink) {
  Db db;
  ASSERT_TRUE(db.Register(Planes()).ok());
  QueryRequest req;
  req.relation = "planes";
  ExecStats stats;
  ExecOptions options;
  options.stats = &stats;
  Result<QueryResult> r = db.Run(req, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(stats.op, r->stats.op);
  EXPECT_EQ(stats.tuples_out, r->stats.tuples_out);
  EXPECT_FALSE(stats.op.empty());
}

}  // namespace
}  // namespace modb
