#include "db/relation.h"

#include <gtest/gtest.h>

#include "db/query.h"
#include "gen/flights_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

Relation MakePlanesSmall() {
  // Two planes crossing paths (closest approach 0 at t=5, position (5,0))
  // and one far away.
  Relation planes("planes", Schema({{"airline", AttributeType::kString},
                                    {"id", AttributeType::kString},
                                    {"flight", AttributeType::kMovingPoint}}));
  auto ti = *TimeInterval::Make(0, 10, true, true);
  MovingPoint f1 = *MovingPoint::Make(
      {*UPoint::FromEndpoints(ti, Point(0, 0), Point(10, 0))});
  MovingPoint f2 = *MovingPoint::Make(
      {*UPoint::FromEndpoints(ti, Point(5, -5), Point(5, 5))});
  MovingPoint f3 = *MovingPoint::Make(
      {*UPoint::FromEndpoints(ti, Point(100, 100), Point(120, 100))});
  EXPECT_TRUE(planes
                  .Insert({StringValue(std::string("Lufthansa")),
                           StringValue(std::string("LH1")), f1})
                  .ok());
  EXPECT_TRUE(planes
                  .Insert({StringValue(std::string("KLM")),
                           StringValue(std::string("KL2")), f2})
                  .ok());
  EXPECT_TRUE(planes
                  .Insert({StringValue(std::string("Lufthansa")),
                           StringValue(std::string("LH3")), f3})
                  .ok());
  return planes;
}

TEST(SchemaTest, IndexLookup) {
  Schema s({{"a", AttributeType::kInt}, {"b", AttributeType::kReal}});
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("zzz"), -1);
}

TEST(RelationInsert, TypeChecking) {
  Relation r("t", Schema({{"x", AttributeType::kInt}}));
  EXPECT_TRUE(r.Insert({IntValue(1)}).ok());
  EXPECT_FALSE(r.Insert({RealValue(1.0)}).ok());   // Wrong type.
  EXPECT_FALSE(r.Insert({IntValue(1), IntValue(2)}).ok());  // Wrong arity.
  EXPECT_EQ(r.NumTuples(), 1u);
}

TEST(QueryOps, SelectAndProject) {
  Relation planes = MakePlanesSmall();
  Relation lh = *Select(planes, [](const Tuple& t) {
    return std::get<StringValue>(t[0]).value() == "Lufthansa";
  });
  EXPECT_EQ(lh.NumTuples(), 2u);
  auto ids = Project(lh, {"id"});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->schema().NumAttributes(), 1u);
  EXPECT_EQ(std::get<StringValue>(ids->tuple(0)[0]).value(), "LH1");
  EXPECT_FALSE(Project(lh, {"nope"}).ok());
}

// The paper's first query: SELECT airline, id FROM planes WHERE
// airline = "Lufthansa" AND length(trajectory(flight)) > 5000.
TEST(PaperQueries, TrajectoryLengthFilter) {
  Relation planes = *GeneratePlanes({.num_airports = 8,
                                     .num_flights = 30,
                                     .extent = 10000,
                                     .units_per_flight = 4,
                                     .speed = 800,
                                     .departure_window = 24,
                                     .seed = 1});
  Relation result = *Select(planes, [](const Tuple& t) {
    return std::get<StringValue>(t[kFlightAttrAirline]).value() ==
               "Lufthansa" &&
           Trajectory(std::get<MovingPoint>(t[kFlightAttrFlight])).Length() >
               5000;
  });
  // Sanity: all results really are long Lufthansa flights, and the
  // filter is non-trivial in both directions.
  for (const Tuple& t : result.tuples()) {
    EXPECT_EQ(std::get<StringValue>(t[0]).value(), "Lufthansa");
    EXPECT_GT(Trajectory(std::get<MovingPoint>(t[2])).Length(), 5000);
  }
  EXPECT_LT(result.NumTuples(), planes.NumTuples());
}

// The paper's second query: pairs of planes that came closer than 0.5:
// val(initial(atmin(distance(p.flight, q.flight)))) < 0.5.
TEST(PaperQueries, SpatioTemporalJoin) {
  Relation planes = MakePlanesSmall();
  auto close_pred = [](const Tuple& a, std::size_t i, const Tuple& b,
                       std::size_t j) {
    if (i >= j) return false;  // Dedup self-join pairs.
    auto d = LiftedDistance(std::get<MovingPoint>(a[2]),
                            std::get<MovingPoint>(b[2]));
    if (!d.ok() || d->IsEmpty()) return false;
    auto am = AtMin(*d);
    if (!am.ok()) return false;
    return am->Initial().val() < 0.5;
  };
  Relation pairs = *NestedLoopJoin(planes, planes, close_pred);
  ASSERT_EQ(pairs.NumTuples(), 1u);
  EXPECT_EQ(std::get<StringValue>(pairs.tuple(0)[1]).value(), "LH1");
  EXPECT_EQ(std::get<StringValue>(pairs.tuple(0)[4]).value(), "KL2");
}

TEST(QueryOps, IndexJoinMatchesNestedLoop) {
  Relation planes = *GeneratePlanes({.num_airports = 6,
                                     .num_flights = 25,
                                     .extent = 1000,
                                     .units_per_flight = 4,
                                     .speed = 100,
                                     .departure_window = 5,
                                     .seed = 3});
  const double kDist = 40;
  auto pred = [kDist](const Tuple& a, std::size_t i, const Tuple& b,
                      std::size_t j) {
    if (i >= j) return false;
    auto d = LiftedDistance(std::get<MovingPoint>(a[2]),
                            std::get<MovingPoint>(b[2]));
    if (!d.ok() || d->IsEmpty()) return false;
    auto mv = MinValue(*d);
    return mv.has_value() && *mv < kDist;
  };
  Relation nl = *NestedLoopJoin(planes, planes, pred);
  Relation ix = *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                        kFlightAttrFlight, kDist, pred);
  EXPECT_EQ(ix.NumTuples(), nl.NumTuples());
  EXPECT_GT(nl.NumTuples(), 0u);
}

TEST(AttributeTypes, NamesAndTypeOf) {
  EXPECT_STREQ(AttributeTypeName(AttributeType::kMovingPoint), "mpoint");
  AttributeValue v = IntValue(1);
  EXPECT_EQ(TypeOf(v), AttributeType::kInt);
  AttributeValue m = MovingPoint();
  EXPECT_EQ(TypeOf(m), AttributeType::kMovingPoint);
}

}  // namespace
}  // namespace modb
