#include "db/aggregate.h"

#include <gtest/gtest.h>

#include "gen/flights_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

Relation Numbers() {
  Relation r("nums", Schema({{"group", AttributeType::kString},
                             {"x", AttributeType::kReal}}));
  auto add = [&](const char* g, double x) {
    (void)r.Insert({StringValue(std::string(g)), RealValue(x)});
  };
  add("a", 1);
  add("a", 3);
  add("b", 10);
  add("b", 20);
  add("b", 30);
  return r;
}

TEST(AggregateTest, ScalarOps) {
  Relation r = Numbers();
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kCount), 5);
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kSum, Attr("x")), 64);
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kAvg, Attr("x")), 64.0 / 5);
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kMin, Attr("x")), 1);
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kMax, Attr("x")), 30);
}

TEST(AggregateTest, ExpressionArgument) {
  Relation r = Numbers();
  // Aggregate over a computed expression: count of x, via lt filter first.
  Relation big = *SelectWhere(r, Gt(Attr("x"), Lit(5.0)));
  EXPECT_DOUBLE_EQ(*Aggregate(big, AggregateOp::kCount), 3);
}

TEST(AggregateTest, EmptyRelationBehavior) {
  Relation r("empty", Schema({{"x", AttributeType::kReal}}));
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kCount), 0);
  EXPECT_DOUBLE_EQ(*Aggregate(r, AggregateOp::kSum, Attr("x")), 0);
  EXPECT_FALSE(Aggregate(r, AggregateOp::kAvg, Attr("x")).ok());
  EXPECT_FALSE(Aggregate(r, AggregateOp::kMin, Attr("x")).ok());
}

TEST(AggregateTest, Validation) {
  Relation r = Numbers();
  EXPECT_FALSE(Aggregate(r, AggregateOp::kSum).ok());  // Missing expr.
  EXPECT_FALSE(Aggregate(r, AggregateOp::kSum, Attr("group")).ok());
  EXPECT_FALSE(Aggregate(r, AggregateOp::kSum, Attr("zzz")).ok());
}

TEST(GroupByTest, PerGroupValues) {
  Relation r = Numbers();
  Relation avg = *GroupBy(r, "group", AggregateOp::kAvg, Attr("x"));
  ASSERT_EQ(avg.NumTuples(), 2u);
  EXPECT_EQ(std::get<StringValue>(avg.tuple(0)[0]).value(), "a");
  EXPECT_DOUBLE_EQ(std::get<RealValue>(avg.tuple(0)[1]).value(), 2);
  EXPECT_EQ(std::get<StringValue>(avg.tuple(1)[0]).value(), "b");
  EXPECT_DOUBLE_EQ(std::get<RealValue>(avg.tuple(1)[1]).value(), 20);
  Relation count = *GroupBy(r, "group", AggregateOp::kCount);
  EXPECT_DOUBLE_EQ(std::get<RealValue>(count.tuple(1)[1]).value(), 3);
}

TEST(GroupByTest, Validation) {
  Relation r = Numbers();
  EXPECT_FALSE(GroupBy(r, "x", AggregateOp::kCount).ok());    // Key not string.
  EXPECT_FALSE(GroupBy(r, "nope", AggregateOp::kCount).ok());
}

// The motivating query: average flight length per airline.
TEST(GroupByTest, FlightsPerAirline) {
  Relation planes = *GeneratePlanes({.num_airports = 6,
                                     .num_flights = 25,
                                     .extent = 5000,
                                     .units_per_flight = 4,
                                     .speed = 500,
                                     .departure_window = 10,
                                     .seed = 2});
  ExprPtr length = Call("length", {Call("trajectory", {Attr("flight")})});
  Relation per_airline =
      *GroupBy(planes, "airline", AggregateOp::kAvg, length);
  EXPECT_EQ(per_airline.NumTuples(), 5u);  // Five airlines in the generator.
  for (const Tuple& t : per_airline.tuples()) {
    EXPECT_GT(std::get<RealValue>(t[1]).value(), 0);
  }
}

}  // namespace
}  // namespace modb
