#include "db/expr.h"

#include <gtest/gtest.h>

#include "gen/flights_gen.h"
#include "gen/region_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

Relation SmallPlanes() {
  Relation planes("planes", Schema({{"airline", AttributeType::kString},
                                    {"id", AttributeType::kString},
                                    {"flight", AttributeType::kMovingPoint}}));
  auto add = [&](const char* airline, const char* id, Point a, Point b) {
    (void)planes.Insert({StringValue(std::string(airline)),
                         StringValue(std::string(id)),
                         *MovingPoint::Make({*UPoint::FromEndpoints(
                             TI(0, 10), a, b)})});
  };
  add("Lufthansa", "LH1", Point(0, 0), Point(10, 0));     // Length 10.
  add("Lufthansa", "LH2", Point(0, 1), Point(3, 5));      // Length 5.
  add("KLM", "KL3", Point(5, -5), Point(5, 5));           // Crosses LH1.
  return planes;
}

TEST(ExprTypes, AttrAndConstInference) {
  Relation planes = SmallPlanes();
  EXPECT_EQ(*InferType(*Attr("airline"), planes.schema()),
            AttributeType::kString);
  EXPECT_EQ(*InferType(*Attr("flight"), planes.schema()),
            AttributeType::kMovingPoint);
  EXPECT_FALSE(InferType(*Attr("bogus"), planes.schema()).ok());
  EXPECT_EQ(*InferType(*Lit(5.0), planes.schema()), AttributeType::kReal);
}

TEST(ExprTypes, CallInference) {
  Relation planes = SmallPlanes();
  const Schema& s = planes.schema();
  EXPECT_EQ(*InferType(*Call("trajectory", {Attr("flight")}), s),
            AttributeType::kLine);
  EXPECT_EQ(*InferType(
                *Call("length", {Call("trajectory", {Attr("flight")})}), s),
            AttributeType::kReal);
  EXPECT_EQ(*InferType(*Call("distance", {Attr("flight"), Attr("flight")}), s),
            AttributeType::kMovingReal);
  // Type errors surface.
  EXPECT_FALSE(InferType(*Call("length", {Attr("airline")}), s).ok());
  EXPECT_FALSE(InferType(*Call("frobnicate", {Attr("airline")}), s).ok());
}

// Q1 of the paper, declaratively.
TEST(ExprQueries, Q1TrajectoryLength) {
  Relation planes = SmallPlanes();
  ExprPtr pred =
      And(Eq(Attr("airline"), Lit("Lufthansa")),
          Gt(Call("length", {Call("trajectory", {Attr("flight")})}),
             Lit(7.0)));
  Result<Relation> q1 = SelectWhere(planes, pred);
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_EQ(q1->NumTuples(), 1u);
  EXPECT_EQ(std::get<StringValue>(q1->tuple(0)[1]).value(), "LH1");
}

// Q2 of the paper, declaratively: the spatio-temporal self join.
TEST(ExprQueries, Q2CloseEncounterJoin) {
  Relation p = SmallPlanes();
  ExprPtr pred = Lt(
      Call("initial_val",
           {Call("atmin",
                 {Call("distance", {Attr("planes.flight"),
                                    Attr("planes.flight")})})}),
      Lit(0.5));
  // Self-join: both sides named "planes" — prefixes collide, so rename.
  Relation q("q", p.schema());
  for (const Tuple& t : p.tuples()) ASSERT_TRUE(q.Insert(t).ok());
  ExprPtr pred2 = Lt(
      Call("initial_val",
           {Call("atmin", {Call("distance", {Attr("planes.flight"),
                                             Attr("q.flight")})})}),
      Lit(0.5));
  Result<Relation> pairs = JoinWhere(p, q, pred2, /*dedup_self_pairs=*/true);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  ASSERT_EQ(pairs->NumTuples(), 1u);
  EXPECT_EQ(std::get<StringValue>(pairs->tuple(0)[1]).value(), "LH1");
  EXPECT_EQ(std::get<StringValue>(pairs->tuple(0)[4]).value(), "KL3");
  (void)pred;
}

TEST(ExprQueries, SelectRejectsNonBoolPredicate) {
  Relation planes = SmallPlanes();
  EXPECT_FALSE(SelectWhere(planes, Attr("airline")).ok());
  EXPECT_FALSE(
      SelectWhere(planes, Call("trajectory", {Attr("flight")})).ok());
}

TEST(ExprEval, MovingRealPipeline) {
  Relation planes = SmallPlanes();
  // speed of LH2 is 0.5 (length 5 over 10 time units).
  ExprPtr speed_max = Call("max", {Call("speed", {Attr("flight")})});
  Result<AttributeValue> v =
      Eval(*speed_max, planes.schema(), planes.tuple(1));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_NEAR(std::get<RealValue>(*v).value(), 0.5, 1e-9);
}

TEST(ExprEval, PresentAndDeftime) {
  Relation planes = SmallPlanes();
  ExprPtr present5 = Call("present", {Attr("flight"), Lit(5.0)});
  EXPECT_TRUE(std::get<BoolValue>(
                  *Eval(*present5, planes.schema(), planes.tuple(0)))
                  .value());
  ExprPtr present99 = Call("present", {Attr("flight"), Lit(99.0)});
  EXPECT_FALSE(std::get<BoolValue>(
                   *Eval(*present99, planes.schema(), planes.tuple(0)))
                   .value());
  ExprPtr dur = Call("duration", {Call("deftime", {Attr("flight")})});
  EXPECT_NEAR(std::get<RealValue>(
                  *Eval(*dur, planes.schema(), planes.tuple(0)))
                  .value(),
              10, 1e-9);
}

TEST(ExprEval, LiftedComparisonYieldsMovingBool) {
  Relation planes = SmallPlanes();
  // distance(LH1, fixed point) < 3 — a moving bool, then project.
  ExprPtr d = Call("distance", {Attr("flight"), Lit(AttributeValue(Point(5, 0)))});
  ExprPtr lifted = Lt(d, Lit(3.0));
  Result<AttributeValue> v = Eval(*lifted, planes.schema(), planes.tuple(0));
  ASSERT_TRUE(v.ok()) << v.status();
  const auto& mb = std::get<MovingBool>(*v);
  EXPECT_FALSE(mb.AtInstant(1).val());
  EXPECT_TRUE(mb.AtInstant(5).val());
  // when_true / duration of the lifted predicate: |x-5| < 3 ⇒ 6 units.
  ExprPtr dur = Call("duration", {Call("when_true", {lifted})});
  EXPECT_NEAR(std::get<RealValue>(
                  *Eval(*dur, planes.schema(), planes.tuple(0)))
                  .value(),
              6, 1e-9);
}

TEST(ExprEval, ErrorsPropagate) {
  Relation planes = SmallPlanes();
  // min of an empty moving real (distance over disjoint deftimes).
  Relation late("late", planes.schema());
  ASSERT_TRUE(late.Insert({StringValue(std::string("X")),
                           StringValue(std::string("X1")),
                           *MovingPoint::Make({*UPoint::FromEndpoints(
                               TI(100, 110), Point(0, 0), Point(1, 1))})})
                  .ok());
  ExprPtr pred = Lt(Call("min", {Call("distance", {Attr("planes.flight"),
                                                   Attr("late.flight")})}),
                    Lit(1.0));
  Result<Relation> joined = JoinWhere(planes, late, pred);
  EXPECT_FALSE(joined.ok());  // min over empty → FailedPrecondition.
  EXPECT_EQ(joined.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExprMeta, SupportedOperationsNonEmpty) {
  EXPECT_GT(SupportedOperations().size(), 20u);
}

TEST(ExprEval, RegionOperations) {
  Region zone = *Region::FromPolygon(
      {Point(2, -2), Point(8, -2), Point(8, 2), Point(2, 2)});
  Relation rel("zones", Schema({{"zone", AttributeType::kRegion},
                                {"track", AttributeType::kMovingPoint}}));
  ASSERT_TRUE(rel.Insert({zone,
                          *MovingPoint::Make({*UPoint::FromEndpoints(
                              TI(0, 10), Point(0, 0), Point(10, 0))})})
                  .ok());
  // area(region) → real.
  EXPECT_DOUBLE_EQ(std::get<RealValue>(*Eval(*Call("area", {Attr("zone")}),
                                             rel.schema(), rel.tuple(0)))
                       .value(),
                   24);
  // perimeter(region) → real.
  EXPECT_DOUBLE_EQ(
      std::get<RealValue>(*Eval(*Call("perimeter", {Attr("zone")}),
                                rel.schema(), rel.tuple(0)))
          .value(),
      20);
  // inside(mpoint, region) → mbool; duration of the true part = 6.
  ExprPtr in_dur = Call(
      "duration",
      {Call("when_true", {Call("inside", {Attr("track"), Attr("zone")})})});
  EXPECT_NEAR(std::get<RealValue>(
                  *Eval(*in_dur, rel.schema(), rel.tuple(0)))
                  .value(),
              6, 1e-9);
  // inside(point, region) → bool.
  ExprPtr pt_in = Call("inside", {Lit(AttributeValue(Point(5, 0))),
                                  Attr("zone")});
  EXPECT_TRUE(std::get<BoolValue>(*Eval(*pt_in, rel.schema(), rel.tuple(0)))
                  .value());
}

TEST(ExprEval, MovingBoolAlgebra) {
  Relation rel("r", Schema({{"track", AttributeType::kMovingPoint}}));
  ASSERT_TRUE(rel.Insert({*MovingPoint::Make({*UPoint::FromEndpoints(
                             TI(0, 10), Point(0, 0), Point(10, 0))})})
                  .ok());
  ExprPtr d = Call("distance",
                   {Attr("track"), Lit(AttributeValue(Point(5, 0)))});
  // NOT(d < 2) AND (d < 4): true in the rings 1 < |x-5| and |x-5| < 4.
  ExprPtr ring = Call("and", {Call("not", {Lt(d, Lit(2.0))}),
                              Lt(d, Lit(4.0))});
  Result<AttributeValue> v = Eval(*ring, rel.schema(), rel.tuple(0));
  ASSERT_TRUE(v.ok()) << v.status();
  const auto& mb = std::get<MovingBool>(*v);
  EXPECT_TRUE(mb.AtInstant(2).val());    // d = 3.
  EXPECT_FALSE(mb.AtInstant(5).val());   // d = 0.
  EXPECT_FALSE(mb.AtInstant(0.5).val()); // d = 4.5.
}

TEST(ExprEval, InitialInstAndPasses) {
  Relation rel("r", Schema({{"track", AttributeType::kMovingPoint}}));
  ASSERT_TRUE(rel.Insert({*MovingPoint::Make({*UPoint::FromEndpoints(
                             TI(3, 13), Point(0, 0), Point(10, 0))})})
                  .ok());
  EXPECT_DOUBLE_EQ(
      std::get<RealValue>(*Eval(*Call("initial_inst", {Call("speed",
                                                            {Attr("track")})}),
                                rel.schema(), rel.tuple(0)))
          .value(),
      3);
  ExprPtr passes = Call("passes", {Attr("track"),
                                   Lit(AttributeValue(Point(5, 0)))});
  EXPECT_TRUE(std::get<BoolValue>(
                  *Eval(*passes, rel.schema(), rel.tuple(0)))
                  .value());
  // initial_val on a moving point yields its first position.
  auto first = Eval(*Call("initial_val", {Attr("track")}), rel.schema(),
                    rel.tuple(0));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(ApproxEqual(std::get<Point>(*first), Point(0, 0)));
}

TEST(ExprEval, AtInstantProjections) {
  Relation planes = SmallPlanes();
  // Position of LH1 at t=3.
  ExprPtr at3 = Call("atinstant", {Attr("flight"), Lit(3.0)});
  Result<AttributeValue> v = Eval(*at3, planes.schema(), planes.tuple(0));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(ApproxEqual(std::get<Point>(*v), Point(3, 0)));
  // Outside the deftime → FailedPrecondition.
  ExprPtr at99 = Call("atinstant", {Attr("flight"), Lit(99.0)});
  EXPECT_EQ(Eval(*at99, planes.schema(), planes.tuple(0)).status().code(),
            StatusCode::kFailedPrecondition);
  // Type inference: mreal @ instant → real.
  ExprPtr speed_at = Call("atinstant", {Call("speed", {Attr("flight")}),
                                        Lit(3.0)});
  EXPECT_EQ(*InferType(*speed_at, planes.schema()), AttributeType::kReal);
  EXPECT_NEAR(std::get<RealValue>(
                  *Eval(*speed_at, planes.schema(), planes.tuple(0)))
                  .value(),
              1.0, 1e-9);
}

TEST(ExprEval, TraversedViaExpr) {
  std::mt19937_64 rng(3);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 4;
  opts.shape.jitter = 0;
  opts.shape.radius = 3;
  opts.num_units = 1;
  opts.unit_duration = 10;
  opts.drift = Point(10, 0);
  Relation rel("r", Schema({{"storm", AttributeType::kMovingRegion}}));
  ASSERT_TRUE(rel.Insert({*GenerateMovingRegion(rng, opts)}).ok());
  ExprPtr footprint_area = Call("area", {Call("traversed", {Attr("storm")})});
  Result<AttributeValue> v =
      Eval(*footprint_area, rel.schema(), rel.tuple(0));
  ASSERT_TRUE(v.ok()) << v.status();
  // Diamond area 18 + height 4.24·10 ≈ 60.4.
  EXPECT_GT(std::get<RealValue>(*v).value(), 50);
}

}  // namespace
}  // namespace modb
