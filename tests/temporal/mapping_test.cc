#include "temporal/mapping.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

UBool UB(double s, double e, bool v, bool lc = true, bool rc = true) {
  return *UBool::Make(TI(s, e, lc, rc), v);
}

TEST(MappingMake, SortsUnitsByInterval) {
  auto m = MovingBool::Make({UB(4, 5, true), UB(0, 1, false)});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->unit(0).interval().start(), 0);
  EXPECT_EQ(m->unit(1).interval().start(), 4);
}

TEST(MappingMake, RejectsOverlappingIntervals) {
  EXPECT_FALSE(MovingBool::Make({UB(0, 2, true), UB(1, 3, false)}).ok());
}

TEST(MappingMake, RejectsAdjacentEqualValues) {
  // Mapping constraint (ii): adjacent intervals must carry distinct unit
  // functions (minimal representation).
  EXPECT_FALSE(MovingBool::Make({UB(0, 1, true, true, false),
                                 UB(1, 2, true)}).ok());
}

TEST(MappingMake, AdjacentDistinctValuesOk) {
  EXPECT_TRUE(MovingBool::Make({UB(0, 1, true, true, false),
                                UB(1, 2, false)}).ok());
}

TEST(MappingMake, GapAllowsEqualValues) {
  // [0,1) and (1,2]: not adjacent (instant 1 missing) → equal values fine.
  EXPECT_TRUE(MovingBool::Make({UB(0, 1, true, true, false),
                                UB(1, 2, true, false, true)}).ok());
}

TEST(MappingFindUnit, BinaryVsLinearAgree) {
  std::vector<UBool> units;
  for (int i = 0; i < 20; ++i) {
    units.push_back(UB(2 * i, 2 * i + 1, i % 2 == 0));
  }
  MovingBool m = *MovingBool::Make(units);
  for (double t = -1; t < 41; t += 0.25) {
    EXPECT_EQ(m.FindUnit(t), m.FindUnitLinear(t)) << t;
  }
}

TEST(MappingAtInstant, DefinedAndUndefined) {
  MovingBool m = *MovingBool::Make({UB(0, 1, true), UB(2, 3, false)});
  EXPECT_TRUE(m.AtInstant(0.5).defined);
  EXPECT_TRUE(m.AtInstant(0.5).val());
  EXPECT_FALSE(m.AtInstant(2.5).val());
  EXPECT_FALSE(m.AtInstant(1.5).defined);  // In the gap.
  EXPECT_FALSE(m.AtInstant(-1).defined);
}

TEST(MappingPresent, InstantAndPeriods) {
  MovingBool m = *MovingBool::Make({UB(0, 1, true), UB(2, 3, false)});
  EXPECT_TRUE(m.Present(0.5));
  EXPECT_FALSE(m.Present(1.5));
  EXPECT_TRUE(m.Present(Periods::FromIntervals({TI(1.2, 2.2)})));
  EXPECT_FALSE(m.Present(Periods::FromIntervals({TI(1.2, 1.8)})));
}

TEST(MappingDefTime, MergesAdjacentUnits) {
  MovingBool m = *MovingBool::Make(
      {UB(0, 1, true, true, false), UB(1, 2, false), UB(5, 6, true)});
  Periods dt = m.DefTime();
  ASSERT_EQ(dt.NumIntervals(), 2u);
  EXPECT_EQ(dt.interval(0), TI(0, 2));
  EXPECT_EQ(dt.interval(1), TI(5, 6));
}

TEST(MappingAtPeriods, SlicesUnits) {
  MovingBool m = *MovingBool::Make({UB(0, 10, true)});
  auto r = m.AtPeriods(Periods::FromIntervals({TI(2, 3), TI(5, 6)}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumUnits(), 2u);
  EXPECT_EQ(r->unit(0).interval(), TI(2, 3));
  EXPECT_EQ(r->unit(1).interval(), TI(5, 6));
  EXPECT_TRUE(r->AtInstant(2.5).val());
  EXPECT_FALSE(r->Present(4));
}

TEST(MappingAtPeriods, EmptyIntersection) {
  MovingBool m = *MovingBool::Make({UB(0, 1, true)});
  auto r = m.AtPeriods(Periods::FromIntervals({TI(5, 6)}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsEmpty());
}

TEST(MappingInitialFinal, FirstAndLastValues) {
  MovingReal m = *MovingReal::Make(
      {*UReal::Make(TI(0, 1), 0, 1, 0, false),      // t on [0,1].
       *UReal::Make(TI(2, 3), 0, 0, 42, false)});   // 42 on [2,3].
  Intime<double> init = m.Initial();
  EXPECT_TRUE(init.defined);
  EXPECT_DOUBLE_EQ(init.inst(), 0);
  EXPECT_DOUBLE_EQ(init.val(), 0);
  Intime<double> fin = m.Final();
  EXPECT_DOUBLE_EQ(fin.inst(), 3);
  EXPECT_DOUBLE_EQ(fin.val(), 42);
  EXPECT_FALSE(MovingReal().Initial().defined);
}

TEST(MappingBuilderTest, MergesEqualAdjacent) {
  MappingBuilder<UBool> b;
  ASSERT_TRUE(b.Append(UB(0, 1, true, true, false)).ok());
  ASSERT_TRUE(b.Append(UB(1, 2, true, true, false)).ok());
  ASSERT_TRUE(b.Append(UB(2, 3, false)).ok());
  auto m = b.Build();
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->NumUnits(), 2u);
  EXPECT_EQ(m->unit(0).interval(), TI(0, 2, true, false));
}

TEST(MappingBuilderTest, RejectsOutOfOrder) {
  MappingBuilder<UBool> b;
  ASSERT_TRUE(b.Append(UB(2, 3, true)).ok());
  EXPECT_FALSE(b.Append(UB(0, 1, false)).ok());
}

TEST(MappingBuilderTest, RejectsOverlap) {
  MappingBuilder<UBool> b;
  ASSERT_TRUE(b.Append(UB(0, 2, true)).ok());
  EXPECT_FALSE(b.Append(UB(1, 3, false)).ok());
}

// Table 3 oracle: the discrete mapping(upoint), evaluated densely, must
// coincide with the abstract moving(point) function it represents.
TEST(MappingOracle, SlicedRepresentationMatchesAbstractFunction) {
  // Abstract function: x(t) = t, y(t) piecewise linear through the
  // waypoints y_i = i² at slice boundaries t_i = 2i. Velocities differ
  // per slice, so the 5-unit representation is already minimal.
  auto wy = [](int i) { return double(i * i); };
  std::vector<UPoint> units;
  for (int i = 0; i < 5; ++i) {
    double t0 = 2.0 * i, t1 = 2.0 * (i + 1);
    units.push_back(*UPoint::FromEndpoints(TI(t0, t1, true, i == 4),
                                           Point(t0, wy(i)),
                                           Point(t1, wy(i + 1))));
  }
  MovingPoint m = *MovingPoint::Make(units);
  EXPECT_EQ(m.NumUnits(), 5u);
  for (double t = 0; t <= 10.0001; t += 0.1) {
    Intime<Point> v = m.AtInstant(std::min(t, 10.0));
    ASSERT_TRUE(v.defined) << t;
    int i = std::min(4, int(t / 2));
    double frac = (t - 2 * i) / 2;
    double expect_y = wy(i) + (wy(i + 1) - wy(i)) * frac;
    EXPECT_NEAR(v.val().x, std::min(t, 10.0), 1e-9);
    EXPECT_NEAR(v.val().y, std::min(expect_y, wy(5)), 1e-9);
  }
}

TEST(MappingTotalDuration, SumOfUnitDurations) {
  MovingBool m = *MovingBool::Make({UB(0, 1, true), UB(2, 4, false)});
  EXPECT_DOUBLE_EQ(m.TotalDuration(), 3);
}

// Property sweep: random mappings keep their invariants through
// AtPeriods.
class MappingRestriction : public ::testing::TestWithParam<int> {};

TEST_P(MappingRestriction, AtPeriodsPreservesValuesWhereDefined) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> gap(0.1, 1.0);
  std::uniform_real_distribution<double> dur(0.5, 2.0);
  std::bernoulli_distribution coin(0.5);
  MappingBuilder<UBool> b;
  double t = 0;
  bool last = coin(rng);
  for (int i = 0; i < 10; ++i) {
    t += gap(rng);
    double e = t + dur(rng);
    ASSERT_TRUE(b.Append(UB(t, e, last)).ok());
    last = !last;
    t = e + 0.01;
  }
  MovingBool m = *b.Build();
  Periods p = Periods::FromIntervals({TI(2, 7), TI(9, 12)});
  auto r = m.AtPeriods(p);
  ASSERT_TRUE(r.ok());
  for (double probe = 0; probe < 15; probe += 0.05) {
    bool should = m.Present(probe) && p.Contains(probe);
    EXPECT_EQ(r->Present(probe), should) << probe;
    if (should) {
      EXPECT_EQ(r->AtInstant(probe).val(), m.AtInstant(probe).val());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MappingRestriction, ::testing::Range(0, 30));

}  // namespace
}  // namespace modb
