#include "temporal/uregion.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

// A square ring translated by (dx, dy) and scaled around its center.
MCycle SquareCycle(double x0, double y0, double side, Instant t0, Instant t1,
                   double dx, double dy, double scale = 1.0) {
  std::vector<Point> r0 = {Point(x0, y0), Point(x0 + side, y0),
                           Point(x0 + side, y0 + side), Point(x0, y0 + side)};
  Point c(x0 + side / 2, y0 + side / 2);
  std::vector<Point> r1;
  for (const Point& p : r0) {
    r1.push_back(Point(c.x + dx + (p.x - c.x) * scale,
                       c.y + dy + (p.y - c.y) * scale));
  }
  MCycle cycle;
  for (int i = 0; i < 4; ++i) {
    auto s0 = *Seg::Make(r0[std::size_t(i)], r0[std::size_t((i + 1) % 4)]);
    auto s1 = *Seg::Make(r1[std::size_t(i)], r1[std::size_t((i + 1) % 4)]);
    cycle.push_back(*MSeg::FromEndSegments(t0, s0, t1, s1));
  }
  return cycle;
}

TEST(URegionMake, TranslatingSquareValid) {
  auto u = URegion::FromCycle(TI(0, 10),
                              SquareCycle(0, 0, 2, 0, 10, 5, 3));
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->NumFaces(), 1u);
  EXPECT_EQ(u->NumMSegs(), 4u);
}

TEST(URegionMake, RejectsEmptyAndSmallCycles) {
  EXPECT_FALSE(URegion::Make(TI(0, 1), {}).ok());
  MCycle tiny = SquareCycle(0, 0, 1, 0, 1, 0, 0);
  tiny.pop_back();
  tiny.pop_back();
  EXPECT_FALSE(URegion::FromCycle(TI(0, 1), tiny).ok());
}

TEST(URegionMake, MovingHoleValid) {
  MFace face{SquareCycle(0, 0, 10, 0, 10, 2, 0),
             {SquareCycle(4, 4, 2, 0, 10, 2, 0)}};
  auto u = URegion::Make(TI(0, 10), {face});
  ASSERT_TRUE(u.ok()) << u.status();
  Region r5 = u->ValueAt(5);
  EXPECT_EQ(r5.NumCycles(), 2u);
  EXPECT_NEAR(r5.Area(), 100 - 4, 1e-6);
}

TEST(URegionMake, RejectsHoleEscapingFace) {
  // The hole drifts right while the outer cycle stays: at some instant
  // inside the interval the hole crosses the outer boundary → invalid.
  MFace face{SquareCycle(0, 0, 4, 0, 10, 0, 0),
             {SquareCycle(1, 1, 2, 0, 10, 10, 0)}};
  EXPECT_FALSE(URegion::Make(TI(0, 10), {face}).ok());
}

TEST(URegionMake, RejectsFacesCollidingMidway) {
  // Two squares moving towards each other overlap in the middle of the
  // interval.
  MFace left{SquareCycle(0, 0, 2, 0, 10, 10, 0), {}};
  MFace right{SquareCycle(10, 0, 2, 0, 10, -10, 0), {}};
  EXPECT_FALSE(URegion::Make(TI(0, 10), {left, right}).ok());
}

TEST(URegionMake, DisjointCoMovingFacesValid) {
  MFace a{SquareCycle(0, 0, 2, 0, 10, 3, 3), {}};
  MFace b{SquareCycle(10, 10, 2, 0, 10, 3, 3), {}};
  auto u = URegion::Make(TI(0, 10), {a, b});
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->ValueAt(5).NumFaces(), 2u);
}

TEST(URegionValueAt, SnapshotMatchesPaperAlgorithm) {
  // Section 5.1: evaluating every moving segment at t yields the region.
  auto u = *URegion::FromCycle(TI(0, 10), SquareCycle(0, 0, 2, 0, 10, 10, 0));
  std::vector<Seg> snap = u.Snapshot(5);
  ASSERT_EQ(snap.size(), 4u);
  Region r = u.ValueAt(5);
  EXPECT_NEAR(r.Area(), 4, 1e-6);
  // The square has moved halfway: x ∈ [5, 7].
  EXPECT_TRUE(r.Contains(Point(6, 1)));
  EXPECT_FALSE(r.Contains(Point(1, 1)));
}

TEST(URegionValueAt, GrowingSquareArea) {
  // Scale 1 → 3 over [0, 10]: side 2 → 6, area 4 → 36.
  auto u = *URegion::FromCycle(TI(0, 10), SquareCycle(0, 0, 2, 0, 10, 0, 0, 3));
  EXPECT_NEAR(u.ValueAt(0).Area(), 4, 1e-6);
  EXPECT_NEAR(u.ValueAt(10).Area(), 36, 1e-6);
  // Halfway the side is 4.
  EXPECT_NEAR(u.ValueAt(5).Area(), 16, 1e-6);
}

// Figure 6: degeneracies at the endpoints of the unit interval.
TEST(URegionDegeneracy, CollapseToPointAtEnd) {
  // Square shrinking to its center at t=10 (scale → 0).
  MCycle collapse;
  std::vector<Point> r0 = {Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)};
  Point c(1, 1);
  for (int i = 0; i < 4; ++i) {
    const Point& a0 = r0[std::size_t(i)];
    const Point& b0 = r0[std::size_t((i + 1) % 4)];
    double dur = 10;
    auto motion = [&](const Point& p) {
      return LinearMotion{p.x, (c.x - p.x) / dur, p.y, (c.y - p.y) / dur};
    };
    collapse.push_back(*MSeg::Make(motion(a0), motion(b0)));
  }
  auto u = URegion::FromCycle(TI(0, 10), collapse);
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_NEAR(u->ValueAt(0).Area(), 4, 1e-6);
  EXPECT_NEAR(u->ValueAt(5).Area(), 1, 1e-6);
  // At the end everything degenerates; the cleanup yields the empty
  // region.
  EXPECT_TRUE(u->ValueAt(10).IsEmpty());
}

TEST(OddParity, NonOverlappingPassThrough) {
  std::vector<Seg> segs = {S(0, 0, 1, 0), S(0, 1, 1, 1)};
  EXPECT_EQ(OddParityFragments(segs).size(), 2u);
}

TEST(OddParity, DoubleCoverageCancels) {
  std::vector<Seg> in = {S(0, 0, 2, 0), S(0, 0, 2, 0)};
  // Exact duplicates: every fragment covered twice → cancelled.
  // (Note: duplicates only arise from evaluating degenerate instants.)
  std::vector<Seg> out = OddParityFragments(in);
  EXPECT_TRUE(out.empty());
}

TEST(OddParity, PartialOverlapKeepsOddParts) {
  // Paper example: (p,q) overlaps (r,s) with order p r q s → fragments
  // (p,r) cov 1, (r,q) cov 2, (q,s) cov 1.
  std::vector<Seg> in = {S(0, 0, 2, 0), S(1, 0, 3, 0)};
  std::vector<Seg> out = OddParityFragments(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], S(0, 0, 1, 0));
  EXPECT_EQ(out[1], S(2, 0, 3, 0));
}

TEST(OddParity, TripleCoverageKept) {
  std::vector<Seg> in = {S(0, 0, 2, 0), S(0, 0, 2, 0), S(0, 0, 2, 0)};
  std::vector<Seg> out = OddParityFragments(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], S(0, 0, 2, 0));
}

TEST(URegionStorage, AllMSegsFlattened) {
  MFace face{SquareCycle(0, 0, 10, 0, 10, 2, 0),
             {SquareCycle(4, 4, 2, 0, 10, 2, 0)}};
  URegion u = *URegion::Make(TI(0, 10), {face});
  EXPECT_EQ(u.AllMSegs().size(), 8u);
  EXPECT_EQ(u.NumMSegs(), 8u);
}

TEST(URegionBoundingCube, CoversMotion) {
  auto u = *URegion::FromCycle(TI(0, 10), SquareCycle(0, 0, 2, 0, 10, 10, 0));
  Cube c = u.BoundingCube();
  EXPECT_EQ(c.rect.min_x, 0);
  EXPECT_EQ(c.rect.max_x, 12);
  EXPECT_EQ(c.min_t, 0);
  EXPECT_EQ(c.max_t, 10);
}

TEST(URegionWithInterval, SubInterval) {
  auto u = *URegion::FromCycle(TI(0, 10), SquareCycle(0, 0, 2, 0, 10, 10, 0));
  auto sub = u.WithInterval(TI(2, 3));
  ASSERT_TRUE(sub.ok());
  EXPECT_NEAR(sub->ValueAt(2.5).Area(), 4, 1e-6);
}

}  // namespace
}  // namespace modb
