#include "temporal/batch_ops.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <type_traits>
#include <vector>

#include "core/simd.h"
#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

UBool UB(double s, double e, bool v, bool lc = true, bool rc = true) {
  return *UBool::Make(TI(s, e, lc, rc), v);
}

UInt UI(double s, double e, int64_t v, bool lc = true, bool rc = true) {
  return *UInt::Make(TI(s, e, lc, rc), v);
}

// ---------------------------------------------------------------------------
// Refinement edge cases (satellite: point intervals, adjacent open/closed
// boundaries, empty mappings, index width).
// ---------------------------------------------------------------------------

static_assert(std::is_same_v<decltype(RefinementEntry::unit_a), std::int32_t>,
              "refinement indices must be fixed-width (no silent narrowing)");
static_assert(std::is_same_v<decltype(RefinementEntry::unit_b), std::int32_t>,
              "refinement indices must be fixed-width (no silent narrowing)");

TEST(RefinementEdge, PointIntervalUnit) {
  // A mapping whose only unit is a single instant, inside b's span.
  MovingInt a = *MovingInt::Make({*UInt::Make(TimeInterval::At(5), 1)});
  MovingBool b = *MovingBool::Make({UB(0, 10, true)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 3u);
  EXPECT_EQ(rp[0].interval, TI(0, 5, true, false));
  EXPECT_FALSE(rp[0].HasBoth());
  EXPECT_TRUE(rp[1].interval.IsDegenerate());
  EXPECT_TRUE(rp[1].HasBoth());
  EXPECT_EQ(rp[1].unit_a, 0);
  EXPECT_EQ(rp[2].interval, TI(5, 10, false, true));
  EXPECT_FALSE(rp[2].HasBoth());
}

TEST(RefinementEdge, PointIntervalAgainstPointInterval) {
  MovingInt a = *MovingInt::Make({*UInt::Make(TimeInterval::At(3), 1)});
  MovingBool b = *MovingBool::Make({*UBool::Make(TimeInterval::At(3), true)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 1u);
  EXPECT_TRUE(rp[0].interval.IsDegenerate());
  EXPECT_TRUE(rp[0].HasBoth());

  // Disjoint point intervals interleave.
  MovingBool b2 = *MovingBool::Make({*UBool::Make(TimeInterval::At(4), true)});
  auto rp2 = RefinementPartition(a, b2);
  ASSERT_EQ(rp2.size(), 2u);
  EXPECT_EQ(rp2[0].unit_a, 0);
  EXPECT_EQ(rp2[0].unit_b, RefinementEntry::kNoUnit);
  EXPECT_EQ(rp2[1].unit_b, 0);
}

TEST(RefinementEdge, AdjacentOpenClosedBoundaries) {
  // a: [0,2] then (2,4] — adjacent at 2 with the instant owned by unit 0.
  MovingInt a = *MovingInt::Make({UI(0, 2, 1), UI(2, 4, 2, false, true)});
  MovingBool b = *MovingBool::Make({UB(1, 3, true)});
  auto rp = RefinementPartition(a, b);
  // Pointwise attribution across the partition.
  for (double t : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    int hits = 0;
    for (const RefinementEntry& e : rp) {
      if (!e.interval.Contains(t)) continue;
      ++hits;
      ASSERT_EQ(e.unit_a != RefinementEntry::kNoUnit, a.Present(t)) << t;
      ASSERT_EQ(e.unit_b != RefinementEntry::kNoUnit, b.Present(t)) << t;
      if (e.unit_a != RefinementEntry::kNoUnit) {
        EXPECT_TRUE(
            a.unit(std::size_t(e.unit_a)).interval().Contains(t)) << t;
      }
    }
    EXPECT_EQ(hits, 1) << t;
  }
  // The boundary instant 2 must map to unit 0 of a (closed there), not
  // unit 1 (open there).
  for (const RefinementEntry& e : rp) {
    if (e.interval.Contains(2.0)) {
      EXPECT_EQ(e.unit_a, 0);
    }
  }
}

TEST(RefinementEdge, OneEmptyMapping) {
  MovingInt a = *MovingInt::Make({UI(0, 1, 1), UI(2, 3, 2)});
  MovingBool empty;
  auto rp = RefinementPartition(a, empty);
  ASSERT_EQ(rp.size(), 2u);
  for (const RefinementEntry& e : rp) {
    EXPECT_NE(e.unit_a, RefinementEntry::kNoUnit);
    EXPECT_EQ(e.unit_b, RefinementEntry::kNoUnit);
  }
  auto rp2 = RefinementPartition(empty, a);
  ASSERT_EQ(rp2.size(), 2u);
  for (const RefinementEntry& e : rp2) {
    EXPECT_EQ(e.unit_a, RefinementEntry::kNoUnit);
  }
  EXPECT_TRUE(RefinementPartition(empty, MovingInt()).empty());
}

TEST(RefinementEdge, ScratchDriverMatchesAllocatingPartition) {
  MovingInt a = *MovingInt::Make({UI(0, 2, 1), UI(3, 5, 2, false, true)});
  MovingBool b = *MovingBool::Make({UB(1, 4, true)});
  RefinementScratch scratch;
  std::vector<RefinementEntry> seen;
  Status s = ForEachRefinementPair(
      a, b, &scratch, [&seen](const RefinementEntry& e) {
        seen.push_back(e);
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  std::vector<RefinementEntry> expected;
  for (const RefinementEntry& e : RefinementPartition(a, b)) {
    if (e.HasBoth()) expected.push_back(e);
  }
  ASSERT_EQ(seen.size(), expected.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].interval, expected[i].interval);
    EXPECT_EQ(seen[i].unit_a, expected[i].unit_a);
    EXPECT_EQ(seen[i].unit_b, expected[i].unit_b);
  }
  // The scratch keeps its storage for the next pair (no reallocation).
  const RefinementEntry* data = scratch.data();
  const std::size_t cap = scratch.capacity();
  ASSERT_TRUE(ForEachRefinementPair(a, b, &scratch, [](const RefinementEntry&) {
                return Status::OK();
              }).ok());
  EXPECT_EQ(scratch.data(), data);
  EXPECT_EQ(scratch.capacity(), cap);
}

// ---------------------------------------------------------------------------
// Batch sweep kernels.
// ---------------------------------------------------------------------------

UReal UR(double s, double e, double c, bool lc = true, bool rc = true) {
  return *UReal::Make(TI(s, e, lc, rc), 0, 0.5, c, false);
}

TEST(AtInstantBatch, MatchesAtInstantOnBoundaries) {
  MovingReal m = *MovingReal::Make(
      {UR(0, 2, 1, true, false), UR(2, 4, 2, true, true),
       UR(5, 6, 3, false, false),
       *UReal::Make(TimeInterval::At(8), 0, 0, 9, false)});
  std::vector<Instant> instants = {-1, 0, 1, 2, 2, 3.5, 4, 4.5,
                                   5,  5.5, 6, 7, 8, 8, 9};
  auto batch = AtInstantBatch(m, instants);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), instants.size());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    Intime<double> one = m.AtInstant(instants[i]);
    EXPECT_EQ((*batch)[i].defined, one.defined) << instants[i];
    if (one.defined) {
      EXPECT_EQ((*batch)[i].value, one.value) << instants[i];
      EXPECT_EQ((*batch)[i].instant, instants[i]);
    }
  }
  // Same through the SoA index.
  m.BuildSearchIndex();
  ASSERT_TRUE(m.HasSearchIndex());
  auto batch2 = AtInstantBatch(m, instants);
  ASSERT_TRUE(batch2.ok());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    EXPECT_EQ((*batch2)[i].defined, (*batch)[i].defined);
    if ((*batch)[i].defined) {
      EXPECT_EQ((*batch2)[i].value, (*batch)[i].value);
    }
  }
  // The Into variant reuses the buffer's capacity and agrees with the
  // allocating wrapper.
  std::vector<Intime<double>> buf;
  BatchScratch scratch;
  ASSERT_TRUE(AtInstantBatchInto(m, instants, &buf, &scratch).ok());
  const Intime<double>* data = buf.data();
  ASSERT_TRUE(AtInstantBatchInto(m, instants, &buf, &scratch).ok());
  EXPECT_EQ(buf.data(), data);
  ASSERT_EQ(buf.size(), batch2->size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i].defined, (*batch2)[i].defined);
    if (buf[i].defined) {
      EXPECT_EQ(buf[i].value, (*batch2)[i].value);
    }
  }
  std::vector<std::uint8_t> pbuf;
  ASSERT_TRUE(PresentBatchInto(m, instants, &pbuf).ok());
  auto pres = PresentBatch(m, instants);
  ASSERT_TRUE(pres.ok());
  EXPECT_EQ(pbuf, *pres);
}

TEST(AtInstantBatch, RejectsUnsortedInstants) {
  MovingReal m = *MovingReal::Make({UR(0, 2, 1)});
  auto r = AtInstantBatch(m, {2.0, 1.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto p = PresentBatch(m, {2.0, 1.0});
  EXPECT_FALSE(p.ok());
}

TEST(AtInstantBatch, EmptyMappingAndEmptyBatch) {
  MovingReal empty;
  auto r = AtInstantBatch(empty, {1.0, 2.0});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_FALSE((*r)[0].defined);
  EXPECT_FALSE((*r)[1].defined);
  MovingReal m = *MovingReal::Make({UR(0, 2, 1)});
  auto r2 = AtInstantBatch(m, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

// Fuzzed mapping generator: random unit count, random gaps (including
// zero-width gaps with complementary open/closed flags — adjacent
// units), occasional degenerate point units, distinct unit functions.
MovingReal FuzzMapping(std::mt19937& rng, int max_units) {
  std::uniform_int_distribution<int> nd(0, max_units);
  std::uniform_real_distribution<double> gap(0.0, 1.0);
  std::uniform_real_distribution<double> dur(0.0, 2.0);
  std::bernoulli_distribution coin(0.5);
  int n = nd(rng);
  std::vector<UReal> units;
  double t = gap(rng);
  // Whether the instant `t` (the previous unit's end) belongs to it.
  bool prev_owns_end = false;
  for (int i = 0; i < n; ++i) {
    double d = coin(rng) ? 0.0 : dur(rng) + 1e-3;
    double s;
    bool lc, rc;
    if (d == 0) {
      // Degenerate units must be closed on both sides; they may start at
      // t only if the previous unit's end is open there.
      lc = rc = true;
      s = (i > 0 && !prev_owns_end && coin(rng)) ? t : t + gap(rng) + 1e-3;
    } else {
      rc = coin(rng);
      if (i > 0 && coin(rng)) {
        // Adjacent: shared boundary owned by at most one side.
        s = t;
        lc = prev_owns_end ? false : coin(rng);
      } else {
        s = t + gap(rng) + 1e-3;
        lc = coin(rng);
      }
    }
    double e = s + d;
    units.push_back(*UReal::Make(*TimeInterval::Make(s, e, lc, rc),
                                 0, 0.25, double(i), false));
    t = e;
    prev_owns_end = rc;
  }
  auto m = MovingReal::Make(std::move(units));
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? *m : MovingReal();
}

// Satellite: randomized differential test, AtInstantBatch ≡ per-instant
// AtInstant on 1000 fuzzed mappings (and PresentBatch ≡ Present,
// FindUnit with ≡ without the SoA index).
TEST(AtInstantBatch, DifferentialFuzz1000) {
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> pick(-1.0, 1.0);
  for (int iter = 0; iter < 1000; ++iter) {
    MovingReal m = FuzzMapping(rng, 12);
    MovingReal indexed = m;
    indexed.BuildSearchIndex();

    // Query instants: uniform samples plus exact unit endpoints.
    std::vector<Instant> instants;
    double hi = m.IsEmpty() ? 5.0 : m.units().back().interval().end() + 1.0;
    std::uniform_real_distribution<double> td(-0.5, hi);
    for (int k = 0; k < 24; ++k) instants.push_back(td(rng));
    for (const UReal& u : m.units()) {
      instants.push_back(u.interval().start());
      instants.push_back(u.interval().end());
    }
    std::sort(instants.begin(), instants.end());

    auto batch = AtInstantBatch(m, instants);
    auto batch_ix = AtInstantBatch(indexed, instants);
    auto present = PresentBatch(m, instants);
    auto present_ix = PresentBatch(indexed, instants);
    ASSERT_TRUE(batch.ok() && batch_ix.ok() && present.ok() &&
                present_ix.ok());
    for (std::size_t i = 0; i < instants.size(); ++i) {
      Instant t = instants[i];
      Intime<double> one = m.AtInstant(t);
      ASSERT_EQ((*batch)[i].defined, one.defined)
          << "iter " << iter << " t=" << t;
      if (one.defined) {
        ASSERT_EQ((*batch)[i].value, one.value)
            << "iter " << iter << " t=" << t;
      }
      ASSERT_EQ((*batch_ix)[i].defined, one.defined)
          << "iter " << iter << " t=" << t;
      ASSERT_EQ((*present)[i] != 0, m.Present(t))
          << "iter " << iter << " t=" << t;
      ASSERT_EQ((*present_ix)[i] != 0, m.Present(t))
          << "iter " << iter << " t=" << t;
      ASSERT_EQ(indexed.FindUnit(t), m.FindUnit(t))
          << "iter " << iter << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Split motion kernels: SIMD vs. scalar differential checks (satellite:
// every fast path byte-identical to the scalar reference).
// ---------------------------------------------------------------------------

bool BitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

// A upoint track with gaps, adjacent open/closed boundaries, and varied
// velocities — enough structure to hit defined and undefined lanes in
// every 4-wide SIMD block.
MovingPoint GappyTrack(std::mt19937* rng, int units) {
  std::uniform_real_distribution<double> gap(0.0, 0.8);
  std::uniform_real_distribution<double> vel(-2.0, 2.0);
  std::bernoulli_distribution coin(0.5);
  MappingBuilder<UPoint> builder;
  double t = 0;
  for (int i = 0; i < units; ++i) {
    double s = t + (coin(*rng) ? 0.0 : gap(*rng) + 1e-3);
    double e = s + gap(*rng) + 0.2;
    bool lc = s == t ? false : true;
    auto iv = *TimeInterval::Make(s, e, lc, true);
    (void)builder.Append(*UPoint::Make(
        iv, LinearMotion{vel(*rng), vel(*rng), vel(*rng), vel(*rng)}));
    t = e;
  }
  auto m = builder.Build();
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? *m : MovingPoint();
}

std::vector<Instant> SortedProbe(std::mt19937* rng, double lo, double hi,
                                 int k) {
  std::uniform_real_distribution<double> d(lo, hi);
  std::vector<Instant> out(static_cast<std::size_t>(k));
  for (Instant& t : out) t = d(*rng);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BatchSimd, UPointAtInstantScalarAvx2ByteIdentical) {
  std::mt19937 rng(42);
  for (int iter = 0; iter < 25; ++iter) {
    MovingPoint mp = GappyTrack(&rng, 3 + iter * 7);
    mp.BuildSearchIndex();
    ASSERT_TRUE(mp.search_index()->has_motion());
    double hi = mp.units().back().interval().end();
    // Probe beyond both deftime ends so the prefilter lanes are mixed
    // into the SIMD blocks; k spans dense and sparse resolve regimes.
    std::vector<Instant> instants =
        SortedProbe(&rng, -1.0, hi + 1.0, 17 + iter * 13);
    std::vector<Intime<Point>> scalar, vec;
    BatchScratch scratch;
    simd::SetSimdMode(simd::Mode::kScalar);
    ASSERT_TRUE(AtInstantBatchInto(mp, instants, &scalar, &scratch).ok());
    simd::SetSimdMode(simd::Mode::kAvx2);
    ASSERT_TRUE(AtInstantBatchInto(mp, instants, &vec, &scratch).ok());
    simd::SetSimdMode(simd::Mode::kAuto);
    ASSERT_EQ(scalar.size(), instants.size());
    ASSERT_EQ(vec.size(), instants.size());
    for (std::size_t i = 0; i < instants.size(); ++i) {
      // Bitwise equality, not approximate: the AVX2 kernel must use the
      // same multiply-then-add rounding as the scalar core.
      ASSERT_EQ(scalar[i].defined, vec[i].defined) << "iter " << iter;
      ASSERT_TRUE(BitEq(scalar[i].instant, vec[i].instant)) << "iter " << iter;
      ASSERT_TRUE(BitEq(scalar[i].value.x, vec[i].value.x)) << "iter " << iter;
      ASSERT_TRUE(BitEq(scalar[i].value.y, vec[i].value.y)) << "iter " << iter;
      // And both agree with the per-instant reference.
      Intime<Point> one = mp.AtInstant(instants[i]);
      ASSERT_EQ(scalar[i].defined, one.defined) << "iter " << iter;
      if (one.defined) {
        ASSERT_TRUE(BitEq(scalar[i].value.x, one.value.x)) << "iter " << iter;
        ASSERT_TRUE(BitEq(scalar[i].value.y, one.value.y)) << "iter " << iter;
      }
    }
  }
}

TEST(BatchSimd, UPointXYKernelScalarAvx2ByteIdentical) {
  std::mt19937 rng(1234);
  for (int iter = 0; iter < 25; ++iter) {
    MovingPoint mp = GappyTrack(&rng, 5 + iter * 5);
    mp.BuildSearchIndex();
    double hi = mp.units().back().interval().end();
    std::vector<Instant> instants =
        SortedProbe(&rng, -0.5, hi + 0.5, 11 + iter * 9);
    BatchXYOutput xy_s, xy_v;
    BatchScratch scratch;
    simd::SetSimdMode(simd::Mode::kScalar);
    ASSERT_TRUE(AtInstantBatchXYInto(mp, instants, &xy_s, &scratch).ok());
    simd::SetSimdMode(simd::Mode::kAvx2);
    ASSERT_TRUE(AtInstantBatchXYInto(mp, instants, &xy_v, &scratch).ok());
    simd::SetSimdMode(simd::Mode::kAuto);
    const std::vector<double>&xs_s = xy_s.xs, &ys_s = xy_s.ys, &xs_v = xy_v.xs,
                             &ys_v = xy_v.ys;
    const std::vector<std::uint8_t>&def_s = xy_s.defined,
                                   &def_v = xy_v.defined;
    ASSERT_EQ(def_s, def_v) << "iter " << iter;
    for (std::size_t i = 0; i < instants.size(); ++i) {
      ASSERT_TRUE(BitEq(xs_s[i], xs_v[i])) << "iter " << iter << " i=" << i;
      ASSERT_TRUE(BitEq(ys_s[i], ys_v[i])) << "iter " << iter << " i=" << i;
      Intime<Point> one = mp.AtInstant(instants[i]);
      ASSERT_EQ(def_s[i] != 0, one.defined) << "iter " << iter;
      if (one.defined) {
        ASSERT_TRUE(BitEq(xs_s[i], one.value.x)) << "iter " << iter;
        ASSERT_TRUE(BitEq(ys_s[i], one.value.y)) << "iter " << iter;
      } else {
        ASSERT_EQ(xs_s[i], 0.0) << "iter " << iter;
        ASSERT_EQ(ys_s[i], 0.0) << "iter " << iter;
      }
    }
  }
}

TEST(BatchSimd, UPointXYKernelWithoutIndexMatchesIndexed) {
  std::mt19937 rng(77);
  MovingPoint mp = GappyTrack(&rng, 40);
  MovingPoint indexed = mp;
  indexed.BuildSearchIndex();
  double hi = mp.units().back().interval().end();
  std::vector<Instant> instants = SortedProbe(&rng, -0.5, hi + 0.5, 200);
  BatchXYOutput xy_a, xy_b;
  BatchScratch scratch;
  ASSERT_TRUE(AtInstantBatchXYInto(mp, instants, &xy_a, &scratch).ok());
  ASSERT_TRUE(AtInstantBatchXYInto(indexed, instants, &xy_b, &scratch).ok());
  const std::vector<double>&xs_a = xy_a.xs, &ys_a = xy_a.ys, &xs_b = xy_b.xs,
                           &ys_b = xy_b.ys;
  EXPECT_EQ(xy_a.defined, xy_b.defined);
  for (std::size_t i = 0; i < instants.size(); ++i) {
    EXPECT_TRUE(BitEq(xs_a[i], xs_b[i])) << i;
    EXPECT_TRUE(BitEq(ys_a[i], ys_b[i])) << i;
  }
}

TEST(BatchSimd, RejectsUnsortedOnFastPath) {
  std::mt19937 rng(5);
  MovingPoint mp = GappyTrack(&rng, 8);
  mp.BuildSearchIndex();
  std::vector<Intime<Point>> out;
  BatchXYOutput xy;
  BatchScratch scratch;
  EXPECT_FALSE(AtInstantBatchInto(mp, {2.0, 1.0}, &out, &scratch).ok());
  EXPECT_FALSE(AtInstantBatchXYInto(mp, {2.0, 1.0}, &xy, &scratch).ok());
}

// uregion workload: the sweep kernels run over the generic unit-record
// and SoA views (no motion fast path) — batch results must match the
// per-instant operations, including through the deftime-bounds
// prefilter for instants far outside the definition time.
MovingRegion TranslatingSquares(int units) {
  std::vector<URegion> out;
  for (int i = 0; i < units; ++i) {
    double t0 = i * 3.0, t1 = i * 3.0 + 2.0;
    MCycle cycle;
    std::vector<Point> r0 = {Point(0, 0), Point(2, 0), Point(2, 2),
                             Point(0, 2)};
    for (int k = 0; k < 4; ++k) {
      auto s0 = *Seg::Make(r0[std::size_t(k)], r0[std::size_t((k + 1) % 4)]);
      Point a1(r0[std::size_t(k)].x + 1, r0[std::size_t(k)].y + 1);
      Point b1(r0[std::size_t((k + 1) % 4)].x + 1,
               r0[std::size_t((k + 1) % 4)].y + 1);
      auto s1 = *Seg::Make(a1, b1);
      cycle.push_back(*MSeg::FromEndSegments(t0, s0, t1, s1));
    }
    auto u = URegion::FromCycle(*TimeInterval::Make(t0, t1, true, true),
                                std::move(cycle));
    EXPECT_TRUE(u.ok()) << u.status();
    out.push_back(*u);
  }
  auto m = MovingRegion::Make(std::move(out));
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? *m : MovingRegion();
}

TEST(BatchSimd, URegionPresentAndAtInstantBatchMatchPerInstant) {
  MovingRegion mr = TranslatingSquares(6);
  MovingRegion indexed = mr;
  indexed.BuildSearchIndex();
  std::vector<Instant> instants;
  for (double t = -5.0; t <= 25.0; t += 0.5) instants.push_back(t);
  auto present = PresentBatch(mr, instants);
  auto present_ix = PresentBatch(indexed, instants);
  auto batch = AtInstantBatch(indexed, instants);
  ASSERT_TRUE(present.ok() && present_ix.ok() && batch.ok());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    const Instant t = instants[i];
    ASSERT_EQ((*present)[i] != 0, mr.Present(t)) << t;
    ASSERT_EQ((*present_ix)[i] != 0, mr.Present(t)) << t;
    Intime<Region> one = mr.AtInstant(t);
    ASSERT_EQ((*batch)[i].defined, one.defined) << t;
    if (one.defined) {
      ASSERT_EQ((*batch)[i].value.Area(), one.value.Area()) << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Two-pointer Present(Periods) / AtPeriods vs. the quadratic reference.
// ---------------------------------------------------------------------------

bool PresentReference(const MovingReal& m, const Periods& periods) {
  for (const UReal& u : m.units()) {
    for (const TimeInterval& iv : periods.intervals()) {
      if (!TimeInterval::Disjoint(u.interval(), iv)) return true;
    }
  }
  return false;
}

Result<MovingReal> AtPeriodsReference(const MovingReal& m,
                                      const Periods& periods) {
  std::vector<UReal> out;
  for (const UReal& u : m.units()) {
    for (const TimeInterval& iv : periods.intervals()) {
      auto inter = TimeInterval::Intersect(u.interval(), iv);
      if (!inter) continue;
      Result<UReal> piece = u.WithInterval(*inter);
      if (!piece.ok()) return piece.status();
      out.push_back(std::move(*piece));
    }
  }
  return MovingReal::Make(std::move(out));
}

TEST(MappingPeriods, TwoPointerMatchesReferenceFuzz) {
  std::mt19937 rng(7771);
  std::uniform_real_distribution<double> gap(0.0, 1.5);
  std::uniform_real_distribution<double> dur(0.0, 2.0);
  std::bernoulli_distribution coin(0.5);
  for (int iter = 0; iter < 300; ++iter) {
    MovingReal m = FuzzMapping(rng, 10);
    // Random periods (canonicalized by FromIntervals).
    std::vector<TimeInterval> ivs;
    double t = gap(rng) - 0.5;
    int k = std::uniform_int_distribution<int>(0, 6)(rng);
    for (int i = 0; i < k; ++i) {
      double s = t + gap(rng);
      double d = coin(rng) ? 0.0 : dur(rng);
      bool lc = d == 0 ? true : coin(rng);
      bool rc = d == 0 ? true : coin(rng);
      ivs.push_back(*TimeInterval::Make(s, s + d, lc, rc));
      t = s + d + 1e-3;
    }
    Periods periods = Periods::FromIntervals(std::move(ivs));

    EXPECT_EQ(m.Present(periods), PresentReference(m, periods))
        << "iter " << iter;

    auto fast = m.AtPeriods(periods);
    auto ref = AtPeriodsReference(m, periods);
    ASSERT_EQ(fast.ok(), ref.ok()) << "iter " << iter;
    if (!fast.ok()) continue;
    ASSERT_EQ(fast->NumUnits(), ref->NumUnits()) << "iter " << iter;
    for (std::size_t i = 0; i < fast->NumUnits(); ++i) {
      EXPECT_EQ(fast->unit(i).interval(), ref->unit(i).interval())
          << "iter " << iter;
      Instant mid = (fast->unit(i).interval().start() +
                     fast->unit(i).interval().end()) /
                    2;
      EXPECT_EQ(fast->unit(i).ValueAt(mid), ref->unit(i).ValueAt(mid))
          << "iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// SoA search index details.
// ---------------------------------------------------------------------------

TEST(SearchIndex, CachesDeftimeBoundAndSharesAcrossCopies) {
  MovingReal m = *MovingReal::Make({UR(1, 2, 1), UR(4, 6, 2)});
  EXPECT_FALSE(m.HasSearchIndex());
  m.BuildSearchIndex();
  ASSERT_TRUE(m.HasSearchIndex());
  const MappingSearchIndex* ix = m.search_index();
  EXPECT_EQ(ix->min_start, 1.0);
  EXPECT_EQ(ix->max_end, 6.0);
  ASSERT_EQ(ix->start.size(), 2u);
  EXPECT_TRUE(ix->left_closed(0));
  // Copies share the index.
  MovingReal copy = m;
  EXPECT_EQ(copy.search_index(), ix);
  // Idempotent.
  m.BuildSearchIndex();
  EXPECT_EQ(m.search_index(), ix);
}

TEST(SearchIndex, SpatialBBoxForMovingPoint) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1, true, false), Point(0, 0),
                              Point(10, 5)),
       *UPoint::FromEndpoints(TI(1, 2), Point(10, 5), Point(-3, 7))});
  mp.BuildSearchIndex();
  const Cube& bbox = mp.search_index()->bbox;
  ASSERT_FALSE(bbox.IsEmpty());
  EXPECT_EQ(bbox.rect.min_x, -3.0);
  EXPECT_EQ(bbox.rect.max_x, 10.0);
  EXPECT_EQ(bbox.rect.min_y, 0.0);
  EXPECT_EQ(bbox.rect.max_y, 7.0);
  EXPECT_EQ(bbox.min_t, 0.0);
  EXPECT_EQ(bbox.max_t, 2.0);

  // Non-spatial unit types leave the bbox empty.
  MovingReal mr = *MovingReal::Make({UR(0, 1, 1)});
  mr.BuildSearchIndex();
  EXPECT_TRUE(mr.search_index()->bbox.IsEmpty());
}

}  // namespace
}  // namespace modb
