#include "temporal/batch_ops.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <type_traits>
#include <vector>

#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

UBool UB(double s, double e, bool v, bool lc = true, bool rc = true) {
  return *UBool::Make(TI(s, e, lc, rc), v);
}

UInt UI(double s, double e, int64_t v, bool lc = true, bool rc = true) {
  return *UInt::Make(TI(s, e, lc, rc), v);
}

// ---------------------------------------------------------------------------
// Refinement edge cases (satellite: point intervals, adjacent open/closed
// boundaries, empty mappings, index width).
// ---------------------------------------------------------------------------

static_assert(std::is_same_v<decltype(RefinementEntry::unit_a), std::int32_t>,
              "refinement indices must be fixed-width (no silent narrowing)");
static_assert(std::is_same_v<decltype(RefinementEntry::unit_b), std::int32_t>,
              "refinement indices must be fixed-width (no silent narrowing)");

TEST(RefinementEdge, PointIntervalUnit) {
  // A mapping whose only unit is a single instant, inside b's span.
  MovingInt a = *MovingInt::Make({*UInt::Make(TimeInterval::At(5), 1)});
  MovingBool b = *MovingBool::Make({UB(0, 10, true)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 3u);
  EXPECT_EQ(rp[0].interval, TI(0, 5, true, false));
  EXPECT_FALSE(rp[0].HasBoth());
  EXPECT_TRUE(rp[1].interval.IsDegenerate());
  EXPECT_TRUE(rp[1].HasBoth());
  EXPECT_EQ(rp[1].unit_a, 0);
  EXPECT_EQ(rp[2].interval, TI(5, 10, false, true));
  EXPECT_FALSE(rp[2].HasBoth());
}

TEST(RefinementEdge, PointIntervalAgainstPointInterval) {
  MovingInt a = *MovingInt::Make({*UInt::Make(TimeInterval::At(3), 1)});
  MovingBool b = *MovingBool::Make({*UBool::Make(TimeInterval::At(3), true)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 1u);
  EXPECT_TRUE(rp[0].interval.IsDegenerate());
  EXPECT_TRUE(rp[0].HasBoth());

  // Disjoint point intervals interleave.
  MovingBool b2 = *MovingBool::Make({*UBool::Make(TimeInterval::At(4), true)});
  auto rp2 = RefinementPartition(a, b2);
  ASSERT_EQ(rp2.size(), 2u);
  EXPECT_EQ(rp2[0].unit_a, 0);
  EXPECT_EQ(rp2[0].unit_b, RefinementEntry::kNoUnit);
  EXPECT_EQ(rp2[1].unit_b, 0);
}

TEST(RefinementEdge, AdjacentOpenClosedBoundaries) {
  // a: [0,2] then (2,4] — adjacent at 2 with the instant owned by unit 0.
  MovingInt a = *MovingInt::Make({UI(0, 2, 1), UI(2, 4, 2, false, true)});
  MovingBool b = *MovingBool::Make({UB(1, 3, true)});
  auto rp = RefinementPartition(a, b);
  // Pointwise attribution across the partition.
  for (double t : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    int hits = 0;
    for (const RefinementEntry& e : rp) {
      if (!e.interval.Contains(t)) continue;
      ++hits;
      ASSERT_EQ(e.unit_a != RefinementEntry::kNoUnit, a.Present(t)) << t;
      ASSERT_EQ(e.unit_b != RefinementEntry::kNoUnit, b.Present(t)) << t;
      if (e.unit_a != RefinementEntry::kNoUnit) {
        EXPECT_TRUE(
            a.unit(std::size_t(e.unit_a)).interval().Contains(t)) << t;
      }
    }
    EXPECT_EQ(hits, 1) << t;
  }
  // The boundary instant 2 must map to unit 0 of a (closed there), not
  // unit 1 (open there).
  for (const RefinementEntry& e : rp) {
    if (e.interval.Contains(2.0)) {
      EXPECT_EQ(e.unit_a, 0);
    }
  }
}

TEST(RefinementEdge, OneEmptyMapping) {
  MovingInt a = *MovingInt::Make({UI(0, 1, 1), UI(2, 3, 2)});
  MovingBool empty;
  auto rp = RefinementPartition(a, empty);
  ASSERT_EQ(rp.size(), 2u);
  for (const RefinementEntry& e : rp) {
    EXPECT_NE(e.unit_a, RefinementEntry::kNoUnit);
    EXPECT_EQ(e.unit_b, RefinementEntry::kNoUnit);
  }
  auto rp2 = RefinementPartition(empty, a);
  ASSERT_EQ(rp2.size(), 2u);
  for (const RefinementEntry& e : rp2) {
    EXPECT_EQ(e.unit_a, RefinementEntry::kNoUnit);
  }
  EXPECT_TRUE(RefinementPartition(empty, MovingInt()).empty());
}

TEST(RefinementEdge, ScratchDriverMatchesAllocatingPartition) {
  MovingInt a = *MovingInt::Make({UI(0, 2, 1), UI(3, 5, 2, false, true)});
  MovingBool b = *MovingBool::Make({UB(1, 4, true)});
  RefinementScratch scratch;
  std::vector<RefinementEntry> seen;
  Status s = ForEachRefinementPair(
      a, b, &scratch, [&seen](const RefinementEntry& e) {
        seen.push_back(e);
        return Status::OK();
      });
  ASSERT_TRUE(s.ok());
  std::vector<RefinementEntry> expected;
  for (const RefinementEntry& e : RefinementPartition(a, b)) {
    if (e.HasBoth()) expected.push_back(e);
  }
  ASSERT_EQ(seen.size(), expected.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].interval, expected[i].interval);
    EXPECT_EQ(seen[i].unit_a, expected[i].unit_a);
    EXPECT_EQ(seen[i].unit_b, expected[i].unit_b);
  }
  // The scratch keeps its storage for the next pair (no reallocation).
  const RefinementEntry* data = scratch.data();
  const std::size_t cap = scratch.capacity();
  ASSERT_TRUE(ForEachRefinementPair(a, b, &scratch, [](const RefinementEntry&) {
                return Status::OK();
              }).ok());
  EXPECT_EQ(scratch.data(), data);
  EXPECT_EQ(scratch.capacity(), cap);
}

// ---------------------------------------------------------------------------
// Batch sweep kernels.
// ---------------------------------------------------------------------------

UReal UR(double s, double e, double c, bool lc = true, bool rc = true) {
  return *UReal::Make(TI(s, e, lc, rc), 0, 0.5, c, false);
}

TEST(AtInstantBatch, MatchesAtInstantOnBoundaries) {
  MovingReal m = *MovingReal::Make(
      {UR(0, 2, 1, true, false), UR(2, 4, 2, true, true),
       UR(5, 6, 3, false, false),
       *UReal::Make(TimeInterval::At(8), 0, 0, 9, false)});
  std::vector<Instant> instants = {-1, 0, 1, 2, 2, 3.5, 4, 4.5,
                                   5,  5.5, 6, 7, 8, 8, 9};
  auto batch = AtInstantBatch(m, instants);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), instants.size());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    Intime<double> one = m.AtInstant(instants[i]);
    EXPECT_EQ((*batch)[i].defined, one.defined) << instants[i];
    if (one.defined) {
      EXPECT_EQ((*batch)[i].value, one.value) << instants[i];
      EXPECT_EQ((*batch)[i].instant, instants[i]);
    }
  }
  // Same through the SoA index.
  m.BuildSearchIndex();
  ASSERT_TRUE(m.HasSearchIndex());
  auto batch2 = AtInstantBatch(m, instants);
  ASSERT_TRUE(batch2.ok());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    EXPECT_EQ((*batch2)[i].defined, (*batch)[i].defined);
    if ((*batch)[i].defined) {
      EXPECT_EQ((*batch2)[i].value, (*batch)[i].value);
    }
  }
  // The Into variant reuses the buffer's capacity and agrees with the
  // allocating wrapper.
  std::vector<Intime<double>> buf;
  ASSERT_TRUE(AtInstantBatchInto(m, instants, &buf).ok());
  const Intime<double>* data = buf.data();
  ASSERT_TRUE(AtInstantBatchInto(m, instants, &buf).ok());
  EXPECT_EQ(buf.data(), data);
  ASSERT_EQ(buf.size(), batch2->size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i].defined, (*batch2)[i].defined);
    if (buf[i].defined) EXPECT_EQ(buf[i].value, (*batch2)[i].value);
  }
  std::vector<std::uint8_t> pbuf;
  ASSERT_TRUE(PresentBatchInto(m, instants, &pbuf).ok());
  auto pres = PresentBatch(m, instants);
  ASSERT_TRUE(pres.ok());
  EXPECT_EQ(pbuf, *pres);
}

TEST(AtInstantBatch, RejectsUnsortedInstants) {
  MovingReal m = *MovingReal::Make({UR(0, 2, 1)});
  auto r = AtInstantBatch(m, {2.0, 1.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto p = PresentBatch(m, {2.0, 1.0});
  EXPECT_FALSE(p.ok());
}

TEST(AtInstantBatch, EmptyMappingAndEmptyBatch) {
  MovingReal empty;
  auto r = AtInstantBatch(empty, {1.0, 2.0});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_FALSE((*r)[0].defined);
  EXPECT_FALSE((*r)[1].defined);
  MovingReal m = *MovingReal::Make({UR(0, 2, 1)});
  auto r2 = AtInstantBatch(m, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

// Fuzzed mapping generator: random unit count, random gaps (including
// zero-width gaps with complementary open/closed flags — adjacent
// units), occasional degenerate point units, distinct unit functions.
MovingReal FuzzMapping(std::mt19937& rng, int max_units) {
  std::uniform_int_distribution<int> nd(0, max_units);
  std::uniform_real_distribution<double> gap(0.0, 1.0);
  std::uniform_real_distribution<double> dur(0.0, 2.0);
  std::bernoulli_distribution coin(0.5);
  int n = nd(rng);
  std::vector<UReal> units;
  double t = gap(rng);
  // Whether the instant `t` (the previous unit's end) belongs to it.
  bool prev_owns_end = false;
  for (int i = 0; i < n; ++i) {
    double d = coin(rng) ? 0.0 : dur(rng) + 1e-3;
    double s;
    bool lc, rc;
    if (d == 0) {
      // Degenerate units must be closed on both sides; they may start at
      // t only if the previous unit's end is open there.
      lc = rc = true;
      s = (i > 0 && !prev_owns_end && coin(rng)) ? t : t + gap(rng) + 1e-3;
    } else {
      rc = coin(rng);
      if (i > 0 && coin(rng)) {
        // Adjacent: shared boundary owned by at most one side.
        s = t;
        lc = prev_owns_end ? false : coin(rng);
      } else {
        s = t + gap(rng) + 1e-3;
        lc = coin(rng);
      }
    }
    double e = s + d;
    units.push_back(*UReal::Make(*TimeInterval::Make(s, e, lc, rc),
                                 0, 0.25, double(i), false));
    t = e;
    prev_owns_end = rc;
  }
  auto m = MovingReal::Make(std::move(units));
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? *m : MovingReal();
}

// Satellite: randomized differential test, AtInstantBatch ≡ per-instant
// AtInstant on 1000 fuzzed mappings (and PresentBatch ≡ Present,
// FindUnit with ≡ without the SoA index).
TEST(AtInstantBatch, DifferentialFuzz1000) {
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<double> pick(-1.0, 1.0);
  for (int iter = 0; iter < 1000; ++iter) {
    MovingReal m = FuzzMapping(rng, 12);
    MovingReal indexed = m;
    indexed.BuildSearchIndex();

    // Query instants: uniform samples plus exact unit endpoints.
    std::vector<Instant> instants;
    double hi = m.IsEmpty() ? 5.0 : m.units().back().interval().end() + 1.0;
    std::uniform_real_distribution<double> td(-0.5, hi);
    for (int k = 0; k < 24; ++k) instants.push_back(td(rng));
    for (const UReal& u : m.units()) {
      instants.push_back(u.interval().start());
      instants.push_back(u.interval().end());
    }
    std::sort(instants.begin(), instants.end());

    auto batch = AtInstantBatch(m, instants);
    auto batch_ix = AtInstantBatch(indexed, instants);
    auto present = PresentBatch(m, instants);
    auto present_ix = PresentBatch(indexed, instants);
    ASSERT_TRUE(batch.ok() && batch_ix.ok() && present.ok() &&
                present_ix.ok());
    for (std::size_t i = 0; i < instants.size(); ++i) {
      Instant t = instants[i];
      Intime<double> one = m.AtInstant(t);
      ASSERT_EQ((*batch)[i].defined, one.defined)
          << "iter " << iter << " t=" << t;
      if (one.defined) {
        ASSERT_EQ((*batch)[i].value, one.value)
            << "iter " << iter << " t=" << t;
      }
      ASSERT_EQ((*batch_ix)[i].defined, one.defined)
          << "iter " << iter << " t=" << t;
      ASSERT_EQ((*present)[i] != 0, m.Present(t))
          << "iter " << iter << " t=" << t;
      ASSERT_EQ((*present_ix)[i] != 0, m.Present(t))
          << "iter " << iter << " t=" << t;
      ASSERT_EQ(indexed.FindUnit(t), m.FindUnit(t))
          << "iter " << iter << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Two-pointer Present(Periods) / AtPeriods vs. the quadratic reference.
// ---------------------------------------------------------------------------

bool PresentReference(const MovingReal& m, const Periods& periods) {
  for (const UReal& u : m.units()) {
    for (const TimeInterval& iv : periods.intervals()) {
      if (!TimeInterval::Disjoint(u.interval(), iv)) return true;
    }
  }
  return false;
}

Result<MovingReal> AtPeriodsReference(const MovingReal& m,
                                      const Periods& periods) {
  std::vector<UReal> out;
  for (const UReal& u : m.units()) {
    for (const TimeInterval& iv : periods.intervals()) {
      auto inter = TimeInterval::Intersect(u.interval(), iv);
      if (!inter) continue;
      Result<UReal> piece = u.WithInterval(*inter);
      if (!piece.ok()) return piece.status();
      out.push_back(std::move(*piece));
    }
  }
  return MovingReal::Make(std::move(out));
}

TEST(MappingPeriods, TwoPointerMatchesReferenceFuzz) {
  std::mt19937 rng(7771);
  std::uniform_real_distribution<double> gap(0.0, 1.5);
  std::uniform_real_distribution<double> dur(0.0, 2.0);
  std::bernoulli_distribution coin(0.5);
  for (int iter = 0; iter < 300; ++iter) {
    MovingReal m = FuzzMapping(rng, 10);
    // Random periods (canonicalized by FromIntervals).
    std::vector<TimeInterval> ivs;
    double t = gap(rng) - 0.5;
    int k = std::uniform_int_distribution<int>(0, 6)(rng);
    for (int i = 0; i < k; ++i) {
      double s = t + gap(rng);
      double d = coin(rng) ? 0.0 : dur(rng);
      bool lc = d == 0 ? true : coin(rng);
      bool rc = d == 0 ? true : coin(rng);
      ivs.push_back(*TimeInterval::Make(s, s + d, lc, rc));
      t = s + d + 1e-3;
    }
    Periods periods = Periods::FromIntervals(std::move(ivs));

    EXPECT_EQ(m.Present(periods), PresentReference(m, periods))
        << "iter " << iter;

    auto fast = m.AtPeriods(periods);
    auto ref = AtPeriodsReference(m, periods);
    ASSERT_EQ(fast.ok(), ref.ok()) << "iter " << iter;
    if (!fast.ok()) continue;
    ASSERT_EQ(fast->NumUnits(), ref->NumUnits()) << "iter " << iter;
    for (std::size_t i = 0; i < fast->NumUnits(); ++i) {
      EXPECT_EQ(fast->unit(i).interval(), ref->unit(i).interval())
          << "iter " << iter;
      Instant mid = (fast->unit(i).interval().start() +
                     fast->unit(i).interval().end()) /
                    2;
      EXPECT_EQ(fast->unit(i).ValueAt(mid), ref->unit(i).ValueAt(mid))
          << "iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// SoA search index details.
// ---------------------------------------------------------------------------

TEST(SearchIndex, CachesDeftimeBoundAndSharesAcrossCopies) {
  MovingReal m = *MovingReal::Make({UR(1, 2, 1), UR(4, 6, 2)});
  EXPECT_FALSE(m.HasSearchIndex());
  m.BuildSearchIndex();
  ASSERT_TRUE(m.HasSearchIndex());
  const MappingSearchIndex* ix = m.search_index();
  EXPECT_EQ(ix->min_start, 1.0);
  EXPECT_EQ(ix->max_end, 6.0);
  ASSERT_EQ(ix->start.size(), 2u);
  EXPECT_TRUE(ix->left_closed(0));
  // Copies share the index.
  MovingReal copy = m;
  EXPECT_EQ(copy.search_index(), ix);
  // Idempotent.
  m.BuildSearchIndex();
  EXPECT_EQ(m.search_index(), ix);
}

TEST(SearchIndex, SpatialBBoxForMovingPoint) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1, true, false), Point(0, 0),
                              Point(10, 5)),
       *UPoint::FromEndpoints(TI(1, 2), Point(10, 5), Point(-3, 7))});
  mp.BuildSearchIndex();
  const Cube& bbox = mp.search_index()->bbox;
  ASSERT_FALSE(bbox.IsEmpty());
  EXPECT_EQ(bbox.rect.min_x, -3.0);
  EXPECT_EQ(bbox.rect.max_x, 10.0);
  EXPECT_EQ(bbox.rect.min_y, 0.0);
  EXPECT_EQ(bbox.rect.max_y, 7.0);
  EXPECT_EQ(bbox.min_t, 0.0);
  EXPECT_EQ(bbox.max_t, 2.0);

  // Non-spatial unit types leave the bbox empty.
  MovingReal mr = *MovingReal::Make({UR(0, 1, 1)});
  mr.BuildSearchIndex();
  EXPECT_TRUE(mr.search_index()->bbox.IsEmpty());
}

}  // namespace
}  // namespace modb
