#include "temporal/refinement.h"

#include <gtest/gtest.h>

#include <random>

#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

UBool UB(double s, double e, bool v, bool lc = true, bool rc = true) {
  return *UBool::Make(TI(s, e, lc, rc), v);
}

UInt UI(double s, double e, int64_t v, bool lc = true, bool rc = true) {
  return *UInt::Make(TI(s, e, lc, rc), v);
}

TEST(Refinement, IdenticalIntervalsOneEntry) {
  MovingBool a = *MovingBool::Make({UB(0, 10, true)});
  MovingInt b = *MovingInt::Make({UI(0, 10, 7)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 1u);
  EXPECT_TRUE(rp[0].HasBoth());
  EXPECT_EQ(rp[0].interval, TI(0, 10));
}

TEST(Refinement, Figure8Pattern) {
  // Figure 8: two unit lists and their refinement partition.
  MovingBool a = *MovingBool::Make(
      {UB(0, 4, true, true, false), UB(6, 10, false)});
  MovingInt b = *MovingInt::Make({UI(2, 8, 5)});
  auto rp = RefinementPartition(a, b);
  // Expected pieces: [0,2) a-only, [2,4) both, [4,6) b-only, [6,8] both,
  // (8,10] a-only.
  ASSERT_EQ(rp.size(), 5u);
  EXPECT_EQ(rp[0].interval, TI(0, 2, true, false));
  EXPECT_TRUE(rp[0].unit_a == 0 && rp[0].unit_b == RefinementEntry::kNoUnit);
  EXPECT_EQ(rp[1].interval, TI(2, 4, true, false));
  EXPECT_TRUE(rp[1].HasBoth());
  EXPECT_EQ(rp[2].interval, TI(4, 6, true, false));
  EXPECT_TRUE(rp[2].unit_a == RefinementEntry::kNoUnit && rp[2].unit_b == 0);
  EXPECT_EQ(rp[3].interval, TI(6, 8, true, true));
  EXPECT_TRUE(rp[3].HasBoth());
  EXPECT_EQ(rp[3].unit_a, 1);
  EXPECT_EQ(rp[4].interval, TI(8, 10, false, true));
  EXPECT_EQ(rp[4].unit_a, 1);
}

TEST(Refinement, EmptyOperands) {
  MovingBool a;
  MovingInt b = *MovingInt::Make({UI(0, 1, 1)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 1u);
  EXPECT_EQ(rp[0].unit_a, RefinementEntry::kNoUnit);
  EXPECT_TRUE(RefinementPartition(a, MovingInt()).empty());
}

TEST(Refinement, DisjointTimelinesInterleave) {
  MovingBool a = *MovingBool::Make({UB(0, 1, true), UB(4, 5, false)});
  MovingInt b = *MovingInt::Make({UI(2, 3, 9)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 3u);
  EXPECT_EQ(rp[0].unit_a, 0);
  EXPECT_EQ(rp[1].unit_b, 0);
  EXPECT_EQ(rp[2].unit_a, 1);
}

TEST(Refinement, DegenerateOverlapPoint) {
  // [0,2] and [2,4]: the shared instant 2 forms its own entry.
  MovingBool a = *MovingBool::Make({UB(0, 2, true)});
  MovingInt b = *MovingInt::Make({UI(2, 4, 1)});
  auto rp = RefinementPartition(a, b);
  ASSERT_EQ(rp.size(), 3u);
  EXPECT_EQ(rp[0].interval, TI(0, 2, true, false));
  EXPECT_TRUE(rp[1].interval.IsDegenerate());
  EXPECT_TRUE(rp[1].HasBoth());
  EXPECT_EQ(rp[2].interval, TI(2, 4, false, true));
}

// Property: the partition covers exactly the union of both deftimes,
// entries are disjoint and ordered, and unit attribution is correct.
class RefinementProperty : public ::testing::TestWithParam<int> {};

TEST_P(RefinementProperty, CoverageDisjointnessAttribution) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> gap(0.01, 1.0);
  std::uniform_real_distribution<double> dur(0.1, 2.0);
  auto random_mapping = [&](auto make_unit, int n) {
    double t = gap(rng);
    std::vector<decltype(make_unit(0.0, 1.0, 0))> units;
    for (int i = 0; i < n; ++i) {
      double e = t + dur(rng);
      units.push_back(make_unit(t, e, i));
      t = e + gap(rng);
    }
    return units;
  };
  MovingBool a = *MovingBool::Make(random_mapping(
      [](double s, double e, int i) { return *UBool::Make(TI(s, e), i % 2 == 0); },
      5));
  MovingInt b = *MovingInt::Make(random_mapping(
      [](double s, double e, int i) { return *UInt::Make(TI(s, e), i); }, 4));
  auto rp = RefinementPartition(a, b);
  // Entries disjoint and ordered.
  for (std::size_t i = 0; i + 1 < rp.size(); ++i) {
    EXPECT_TRUE(TimeInterval::RDisjoint(rp[i].interval, rp[i + 1].interval));
  }
  // Pointwise: membership and attribution.
  for (double t = 0; t < 20; t += 0.037) {
    bool in_a = a.Present(t), in_b = b.Present(t);
    int hits = 0;
    for (const RefinementEntry& e : rp) {
      if (!e.interval.Contains(t)) continue;
      ++hits;
      EXPECT_EQ(e.unit_a != RefinementEntry::kNoUnit, in_a) << t;
      EXPECT_EQ(e.unit_b != RefinementEntry::kNoUnit, in_b) << t;
      if (in_a) {
        EXPECT_TRUE(a.unit(std::size_t(e.unit_a)).interval().Contains(t));
      }
      if (in_b) {
        EXPECT_TRUE(b.unit(std::size_t(e.unit_b)).interval().Contains(t));
      }
    }
    EXPECT_EQ(hits, (in_a || in_b) ? 1 : 0) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RefinementProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace modb
