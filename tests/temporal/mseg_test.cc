#include "temporal/mseg.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

TEST(MSegMake, RejectsIdenticalEndpointMotions) {
  LinearMotion m{0, 1, 0, 0};
  EXPECT_FALSE(MSeg::Make(m, m).ok());
}

TEST(MSegMake, AcceptsParallelTranslation) {
  // Both endpoints move with velocity (1, 1): a rigid translation.
  auto m = MSeg::Make(LinearMotion{0, 1, 0, 1}, LinearMotion{2, 1, 0, 1});
  EXPECT_TRUE(m.ok()) << m.status();
}

TEST(MSegMake, RejectsRotation) {
  // Endpoint s pinned at the origin; endpoint e moving perpendicular to
  // the segment: the segment rotates — forbidden by the coplanarity
  // constraint of Section 3.2.6.
  auto m = MSeg::Make(LinearMotion{0, 0, 0, 0}, LinearMotion{2, 0, 0, 1});
  EXPECT_FALSE(m.ok());
}

TEST(MSegMake, AcceptsScalingAlongItsDirection) {
  // Segment along the x axis stretching: e moves along the segment
  // direction — no rotation.
  auto m = MSeg::Make(LinearMotion{0, 0, 0, 0}, LinearMotion{2, 1, 0, 0});
  EXPECT_TRUE(m.ok()) << m.status();
}

TEST(MSegFromEndSegments, InterpolatesEndpoints) {
  MSeg m = *MSeg::FromEndSegments(0, S(0, 0, 1, 0), 10, S(5, 5, 6, 5));
  auto at0 = m.ValueAt(0);
  auto at10 = m.ValueAt(10);
  ASSERT_TRUE(at0 && at10);
  EXPECT_EQ(*at0, S(0, 0, 1, 0));
  EXPECT_EQ(*at10, S(5, 5, 6, 5));
  auto at5 = m.ValueAt(5);
  ASSERT_TRUE(at5);
  EXPECT_TRUE(ApproxEqual(at5->a(), Point(2.5, 2.5)));
}

TEST(MSegFromEndSegments, RejectsRotatingInterpolation) {
  // Horizontal at t0, vertical at t1 (a-to-a, b-to-b mapping rotates).
  EXPECT_FALSE(MSeg::FromEndSegments(0, S(0, 0, 1, 0), 1, S(0, 0, 0, 1)).ok());
}

TEST(MSegDegeneration, CollapseToPoint) {
  // A segment shrinking to a point at t=2.
  MSeg m = *MSeg::FromEndSegments(0, S(0, 0, 2, 0), 1, S(0.5, 0, 1.5, 0));
  std::vector<Instant> deg = m.DegenerationTimes();
  ASSERT_EQ(deg.size(), 1u);
  EXPECT_DOUBLE_EQ(deg[0], 2);
  EXPECT_FALSE(m.ValueAt(2).has_value());
  EXPECT_TRUE(m.ValueAt(1.9).has_value());
}

TEST(MSegValueAt, NormalizedSegOrder) {
  MSeg m = *MSeg::StaticSeg(S(3, 3, 1, 1));
  auto s = m.ValueAt(0);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->a(), Point(1, 1));
}

// -- crossing times (the geometric core of Section 5.2) ----------------------

TEST(CrossingTimes, PointThroughStaticSegment) {
  MSeg wall = *MSeg::StaticSeg(S(5, -1, 5, 1));
  // Point moving right along y=0 crosses x=5 at t=5.
  MSegCrossings c = CrossingTimes(LinearMotion{0, 1, 0, 0}, wall, TI(0, 10));
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_NEAR(c.times[0], 5, 1e-9);
  EXPECT_FALSE(c.always_collinear);
}

TEST(CrossingTimes, MissAboveTheSegment) {
  MSeg wall = *MSeg::StaticSeg(S(5, -1, 5, 1));
  MSegCrossings c = CrossingTimes(LinearMotion{0, 1, 2, 0}, wall, TI(0, 10));
  EXPECT_TRUE(c.times.empty());  // Passes the line but above the segment.
}

TEST(CrossingTimes, OutsideTimeWindowFiltered) {
  MSeg wall = *MSeg::StaticSeg(S(5, -1, 5, 1));
  MSegCrossings c = CrossingTimes(LinearMotion{0, 1, 0, 0}, wall, TI(0, 4));
  EXPECT_TRUE(c.times.empty());
}

TEST(CrossingTimes, MovingWallQuadratic) {
  // Wall moving right at speed 1 from x=10; point moving right at speed 3
  // from x=0: catch-up at t=5.
  MSeg wall = *MSeg::Make(LinearMotion{10, 1, -1, 0}, LinearMotion{10, 1, 1, 0});
  MSegCrossings c = CrossingTimes(LinearMotion{0, 3, 0, 0}, wall, TI(0, 10));
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_NEAR(c.times[0], 5, 1e-9);
}

TEST(CrossingTimes, AlwaysCollinearFlag) {
  MSeg rail = *MSeg::StaticSeg(S(0, 0, 10, 0));
  MSegCrossings c = CrossingTimes(LinearMotion{0, 1, 0, 0}, rail, TI(0, 10));
  EXPECT_TRUE(c.always_collinear);
}

TEST(ConfigurationEvents, SharedEndpointsProduceNoEvents) {
  // Two moving segments of one translating square corner share a vertex
  // motion; the identically-zero cross quadratic must not flood events.
  LinearMotion corner{0, 1, 0, 0};
  MSeg a = *MSeg::Make(corner, LinearMotion{2, 1, 0, 0});
  MSeg b = *MSeg::Make(corner, LinearMotion{0, 1, 2, 0});
  EXPECT_TRUE(ConfigurationEvents(a, b, TI(0, 10)).empty());
}

TEST(ConfigurationEvents, DetectsEndpointCrossing) {
  MSeg wall = *MSeg::StaticSeg(S(5, -2, 5, 2));
  // A segment whose left endpoint passes through the wall at t=5.
  MSeg mover = *MSeg::Make(LinearMotion{0, 1, 0, 0}, LinearMotion{1, 1, 0, 0});
  std::vector<Instant> ev = ConfigurationEvents(mover, wall, TI(0, 10));
  ASSERT_GE(ev.size(), 2u);  // Both endpoints cross (t=5 and t=4).
  EXPECT_NEAR(ev[0], 4, 1e-9);
  EXPECT_NEAR(ev[1], 5, 1e-9);
}

}  // namespace
}  // namespace modb
