#include "temporal/mregion_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "gen/region_gen.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

MovingRegion TranslatingSquare(double side, Point drift, int units = 1,
                               double unit_duration = 10) {
  std::mt19937_64 rng(1);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 4;
  opts.shape.jitter = 0;
  opts.shape.radius = side / std::sqrt(2.0);
  opts.shape.center = Point(0, 0);
  opts.num_units = units;
  opts.unit_duration = unit_duration;
  opts.drift = drift;
  return *GenerateMovingRegion(rng, opts);
}

TEST(AreaOp, RigidTranslationConstantArea) {
  MovingRegion mr = TranslatingSquare(2, Point(10, 0));
  MovingReal area = *Area(mr);
  double a0 = area.AtInstant(0.5).val();
  double a1 = area.AtInstant(9.5).val();
  EXPECT_NEAR(a0, a1, 1e-6);
  EXPECT_GT(a0, 0);
}

TEST(AreaOp, GrowingSquareExactQuadratic) {
  // Side s(t) = 2 + t: area (2 + t)² = t² + 4t + 4 — recovered exactly.
  std::vector<Point> r0 = {Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)};
  std::vector<Point> r1 = {Point(-4, -4), Point(8, -4), Point(8, 8),
                           Point(-4, 8)};
  // From side 2 at t=0 to side 12 at t=10 around center (1,1).
  MCycle cycle;
  for (int i = 0; i < 4; ++i) {
    cycle.push_back(*MSeg::FromEndSegments(
        0, *Seg::Make(r0[std::size_t(i)], r0[std::size_t((i + 1) % 4)]), 10,
        *Seg::Make(r1[std::size_t(i)], r1[std::size_t((i + 1) % 4)])));
  }
  MovingRegion mr =
      *MovingRegion::Make({*URegion::FromCycle(TI(0, 10), cycle)});
  MovingReal area = *Area(mr);
  ASSERT_EQ(area.NumUnits(), 1u);
  const UReal& u = area.unit(0);
  EXPECT_FALSE(u.root());
  // Side at t: 2 + t ⇒ area 4 + 4t + t².
  EXPECT_NEAR(u.a(), 1, 1e-6);
  EXPECT_NEAR(u.b(), 4, 1e-6);
  EXPECT_NEAR(u.c(), 4, 1e-6);
  // Exactness also at the (clean) endpoints.
  EXPECT_NEAR(area.AtInstant(0).val(), 4, 1e-6);
  EXPECT_NEAR(area.AtInstant(10).val(), 144, 1e-5);
}

TEST(AreaOp, MatchesSnapshotOracle) {
  std::mt19937_64 rng(5);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 10;
  opts.shape.radius = 30;
  opts.shape.center = Point(0, 0);
  opts.num_units = 3;
  opts.unit_duration = 4;
  opts.drift = Point(8, 3);
  opts.scale_per_unit = 1.3;
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  MovingReal area = *Area(mr);
  for (double t = 0.3; t < 12; t += 0.7) {
    std::size_t ui = *mr.FindUnit(t);
    double oracle = mr.unit(ui).ValueAt(t).Area();
    EXPECT_NEAR(area.AtInstant(t).val(), oracle, 1e-5 * (1 + oracle)) << t;
  }
}

TEST(PerimeterOp, RigidTranslationExact) {
  MovingRegion mr = TranslatingSquare(2, Point(10, 0));
  MovingReal per = *PerimeterApprox(mr, 4);
  double expected = mr.unit(0).ValueAt(1).Perimeter();
  EXPECT_NEAR(per.AtInstant(1).val(), expected, 1e-6);
  EXPECT_NEAR(per.AtInstant(8).val(), expected, 1e-6);
}

TEST(PerimeterOp, ExactForNonRotatingMotion) {
  // The non-rotation constraint makes every moving segment's length
  // linear in t, so the per-unit perimeter is linear and the quadratic
  // fit recovers it exactly — even with a single subdivision.
  std::mt19937_64 rng(9);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 6;
  opts.shape.radius = 10;
  opts.num_units = 1;
  opts.unit_duration = 10;
  opts.drift = Point(25, 10);
  opts.scale_per_unit = 2.0;
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  for (int subdivisions : {1, 4}) {
    MovingReal per = *PerimeterApprox(mr, subdivisions);
    for (double t = 0.2; t < 10; t += 0.2) {
      double oracle = mr.unit(0).ValueAt(t).Perimeter();
      EXPECT_NEAR(per.AtInstant(t).val(), oracle, 1e-7 * (1 + oracle))
          << "subdivisions=" << subdivisions << " t=" << t;
    }
  }
}

TEST(PerimeterOp, RejectsBadSubdivisions) {
  MovingRegion mr = TranslatingSquare(2, Point(1, 0));
  EXPECT_FALSE(PerimeterApprox(mr, 0).ok());
}

TEST(TraversedOp, TranslatingShapeSweepsAreaPlusHeightTimesDrift) {
  // A convex shape translating horizontally by d sweeps its own area
  // plus height × d (Cavalieri).
  MovingRegion mr = TranslatingSquare(2, Point(10, 0));
  Result<Region> trav = Traversed(mr);
  ASSERT_TRUE(trav.ok()) << trav.status();
  Region start = mr.unit(0).ValueAt(mr.unit(0).interval().start());
  double height = start.BoundingBox().max_y - start.BoundingBox().min_y;
  double expected = start.Area() + height * 10;
  EXPECT_NEAR(trav->Area(), expected, 1e-6 * expected);
}

TEST(TraversedOp, StationaryRegionIsItself) {
  MovingRegion mr = TranslatingSquare(2, Point(0.0, 0.0));
  Result<Region> trav = Traversed(mr);
  ASSERT_TRUE(trav.ok()) << trav.status();
  double area = mr.unit(0).ValueAt(5).Area();
  EXPECT_NEAR(trav->Area(), area, 1e-6);
}

TEST(TraversedOp, ContainsEverySnapshotPoint) {
  std::mt19937_64 rng(21);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 8;
  opts.shape.radius = 10;
  opts.shape.center = Point(0, 0);
  opts.num_units = 2;
  opts.unit_duration = 5;
  opts.drift = Point(12, 6);
  opts.drift_alternation = Point(2, 2);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  Region trav = *Traversed(mr);
  std::uniform_real_distribution<double> u01(0.05, 0.95);
  for (int i = 0; i < 200; ++i) {
    double t = u01(rng) * 10;
    std::size_t ui = *mr.FindUnit(t);
    Region snap = mr.unit(ui).ValueAt(t);
    Rect b = snap.BoundingBox();
    Point p(b.min_x + u01(rng) * (b.max_x - b.min_x),
            b.min_y + u01(rng) * (b.max_y - b.min_y));
    if (!snap.InteriorContains(p)) continue;
    EXPECT_TRUE(trav.Contains(p))
        << "t=" << t << " p=" << p.ToString();
  }
}

}  // namespace
}  // namespace modb
