#include "temporal/uline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

// Figure 4: a valid uline — segments translating without rotation.
TEST(ULineMake, TranslatingSegmentsValid) {
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 1, 0), 10, S(5, 5, 6, 5));
  MSeg b = *MSeg::FromEndSegments(0, S(0, 2, 1, 3), 10, S(5, 7, 6, 8));
  auto u = ULine::Make(TI(0, 10), {a, b});
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->Size(), 2u);
}

TEST(ULineMake, RejectsEmpty) {
  EXPECT_FALSE(ULine::Make(TI(0, 1), {}).ok());
}

TEST(ULineMake, RejectsDegenerationInsideInterval) {
  // Shrinks to a point at t=2, inside (0, 10).
  MSeg m = *MSeg::FromEndSegments(0, S(0, 0, 2, 0), 1, S(0.5, 0, 1.5, 0));
  EXPECT_FALSE(ULine::Make(TI(0, 10), {m}).ok());
  // Valid if the degeneration instant is the interval end.
  EXPECT_TRUE(ULine::Make(TI(0, 2), {m}).ok());
}

TEST(ULineMake, RejectsPermanentOverlap) {
  MSeg a = *MSeg::StaticSeg(S(0, 0, 2, 0));
  MSeg b = *MSeg::StaticSeg(S(1, 0, 3, 0));
  EXPECT_FALSE(ULine::Make(TI(0, 1), {a, b}).ok());
}

TEST(ULineMake, RejectsTransientOverlapInsideInterval) {
  // A static horizontal segment, and a translating horizontal segment
  // that sweeps vertically across it, overlapping exactly at t=5.
  MSeg still = *MSeg::StaticSeg(S(0, 0, 2, 0));
  MSeg sweep = *MSeg::FromEndSegments(0, S(1, -5, 3, -5), 10, S(1, 5, 3, 5));
  EXPECT_FALSE(ULine::Make(TI(0, 10), {still, sweep}).ok());
  // Fine if the overlap instant is an endpoint of the unit interval.
  EXPECT_TRUE(ULine::Make(TI(5, 10), {still, sweep}).ok());
}

TEST(ULineMake, CrossingSegmentsAreFine) {
  // Segments may cross (line values allow crossings, only collinear
  // overlap is forbidden).
  MSeg a = *MSeg::StaticSeg(S(0, 0, 2, 2));
  MSeg b = *MSeg::StaticSeg(S(0, 2, 2, 0));
  EXPECT_TRUE(ULine::Make(TI(0, 1), {a, b}).ok());
}

TEST(ULineValueAt, EvaluatesToLine) {
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 1, 0), 10, S(5, 5, 6, 5));
  ULine u = *ULine::Make(TI(0, 10), {a});
  Line l0 = u.ValueAt(0);
  ASSERT_EQ(l0.NumSegments(), 1u);
  EXPECT_EQ(l0.segment(0), S(0, 0, 1, 0));
  Line l5 = u.ValueAt(5);
  EXPECT_TRUE(ApproxEqual(l5.segment(0).a(), Point(2.5, 2.5)));
}

TEST(ULineValueAt, EndpointDegenerationDropped) {
  // ι_e cleanup: the degenerate member vanishes at the interval end.
  MSeg shrink = *MSeg::FromEndSegments(0, S(0, 0, 2, 0), 1, S(0.5, 0, 1.5, 0));
  MSeg steady = *MSeg::StaticSeg(S(0, 5, 2, 5));
  ULine u = *ULine::Make(TI(0, 2), {shrink, steady});
  EXPECT_EQ(u.ValueAt(1).NumSegments(), 2u);
  Line at_end = u.ValueAt(2);
  ASSERT_EQ(at_end.NumSegments(), 1u);  // Only the steady segment remains.
  EXPECT_EQ(at_end.segment(0), S(0, 5, 2, 5));
}

TEST(ULineValueAt, EndpointOverlapMerged) {
  // ι_s cleanup: two segments that overlap exactly at the interval start
  // are merged into one maximal segment (merge-segs).
  MSeg still = *MSeg::StaticSeg(S(0, 0, 2, 0));
  MSeg sweep = *MSeg::FromEndSegments(0, S(1, 0, 3, 0), 10, S(1, 10, 3, 10));
  ULine u = *ULine::Make(TI(0, 10), {still, sweep});
  Line at_start = u.ValueAt(0);
  ASSERT_EQ(at_start.NumSegments(), 1u);
  EXPECT_EQ(at_start.segment(0), S(0, 0, 3, 0));
  EXPECT_EQ(u.ValueAt(5).NumSegments(), 2u);
}

// Figure 5: refining the slicing improves the approximation of a
// continuously moving line.
TEST(ULineRefinement, ErrorShrinksWithMoreSlices) {
  // Target motion: segment endpoints follow a parabola y = (t/10)²·10;
  // linear slices approximate it.
  auto target_y = [](double t) { return t * t / 10; };
  auto error_with_slices = [&](int slices) {
    double max_err = 0;
    for (int k = 0; k < slices; ++k) {
      double t0 = 10.0 * k / slices, t1 = 10.0 * (k + 1) / slices;
      MSeg m = *MSeg::FromEndSegments(t0, S(0, target_y(t0), 1, target_y(t0)),
                                      t1, S(0, target_y(t1), 1, target_y(t1)));
      ULine u = *ULine::Make(*TimeInterval::Make(t0, t1, true, true), {m});
      for (int probe = 1; probe < 8; ++probe) {
        double t = t0 + (t1 - t0) * probe / 8;
        double approx = u.ValueAt(t).segment(0).a().y;
        max_err = std::max(max_err, std::fabs(approx - target_y(t)));
      }
    }
    return max_err;
  };
  double err2 = error_with_slices(2);
  double err8 = error_with_slices(8);
  EXPECT_LT(err8, err2 / 4);  // Quadratic target: error ~ h².
}

TEST(ULineWithInterval, SubIntervalKeepsValidity) {
  MSeg m = *MSeg::FromEndSegments(0, S(0, 0, 1, 0), 10, S(5, 5, 6, 5));
  ULine u = *ULine::Make(TI(0, 10), {m});
  auto sub = u.WithInterval(TI(2, 3));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->interval(), TI(2, 3));
}

TEST(ULineBoundingCube, CoversSweep) {
  MSeg m = *MSeg::FromEndSegments(0, S(0, 0, 1, 0), 10, S(5, 5, 6, 5));
  ULine u = *ULine::Make(TI(0, 10), {m});
  Cube c = u.BoundingCube();
  EXPECT_EQ(c.rect.min_x, 0);
  EXPECT_EQ(c.rect.max_x, 6);
  EXPECT_EQ(c.rect.max_y, 5);
  EXPECT_EQ(c.max_t, 10);
}

}  // namespace
}  // namespace modb
