// Tests for the domain/range interaction operations added on top of the
// Section 5 algorithms: at/atrange/passes on moving reals, intersection
// of a moving point with a line, and inside of a fixed point in a moving
// region.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "gen/region_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

MovingReal Ramp(double t0, double t1) {
  // Value t on [t0, t1].
  return *MovingReal::Make({*UReal::Make(TI(t0, t1), 0, 1, 0, false)});
}

TEST(MRealAt, IsolatedHits) {
  MovingReal m = Ramp(0, 10);
  MovingReal at5 = *At(m, 5.0);
  ASSERT_EQ(at5.NumUnits(), 1u);
  EXPECT_TRUE(at5.unit(0).interval().IsDegenerate());
  EXPECT_DOUBLE_EQ(at5.unit(0).interval().start(), 5);
  EXPECT_TRUE(At(m, 20.0)->IsEmpty());
}

TEST(MRealAt, ConstantUnitWholeInterval) {
  MovingReal m = *MovingReal::Make({*UReal::Constant(TI(0, 4), 7)});
  MovingReal at7 = *At(m, 7.0);
  ASSERT_EQ(at7.NumUnits(), 1u);
  EXPECT_EQ(at7.unit(0).interval(), TI(0, 4));
}

TEST(MRealAt, ParabolaTwoHits) {
  // (t-5)²: value 4 at t=3 and t=7.
  MovingReal m = *MovingReal::Make({*UReal::Make(TI(0, 10), 1, -10, 25, false)});
  MovingReal at4 = *At(m, 4.0);
  ASSERT_EQ(at4.NumUnits(), 2u);
  EXPECT_DOUBLE_EQ(at4.unit(0).interval().start(), 3);
  EXPECT_DOUBLE_EQ(at4.unit(1).interval().start(), 7);
}

TEST(MRealAtRange, RampWindow) {
  MovingReal m = Ramp(0, 10);
  MovingReal mid = *AtRange(m, 2.0, 5.0);
  EXPECT_FALSE(mid.Present(1.9));
  EXPECT_TRUE(mid.Present(2));
  EXPECT_TRUE(mid.Present(3.5));
  EXPECT_TRUE(mid.Present(5));
  EXPECT_FALSE(mid.Present(5.1));
  EXPECT_NEAR(mid.AtInstant(3).val(), 3, 1e-12);
  EXPECT_FALSE(AtRange(m, 3, 2).ok());  // lo > hi rejected.
}

TEST(MRealAtRange, ParabolaDipsIntoRange) {
  // (t-5)² + 1 on [0,10]: within [1, 2] for |t-5| <= 1.
  MovingReal m = *MovingReal::Make({*UReal::Make(TI(0, 10), 1, -10, 26, false)});
  MovingReal r = *AtRange(m, 1.0, 2.0);
  ASSERT_EQ(r.NumUnits(), 1u);
  EXPECT_NEAR(r.unit(0).interval().start(), 4, 1e-9);
  EXPECT_NEAR(r.unit(0).interval().end(), 6, 1e-9);
}

TEST(MRealPasses, HitAndMiss) {
  MovingReal m = Ramp(0, 10);
  EXPECT_TRUE(Passes(m, 7.5));
  EXPECT_FALSE(Passes(m, 11.0));
  EXPECT_TRUE(Passes(*MovingReal::Make({*UReal::Constant(TI(0, 1), 3)}), 3.0));
}

TEST(MPointLineIntersection, TransversalCrossings) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0))});
  Line cross = *Line::Make({*Seg::Make(Point(3, -1), Point(3, 1)),
                            *Seg::Make(Point(7, -1), Point(7, 1))});
  MovingPoint on = *Intersection(mp, cross);
  ASSERT_EQ(on.NumUnits(), 2u);
  EXPECT_TRUE(on.unit(0).interval().IsDegenerate());
  EXPECT_DOUBLE_EQ(on.unit(0).interval().start(), 3);
  EXPECT_DOUBLE_EQ(on.unit(1).interval().start(), 7);
  EXPECT_TRUE(ApproxEqual(on.AtInstant(3).val(), Point(3, 0)));
}

TEST(MPointLineIntersection, RidingAlongSegment) {
  // The point travels along the x axis; the line contains [2,6]×{0}: the
  // point is on the line during t ∈ [2, 6].
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0))});
  Line rail = *Line::Make({*Seg::Make(Point(2, 0), Point(6, 0))});
  MovingPoint on = *Intersection(mp, rail);
  ASSERT_EQ(on.NumUnits(), 1u);
  EXPECT_DOUBLE_EQ(on.unit(0).interval().start(), 2);
  EXPECT_DOUBLE_EQ(on.unit(0).interval().end(), 6);
  EXPECT_TRUE(ApproxEqual(on.AtInstant(4).val(), Point(4, 0)));
}

TEST(MPointLineIntersection, StationaryOnLine) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::Static(TI(0, 5), Point(3, 0))});
  Line rail = *Line::Make({*Seg::Make(Point(0, 0), Point(10, 0))});
  MovingPoint on = *Intersection(mp, rail);
  ASSERT_EQ(on.NumUnits(), 1u);
  EXPECT_EQ(on.unit(0).interval(), TI(0, 5));
  MovingPoint off = *Intersection(
      *MovingPoint::Make({*UPoint::Static(TI(0, 5), Point(3, 2))}), rail);
  EXPECT_TRUE(off.IsEmpty());
}

TEST(DistanceToMovingPoints, SwitchesToNearestMember) {
  // Point moving right along y=0; two static members at (0, 5) and
  // (10, 5): the nearer one switches at x=5, i.e. t=5.
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0))});
  MovingPoints mps = *MovingPoints::Make({*UPoints::Make(
      TI(0, 10), {LinearMotion{0, 0, 5, 0}, LinearMotion{10, 0, 5, 0}})});
  MovingReal d = *LiftedDistance(mp, mps);
  // Oracle at sampled instants: min over members.
  for (double t = 0; t <= 10; t += 0.25) {
    Point p = mp.AtInstant(t).val();
    double oracle = std::min(Distance(p, Point(0, 5)),
                             Distance(p, Point(10, 5)));
    EXPECT_NEAR(d.AtInstant(t).val(), oracle, 1e-9) << t;
  }
  // The switch instant produces a breakpoint: at least 2 units.
  EXPECT_GE(d.NumUnits(), 2u);
  EXPECT_NEAR(d.AtInstant(0).val(), 5, 1e-9);
  EXPECT_NEAR(d.AtInstant(5).val(), std::hypot(5, 5), 1e-9);
}

TEST(DistanceToMovingPoints, MovingMembersOracle) {
  std::mt19937_64 rng(31);
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 8), Point(0, 0), Point(40, 16))});
  MovingPoints mps = *MovingPoints::Make({*UPoints::Make(
      TI(0, 8), {LinearMotion{40, -4, 0, 1}, LinearMotion{0, 5, 30, -3},
                 LinearMotion{20, 0, -10, 2}})});
  MovingReal d = *LiftedDistance(mp, mps);
  for (double t = 0.05; t < 8; t += 0.11) {
    Point p = mp.AtInstant(t).val();
    Points members = mps.AtInstant(t).val();
    double oracle = kInfinity;
    for (const Point& q : members.points()) {
      oracle = std::min(oracle, Distance(p, q));
    }
    EXPECT_NEAR(d.AtInstant(t).val(), oracle, 1e-8 * (1 + oracle)) << t;
  }
}

TEST(InsideMovingPoints, CoincidenceInstants) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0))});
  // One member crosses the moving point's path at t=5; another never.
  MovingPoints mps = *MovingPoints::Make({*UPoints::Make(
      TI(0, 10), {LinearMotion{10, -1, 0, 0}, LinearMotion{0, 0, 7, 0}})});
  MovingBool in = *Inside(mp, mps);
  EXPECT_FALSE(in.AtInstant(4.9).val());
  EXPECT_TRUE(in.AtInstant(5).val());
  EXPECT_FALSE(in.AtInstant(5.1).val());
}

TEST(InsideLine, DerivedFromIntersection) {
  MovingPoint mp = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0))});
  Line rail = *Line::Make({*Seg::Make(Point(2, 0), Point(6, 0))});
  MovingBool on = *Inside(mp, rail);
  EXPECT_FALSE(on.AtInstant(1).val());
  EXPECT_TRUE(on.AtInstant(4).val());
  EXPECT_FALSE(on.AtInstant(8).val());
  // Defined on all of mp's deftime.
  EXPECT_TRUE(on.Present(0));
  EXPECT_TRUE(on.Present(10));
  Periods when = WhenTrue(on);
  ASSERT_EQ(when.NumIntervals(), 1u);
  EXPECT_DOUBLE_EQ(when.interval(0).start(), 2);
  EXPECT_DOUBLE_EQ(when.interval(0).end(), 6);
}

TEST(PointInsideMovingRegion, RegionSweepsOverPoint) {
  // A square translating right passes over the fixed point (20, 0).
  std::mt19937_64 rng(1);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 4;
  opts.shape.jitter = 0;
  opts.shape.radius = 3;
  opts.shape.center = Point(0, 0);
  opts.num_units = 1;
  opts.unit_duration = 10;
  opts.drift = Point(40, 0);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  Point p(20, 0);
  MovingBool in = *Inside(p, mr);
  // Diamond radius 3, center x(t) = 4t: covers x=20 for |4t - 20| <= 3.
  EXPECT_FALSE(in.AtInstant(4).val());
  EXPECT_TRUE(in.AtInstant(5).val());
  EXPECT_FALSE(in.AtInstant(6).val());
  Periods when = WhenTrue(in);
  ASSERT_EQ(when.NumIntervals(), 1u);
  EXPECT_NEAR(when.interval(0).start(), 17.0 / 4, 1e-9);
  EXPECT_NEAR(when.interval(0).end(), 23.0 / 4, 1e-9);
  EXPECT_TRUE(Passes(mr, p));
  EXPECT_FALSE(Passes(mr, Point(20, 50)));
}

TEST(PointInsideMovingRegion, OracleAgreement) {
  std::mt19937_64 rng(14);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 9;
  opts.shape.jitter = 0.25;
  opts.shape.radius = 30;
  opts.shape.center = Point(0, 0);
  opts.num_units = 3;
  opts.unit_duration = 6;
  opts.drift = Point(25, 10);
  opts.drift_alternation = Point(3, 2);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  std::uniform_real_distribution<double> px(-40, 120);
  std::uniform_real_distribution<double> py(-40, 80);
  for (int i = 0; i < 25; ++i) {
    Point p(px(rng), py(rng));
    MovingBool in = *Inside(p, mr);
    for (double t = 0.1; t < 18; t += 0.37) {
      std::size_t ui = *mr.FindUnit(t);
      bool oracle = EvenOddContains(mr.unit(ui).Snapshot(t), p);
      EXPECT_EQ(in.AtInstant(t).val(), oracle)
          << "p=" << p.ToString() << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace modb
