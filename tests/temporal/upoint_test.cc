#include "temporal/upoint.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

TEST(LinearMotion, Evaluation) {
  LinearMotion m{1, 2, 3, -1};
  EXPECT_EQ(m.At(0), Point(1, 3));
  EXPECT_EQ(m.At(2), Point(5, 1));
  EXPECT_FALSE(m.IsStatic());
  EXPECT_TRUE((LinearMotion{1, 0, 3, 0}).IsStatic());
}

TEST(LinearMotion, LexicographicOrder) {
  EXPECT_TRUE((LinearMotion{1, 0, 0, 0}) < (LinearMotion{2, 0, 0, 0}));
  EXPECT_TRUE((LinearMotion{1, 0, 0, 0}) < (LinearMotion{1, 1, 0, 0}));
  EXPECT_TRUE((LinearMotion{1, 1, 0, 0}) < (LinearMotion{1, 1, 0, 1}));
}

TEST(UPointFromEndpoints, InterpolatesExactly) {
  UPoint u = *UPoint::FromEndpoints(TI(10, 20), Point(0, 0), Point(10, 20));
  EXPECT_TRUE(ApproxEqual(u.ValueAt(10), Point(0, 0)));
  EXPECT_TRUE(ApproxEqual(u.ValueAt(15), Point(5, 10)));
  EXPECT_TRUE(ApproxEqual(u.ValueAt(20), Point(10, 20)));
  EXPECT_TRUE(ApproxEqual(u.StartPoint(), Point(0, 0)));
  EXPECT_TRUE(ApproxEqual(u.EndPoint(), Point(10, 20)));
}

TEST(UPointFromEndpoints, InstantUnitNeedsEqualPositions) {
  EXPECT_FALSE(
      UPoint::FromEndpoints(TimeInterval::At(5), Point(0, 0), Point(1, 1)).ok());
  auto u = UPoint::FromEndpoints(TimeInterval::At(5), Point(2, 3), Point(2, 3));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->ValueAt(5), Point(2, 3));
}

TEST(UPointTrajectory, MovingGivesSegment) {
  UPoint u = *UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(3, 4));
  auto s = u.TrajectorySegment();
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(s->Length(), 5);
}

TEST(UPointTrajectory, StaticGivesNothing) {
  UPoint u = *UPoint::Static(TI(0, 1), Point(2, 2));
  EXPECT_FALSE(u.TrajectorySegment().has_value());
}

TEST(UPointSpeed, MagnitudeOfVelocity) {
  UPoint u = *UPoint::FromEndpoints(TI(0, 2), Point(0, 0), Point(6, 8));
  EXPECT_DOUBLE_EQ(u.Speed(), 5);  // 10 units of distance in 2 time units.
  EXPECT_DOUBLE_EQ(UPoint::Static(TI(0, 1), Point(1, 1))->Speed(), 0);
}

TEST(UPointInstantAt, HitAndMiss) {
  UPoint u = *UPoint::FromEndpoints(TI(0, 10), Point(0, 0), Point(10, 0));
  auto t = u.InstantAt(Point(3, 0));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 3);
  EXPECT_FALSE(u.InstantAt(Point(3, 1)).has_value());    // Off the path.
  EXPECT_FALSE(u.InstantAt(Point(11, 0)).has_value());   // Past the end.
}

TEST(UPointInstantAt, VerticalMotionUsesYAxis) {
  UPoint u = *UPoint::FromEndpoints(TI(0, 10), Point(5, 0), Point(5, 10));
  auto t = u.InstantAt(Point(5, 7));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 7);
}

TEST(UPointInstantAt, StaticUnit) {
  UPoint u = *UPoint::Static(TI(2, 5), Point(1, 1));
  auto t = u.InstantAt(Point(1, 1));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 2);
  EXPECT_FALSE(u.InstantAt(Point(1, 2)).has_value());
}

TEST(UPointBoundingCube, CoversBothEnds) {
  UPoint u = *UPoint::FromEndpoints(TI(1, 3), Point(0, 5), Point(4, 1));
  Cube c = u.BoundingCube();
  EXPECT_EQ(c.rect.min_x, 0);
  EXPECT_EQ(c.rect.max_x, 4);
  EXPECT_EQ(c.rect.min_y, 1);
  EXPECT_EQ(c.rect.max_y, 5);
  EXPECT_EQ(c.min_t, 1);
  EXPECT_EQ(c.max_t, 3);
}

TEST(UPointFunctionEqual, MotionOnly) {
  UPoint a = *UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 1));
  UPoint b = *UPoint::FromEndpoints(TI(1, 2), Point(1, 1), Point(2, 2));
  // Same 3D line, different intervals → equal unit functions (mergeable).
  EXPECT_TRUE(UPoint::FunctionEqual(a, b));
  UPoint c = *UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 2));
  EXPECT_FALSE(UPoint::FunctionEqual(a, c));
}

}  // namespace
}  // namespace modb
