#include "temporal/mline_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

TEST(MLineLength, TranslatingLineConstant) {
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 3, 4), 10, S(10, 10, 13, 14));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  MovingReal len = *Length(ml);
  EXPECT_NEAR(len.AtInstant(2).val(), 5, 1e-9);
  EXPECT_NEAR(len.AtInstant(9).val(), 5, 1e-9);
}

TEST(MLineLength, StretchingLineLinear) {
  // Length 2 at t=0 growing to 6 at t=10: linear, 2 + 0.4t.
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 2, 0), 10, S(-2, 0, 4, 0));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  MovingReal len = *Length(ml);
  ASSERT_EQ(len.NumUnits(), 1u);
  EXPECT_NEAR(len.unit(0).a(), 0, 1e-9);
  EXPECT_NEAR(len.unit(0).b(), 0.4, 1e-9);
  EXPECT_NEAR(len.unit(0).c(), 2, 1e-9);
  for (double t = 0.5; t < 10; t += 1.3) {
    EXPECT_NEAR(len.AtInstant(t).val(), 2 + 0.4 * t, 1e-9) << t;
  }
}

TEST(MLineLength, MultipleSegmentsSum) {
  MSeg a = *MSeg::StaticSeg(S(0, 0, 3, 0));
  MSeg b = *MSeg::StaticSeg(S(0, 5, 0, 9));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 5), {a, b})});
  MovingReal len = *Length(ml);
  EXPECT_NEAR(len.AtInstant(2).val(), 7, 1e-9);
}

TEST(MLineTraversed, SweepingSegmentMakesRectangle) {
  // A horizontal segment of length 4 translating up by 3 sweeps 12.
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 4, 0), 10, S(0, 3, 4, 3));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  Region swept = *Traversed(ml);
  EXPECT_NEAR(swept.Area(), 12, 1e-9);
  EXPECT_TRUE(swept.Contains(Point(2, 1.5)));
}

TEST(MLineTraversed, StaticLineSweepsNothing) {
  MSeg a = *MSeg::StaticSeg(S(0, 0, 4, 0));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  Region swept = *Traversed(ml);
  EXPECT_TRUE(swept.IsEmpty());
}

TEST(MLineTraversed, SlidingAlongItselfSweepsNothing) {
  // Translation parallel to the segment direction: zero swept area.
  MSeg a = *MSeg::FromEndSegments(0, S(0, 0, 4, 0), 10, S(6, 0, 10, 0));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  Region swept = *Traversed(ml);
  EXPECT_NEAR(swept.Area(), 0, 1e-9);
}

TEST(MLineTraversed, TwoUnitsUnion) {
  MSeg up = *MSeg::FromEndSegments(0, S(0, 0, 4, 0), 5, S(0, 2, 4, 2));
  MSeg right = *MSeg::FromEndSegments(5, S(0, 2, 4, 2), 10, S(3, 2, 7, 2));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 5, true, false), {up}),
                                     *ULine::Make(TI(5, 10), {right})});
  Region swept = *Traversed(ml);
  // First unit sweeps 4×2 = 8; second slides along its own line (0).
  EXPECT_NEAR(swept.Area(), 8, 1e-9);
}

}  // namespace
}  // namespace modb
