#include "temporal/lifted_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "spatial/region_builder.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

MovingPoint LinearMP(double t0, double t1, Point p0, Point p1) {
  return *MovingPoint::Make({*UPoint::FromEndpoints(TI(t0, t1), p0, p1)});
}

// -- moving(bool) ------------------------------------------------------------

TEST(MovingBoolOps, NotFlipsValues) {
  MovingBool b = *MovingBool::Make({*UBool::Make(TI(0, 1), true),
                                    *UBool::Make(TI(2, 3), false)});
  MovingBool n = Not(b);
  EXPECT_FALSE(n.AtInstant(0.5).val());
  EXPECT_TRUE(n.AtInstant(2.5).val());
}

TEST(MovingBoolOps, AndOrOnOverlap) {
  MovingBool a = *MovingBool::Make({*UBool::Make(TI(0, 10), true)});
  MovingBool b = *MovingBool::Make({*UBool::Make(TI(5, 15), false)});
  MovingBool c = *And(a, b);
  EXPECT_FALSE(c.Present(2));  // Only defined where both are.
  EXPECT_FALSE(c.AtInstant(7).val());
  MovingBool d = *Or(a, b);
  EXPECT_TRUE(d.AtInstant(7).val());
}

TEST(MovingBoolOps, WhenTrueCollectsPeriods) {
  MovingBool b = *MovingBool::Make({*UBool::Make(TI(0, 1), true),
                                    *UBool::Make(TI(2, 3), false),
                                    *UBool::Make(TI(4, 5), true)});
  Periods p = WhenTrue(b);
  ASSERT_EQ(p.NumIntervals(), 2u);
  EXPECT_TRUE(p.Contains(0.5));
  EXPECT_FALSE(p.Contains(2.5));
  EXPECT_TRUE(p.Contains(4.5));
}

// -- lifted distance ----------------------------------------------------------

TEST(LiftedDistanceTest, HeadOnApproach) {
  // Two points approaching on the x axis, meeting at t=5.
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingReal d = *LiftedDistance(p, q);
  ASSERT_EQ(d.NumUnits(), 1u);
  EXPECT_TRUE(d.unit(0).root());
  EXPECT_NEAR(d.AtInstant(0).val(), 10, 1e-9);
  EXPECT_NEAR(d.AtInstant(5).val(), 0, 1e-9);
  EXPECT_NEAR(d.AtInstant(7.5).val(), 5, 1e-9);
}

TEST(LiftedDistanceTest, MatchesPointwiseOracle) {
  std::mt19937_64 rng(7);
  TrajectoryOptions opts;
  opts.num_units = 8;
  MovingPoint p = *RandomWalkPoint(rng, opts);
  MovingPoint q = *RandomWalkPoint(rng, opts);
  MovingReal d = *LiftedDistance(p, q);
  for (double t = 0; t <= 8; t += 0.1) {
    Intime<Point> vp = p.AtInstant(t), vq = q.AtInstant(t);
    if (!vp.defined || !vq.defined) continue;
    EXPECT_NEAR(d.AtInstant(t).val(), Distance(vp.val(), vq.val()), 1e-6)
        << t;
  }
}

TEST(LiftedDistanceTest, ToFixedPoint) {
  MovingPoint p = LinearMP(0, 10, Point(0, 3), Point(10, 3));
  MovingReal d = *LiftedDistance(p, Point(5, 0));
  // Closest at t=5: distance 3.
  EXPECT_NEAR(d.AtInstant(5).val(), 3, 1e-9);
  EXPECT_NEAR(d.AtInstant(0).val(), std::sqrt(34), 1e-9);
}

TEST(LiftedDistanceTest, PartialOverlapOnlyWhereBothDefined) {
  MovingPoint p = LinearMP(0, 5, Point(0, 0), Point(5, 0));
  MovingPoint q = LinearMP(3, 8, Point(0, 1), Point(5, 1));
  MovingReal d = *LiftedDistance(p, q);
  EXPECT_FALSE(d.Present(2));
  EXPECT_TRUE(d.Present(4));
  EXPECT_FALSE(d.Present(6));
}

// -- min/max and atmin --------------------------------------------------------

TEST(MinMaxValue, OverUnits) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingReal d = *LiftedDistance(p, q);
  EXPECT_NEAR(*MinValue(d), 0, 1e-9);
  EXPECT_NEAR(*MaxValue(d), 10, 1e-9);
  EXPECT_FALSE(MinValue(MovingReal()).has_value());
}

TEST(AtMinTest, IsolatedMinimumInstant) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingReal am = *AtMin(*LiftedDistance(p, q));
  ASSERT_EQ(am.NumUnits(), 1u);
  EXPECT_TRUE(am.unit(0).interval().IsDegenerate());
  EXPECT_DOUBLE_EQ(am.unit(0).interval().start(), 5);
  // The paper's query pipeline: val(initial(atmin(...))).
  EXPECT_NEAR(am.Initial().val(), 0, 1e-9);
  EXPECT_DOUBLE_EQ(am.Initial().inst(), 5);
}

TEST(AtMinTest, ConstantUnitKeepsWholeInterval) {
  MovingReal m = *MovingReal::Make(
      {*UReal::Constant(TI(0, 2, true, false), 1.0),
       *UReal::Constant(TI(2, 4), 5.0)});
  MovingReal am = *AtMin(m);
  ASSERT_EQ(am.NumUnits(), 1u);
  EXPECT_EQ(am.unit(0).interval(), TI(0, 2, true, false));
}

TEST(AtMaxTest, EndpointMaximum) {
  // Increasing t on [0,4]: max at t=4.
  MovingReal m = *MovingReal::Make({*UReal::Make(TI(0, 4), 0, 1, 0, false)});
  MovingReal am = *AtMax(m);
  ASSERT_EQ(am.NumUnits(), 1u);
  EXPECT_DOUBLE_EQ(am.unit(0).interval().start(), 4);
  EXPECT_NEAR(am.Initial().val(), 4, 1e-9);
}

// -- lifted comparison ---------------------------------------------------------

TEST(CompareTest, DistanceBelowThreshold) {
  // The Section-2 join predicate shape: distance < c.
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingBool lt = *Compare(*LiftedDistance(p, q), 2.0, CmpOp::kLt);
  // |10 - 2t| < 2 ⇔ t ∈ (4, 6).
  EXPECT_FALSE(lt.AtInstant(3.9).val());
  EXPECT_TRUE(lt.AtInstant(5).val());
  EXPECT_FALSE(lt.AtInstant(6.1).val());
  Periods when = WhenTrue(lt);
  ASSERT_EQ(when.NumIntervals(), 1u);
  EXPECT_NEAR(when.interval(0).start(), 4, 1e-9);
  EXPECT_NEAR(when.interval(0).end(), 6, 1e-9);
  EXPECT_FALSE(when.interval(0).left_closed());
}

TEST(CompareTest, BoundaryBelongsToLe) {
  MovingReal m = *MovingReal::Make({*UReal::Make(TI(0, 10), 0, 1, 0, false)});
  MovingBool le = *Compare(m, 5.0, CmpOp::kLe);
  EXPECT_TRUE(le.AtInstant(5).val());
  MovingBool lt = *Compare(m, 5.0, CmpOp::kLt);
  EXPECT_FALSE(lt.AtInstant(5).val());
  MovingBool eq = *Compare(m, 5.0, CmpOp::kEq);
  EXPECT_TRUE(eq.AtInstant(5).val());
  EXPECT_FALSE(eq.AtInstant(5.01).val());
  MovingBool ne = *Compare(m, 5.0, CmpOp::kNe);
  EXPECT_FALSE(ne.AtInstant(5).val());
  EXPECT_TRUE(ne.AtInstant(6).val());
}

TEST(CompareTest, ConstantUnitWholeInterval) {
  MovingReal m = *MovingReal::Make({*UReal::Constant(TI(0, 10), 3)});
  EXPECT_TRUE(Compare(m, 3.0, CmpOp::kEq)->AtInstant(7).val());
  EXPECT_FALSE(Compare(m, 3.0, CmpOp::kLt)->AtInstant(7).val());
  EXPECT_TRUE(Compare(m, 4.0, CmpOp::kLt)->AtInstant(7).val());
}

TEST(CompareTest, TwoMovingReals) {
  MovingReal a = *MovingReal::Make({*UReal::Make(TI(0, 10), 0, 1, 0, false)});
  MovingReal b = *MovingReal::Make({*UReal::Constant(TI(0, 10), 4)});
  MovingBool lt = *Compare(a, b, CmpOp::kLt);
  EXPECT_TRUE(lt.AtInstant(3).val());
  EXPECT_FALSE(lt.AtInstant(5).val());
  EXPECT_FALSE(lt.AtInstant(4).val());
}

TEST(CompareTest, RootVsRootComparesRadicands) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q1 = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingPoint q2 = LinearMP(0, 10, Point(0, 4), Point(10, 4));  // Dist 4.
  MovingReal d1 = *LiftedDistance(p, q1);
  MovingReal d2 = *LiftedDistance(p, q2);
  MovingBool lt = *Compare(d1, d2, CmpOp::kLt);
  // |10-2t| < 4 ⇔ t ∈ (3, 7).
  EXPECT_FALSE(lt.AtInstant(2).val());
  EXPECT_TRUE(lt.AtInstant(5).val());
  EXPECT_FALSE(lt.AtInstant(8).val());
}

TEST(CompareTest, RootVsNonConstantUnimplemented) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingReal d = *LiftedDistance(p, Point(0, 0));
  MovingReal ramp = *MovingReal::Make({*UReal::Make(TI(0, 10), 0, 1, 0, false)});
  EXPECT_EQ(Compare(d, ramp, CmpOp::kLt).status().code(),
            StatusCode::kUnimplemented);
}

TEST(PlusMinusTest, QuadraticArithmetic) {
  MovingReal a = *MovingReal::Make({*UReal::Make(TI(0, 5), 1, 0, 0, false)});
  MovingReal b = *MovingReal::Make({*UReal::Make(TI(0, 5), 0, 2, 1, false)});
  MovingReal s = *Plus(a, b);
  EXPECT_NEAR(s.AtInstant(2).val(), 4 + 5, 1e-9);
  MovingReal d = *Minus(a, b);
  EXPECT_NEAR(d.AtInstant(2).val(), 4 - 5, 1e-9);
  MovingPoint p = LinearMP(0, 5, Point(0, 0), Point(5, 0));
  MovingReal rooted = *LiftedDistance(p, Point(0, 1));
  EXPECT_EQ(Plus(a, rooted).status().code(), StatusCode::kUnimplemented);
}

TEST(RangeValuesTest, ProjectionOntoRange) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  RealRange r = RangeValues(*LiftedDistance(p, q));
  ASSERT_EQ(r.NumIntervals(), 1u);
  EXPECT_NEAR(r.interval(0).start(), 0, 1e-9);
  EXPECT_NEAR(r.interval(0).end(), 10, 1e-9);
}

// -- trajectory / speed / direction -------------------------------------------

TEST(TrajectoryTest, StraightPathOneSegment) {
  // Two units along the same line merge into one trajectory segment.
  MovingPoint m = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1, true, false), Point(0, 0), Point(1, 1)),
       *UPoint::FromEndpoints(TI(1, 2), Point(1, 1), Point(3, 3))});
  Line t = Trajectory(m);
  ASSERT_EQ(t.NumSegments(), 1u);
  EXPECT_DOUBLE_EQ(t.Length(), std::sqrt(18));
}

TEST(TrajectoryTest, StationaryEpisodesSkipped) {
  MovingPoint m = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1, true, false), Point(0, 0), Point(1, 0)),
       *UPoint::Static(TI(1, 2, true, false), Point(1, 0)),
       *UPoint::FromEndpoints(TI(2, 3), Point(1, 0), Point(1, 5))});
  Line t = Trajectory(m);
  EXPECT_EQ(t.NumSegments(), 2u);
  Points locs = Locations(m);
  ASSERT_EQ(locs.Size(), 1u);
  EXPECT_EQ(locs.point(0), Point(1, 0));
}

TEST(SpeedTest, PiecewiseConstant) {
  MovingPoint m = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1, true, false), Point(0, 0), Point(3, 4)),
       *UPoint::Static(TI(1, 2), Point(3, 4))});
  MovingReal s = *Speed(m);
  EXPECT_NEAR(s.AtInstant(0.5).val(), 5, 1e-9);
  EXPECT_NEAR(s.AtInstant(1.5).val(), 0, 1e-9);
}

TEST(MDirectionTest, HeadingDegrees) {
  MovingPoint m = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 1))});
  MovingReal d = *MDirection(m);
  EXPECT_NEAR(d.AtInstant(0.5).val(), 45, 1e-9);
}

TEST(VelocityTest, ConstantVector) {
  MovingPoint m = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 2), Point(0, 0), Point(4, 2))});
  MovingPoint v = *Velocity(m);
  Intime<Point> at1 = v.AtInstant(1);
  EXPECT_NEAR(at1.val().x, 2, 1e-9);
  EXPECT_NEAR(at1.val().y, 1, 1e-9);
}

// -- passes / at ----------------------------------------------------------------

TEST(PassesTest, HitAndMiss) {
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  EXPECT_TRUE(Passes(m, Point(3, 0)));
  EXPECT_FALSE(Passes(m, Point(3, 1)));
}

TEST(AtPointTest, RestrictsToVisitInstant) {
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint at3 = *At(m, Point(3, 0));
  ASSERT_EQ(at3.NumUnits(), 1u);
  EXPECT_TRUE(at3.unit(0).interval().IsDegenerate());
  EXPECT_DOUBLE_EQ(at3.unit(0).interval().start(), 3);
}

TEST(EqualsTest, MeetingPoints) {
  MovingPoint p = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint q = LinearMP(0, 10, Point(10, 0), Point(0, 0));
  MovingBool eq = *Equals(p, q);
  EXPECT_FALSE(eq.AtInstant(4.9).val());
  EXPECT_TRUE(eq.AtInstant(5).val());
  EXPECT_FALSE(eq.AtInstant(5.1).val());
  // Identical trajectories → true throughout.
  MovingBool same = *Equals(p, p);
  EXPECT_TRUE(same.AtInstant(2).val());
  EXPECT_TRUE(same.AtInstant(9).val());
}

// -- inside (Section 5.2) -------------------------------------------------------

TEST(InsideStaticRegion, CrossThrough) {
  Region r = *Region::FromPolygon(
      {Point(4, -2), Point(8, -2), Point(8, 2), Point(4, 2)});
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingBool in = *Inside(m, r);
  EXPECT_FALSE(in.AtInstant(2).val());
  EXPECT_TRUE(in.AtInstant(6).val());
  EXPECT_FALSE(in.AtInstant(9).val());
  // Entry/exit instants are on the boundary → inside (closed region).
  EXPECT_TRUE(in.AtInstant(4).val());
  EXPECT_TRUE(in.AtInstant(8).val());
  Periods when = WhenTrue(in);
  ASSERT_EQ(when.NumIntervals(), 1u);
  EXPECT_NEAR(when.interval(0).start(), 4, 1e-9);
  EXPECT_NEAR(when.interval(0).end(), 8, 1e-9);
}

TEST(InsideStaticRegion, StartingInside) {
  Region r = *Region::FromPolygon(
      {Point(-2, -2), Point(2, -2), Point(2, 2), Point(-2, 2)});
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingBool in = *Inside(m, r);
  EXPECT_TRUE(in.AtInstant(0).val());
  EXPECT_TRUE(in.AtInstant(2).val());
  EXPECT_FALSE(in.AtInstant(3).val());
}

TEST(InsideStaticRegion, NeverInsideWithBBoxShortcut) {
  Region r = *Region::FromPolygon(
      {Point(100, 100), Point(101, 100), Point(101, 101), Point(100, 101)});
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingBool in = *Inside(m, r);
  ASSERT_EQ(in.NumUnits(), 1u);
  EXPECT_FALSE(in.AtInstant(5).val());
  EXPECT_TRUE(in.Present(0));
}

TEST(InsideStaticRegion, HoleExcluded) {
  Region r = *Region::FromRings(
      {Point(0, -5), Point(10, -5), Point(10, 5), Point(0, 5)},
      {{Point(4, -1), Point(6, -1), Point(6, 1), Point(4, 1)}});
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingBool in = *Inside(m, r);
  EXPECT_TRUE(in.AtInstant(2).val());
  EXPECT_FALSE(in.AtInstant(5).val());  // Inside the hole.
  EXPECT_TRUE(in.AtInstant(8).val());
}

TEST(InsideStaticRegion, MultipleCrossingsAlternate) {
  // Section 5.2: "even a linearly moving point within a single upoint
  // unit can enter and leave the region several times" — two faces.
  std::vector<Seg> segs;
  for (double x0 : {2.0, 6.0}) {
    std::vector<Point> sq = {Point(x0, -1), Point(x0 + 2, -1),
                             Point(x0 + 2, 1), Point(x0, 1)};
    for (int i = 0; i < 4; ++i) {
      segs.push_back(*Seg::Make(sq[std::size_t(i)], sq[std::size_t((i + 1) % 4)]));
    }
  }
  Region r = *RegionBuilder::Close(segs);
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingBool in = *Inside(m, r);
  EXPECT_FALSE(in.AtInstant(1).val());
  EXPECT_TRUE(in.AtInstant(3).val());
  EXPECT_FALSE(in.AtInstant(5).val());
  EXPECT_TRUE(in.AtInstant(7).val());
  EXPECT_FALSE(in.AtInstant(9).val());
  EXPECT_EQ(WhenTrue(in).NumIntervals(), 2u);
}

TEST(InsideMovingRegion, ChasedByRegion) {
  // A square chasing the point from behind: the point starts inside,
  // escapes... actually: region moves right at speed 2, point at speed 1.
  std::mt19937_64 rng(3);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 4;
  opts.shape.jitter = 0;
  opts.shape.radius = 3;
  opts.shape.center = Point(0, 0);
  opts.num_units = 1;
  opts.unit_duration = 10;
  opts.drift = Point(20, 0);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  // Point moving right slowly from the region's center.
  MovingPoint mp = LinearMP(0, 10, Point(0, 0), Point(5, 0));
  MovingBool in = *Inside(mp, mr);
  EXPECT_TRUE(in.AtInstant(0).val());
  // The region's trailing edge (starting at x=-3, speed 2) passes the
  // point (x=t/2·... point x = 0.5t; edge x = -3 + 2t): catch at t=2.
  EXPECT_FALSE(in.AtInstant(4).val());
}

TEST(InsideMovingRegion, OracleAgreement) {
  // Dense-time oracle: inside(mp, mr) at t must equal the plumbline test
  // on the evaluated snapshots.
  std::mt19937_64 rng(11);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 8;
  opts.shape.jitter = 0.2;
  opts.shape.radius = 40;
  opts.shape.center = Point(50, 50);
  opts.num_units = 3;
  opts.unit_duration = 5;
  opts.drift = Point(15, 5);
  opts.drift_alternation = Point(2, 3);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  TrajectoryOptions topts;
  topts.num_units = 15;
  topts.extent = 150;
  topts.max_step = 30;
  MovingPoint mp = *RandomWalkPoint(rng, topts);
  MovingBool in = *Inside(mp, mr);
  int checked = 0;
  for (double t = 0.05; t < 15; t += 0.1) {
    Intime<bool> v = in.AtInstant(t);
    if (!mp.Present(t) || !mr.Present(t)) {
      EXPECT_FALSE(v.defined) << t;
      continue;
    }
    ASSERT_TRUE(v.defined) << t;
    std::size_t ui = *mr.FindUnit(t);
    bool oracle = EvenOddContains(mr.unit(ui).Snapshot(t),
                                  mp.AtInstant(t).val());
    EXPECT_EQ(v.val(), oracle) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

// Seed sweep of the oracle test: many random walk / drifting-region
// configurations, each checked densely against the plumbline.
class InsideOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(InsideOracleSweep, MatchesPlumblineDensely) {
  std::mt19937_64 rng(uint64_t(GetParam()) * 7919 + 13);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 5 + GetParam() % 7;
  opts.shape.jitter = 0.3;
  opts.shape.radius = 25 + GetParam();
  opts.shape.center = Point(40, 40);
  opts.num_units = 2 + GetParam() % 3;
  opts.unit_duration = 5;
  opts.drift = Point(10.0 + GetParam(), 5.0 - GetParam() % 11);
  opts.drift_alternation = Point(1 + GetParam() % 3, 2);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  TrajectoryOptions topts;
  topts.num_units = 12;
  topts.unit_duration = double(opts.num_units) * opts.unit_duration / 12;
  topts.extent = 140;
  topts.max_step = 35;
  MovingPoint mp = *RandomWalkPoint(rng, topts);
  MovingBool in = *Inside(mp, mr);
  double t_end = double(opts.num_units) * opts.unit_duration;
  for (double t = 0.013; t < t_end; t += 0.083) {
    if (!mp.Present(t) || !mr.Present(t)) continue;
    bool oracle = EvenOddContains(mr.unit(*mr.FindUnit(t)).Snapshot(t),
                                  mp.AtInstant(t).val());
    ASSERT_TRUE(in.AtInstant(t).defined) << t;
    EXPECT_EQ(in.AtInstant(t).val(), oracle) << "seed=" << GetParam()
                                             << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InsideOracleSweep, ::testing::Range(0, 12));

TEST(AtRegionTest, RestrictionMatchesWhenTrue) {
  Region r = *Region::FromPolygon(
      {Point(4, -2), Point(8, -2), Point(8, 2), Point(4, 2)});
  MovingPoint m = LinearMP(0, 10, Point(0, 0), Point(10, 0));
  MovingPoint inside_part = *At(m, r);
  EXPECT_FALSE(inside_part.Present(2));
  EXPECT_TRUE(inside_part.Present(5));
  EXPECT_NEAR(inside_part.AtInstant(5).val().x, 5, 1e-9);
  EXPECT_NEAR(Trajectory(inside_part).Length(), 4, 1e-6);
}

}  // namespace
}  // namespace modb
