#include "temporal/upoints.h"

#include <gtest/gtest.h>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

TEST(Coincidence, ParallelDistinctNever) {
  CoincidenceResult c =
      Coincidence(LinearMotion{0, 1, 0, 0}, LinearMotion{0, 1, 1, 0});
  EXPECT_FALSE(c.always);
  EXPECT_TRUE(c.instants.empty());
}

TEST(Coincidence, IdenticalAlways) {
  LinearMotion m{1, 2, 3, 4};
  CoincidenceResult c = Coincidence(m, m);
  EXPECT_TRUE(c.always);
}

TEST(Coincidence, CrossingOnce) {
  // One point moving right, one moving left, meeting at t=5, x=5.
  CoincidenceResult c =
      Coincidence(LinearMotion{0, 1, 0, 0}, LinearMotion{10, -1, 0, 0});
  ASSERT_EQ(c.instants.size(), 1u);
  EXPECT_DOUBLE_EQ(c.instants[0], 5);
}

TEST(Coincidence, SameLineDifferentSpeeds) {
  // Both on the x axis; faster one catches up at t=4.
  CoincidenceResult c =
      Coincidence(LinearMotion{0, 2, 0, 0}, LinearMotion{4, 1, 0, 0});
  ASSERT_EQ(c.instants.size(), 1u);
  EXPECT_DOUBLE_EQ(c.instants[0], 4);
}

TEST(Coincidence, XMeetsButYDoesNot) {
  CoincidenceResult c =
      Coincidence(LinearMotion{0, 1, 0, 0}, LinearMotion{10, -1, 1, 0});
  EXPECT_TRUE(c.instants.empty());
}

TEST(UPointsMake, RejectsEmptyAndDuplicates) {
  EXPECT_FALSE(UPoints::Make(TI(0, 1), {}).ok());
  LinearMotion m{1, 0, 1, 0};
  EXPECT_FALSE(UPoints::Make(TI(0, 1), {m, m}).ok());
}

TEST(UPointsMake, RejectsCoincidenceInsideOpenInterval) {
  // Meet at t=5.
  EXPECT_FALSE(UPoints::Make(TI(0, 10), {LinearMotion{0, 1, 0, 0},
                                         LinearMotion{10, -1, 0, 0}})
                   .ok());
}

TEST(UPointsMake, CoincidenceAtEndpointAllowed) {
  // Meet exactly at t=5 — allowed if 5 is an interval endpoint (the paper
  // permits collapse at the ends).
  EXPECT_TRUE(UPoints::Make(TI(0, 5), {LinearMotion{0, 1, 0, 0},
                                       LinearMotion{10, -1, 0, 0}})
                  .ok());
  EXPECT_TRUE(UPoints::Make(TI(5, 10), {LinearMotion{0, 1, 0, 0},
                                        LinearMotion{10, -1, 0, 0}})
                  .ok());
}

TEST(UPointsMake, InstantUnitRequiresDistinctNow) {
  EXPECT_FALSE(UPoints::Make(TimeInterval::At(5),
                             {LinearMotion{0, 1, 0, 0},
                              LinearMotion{10, -1, 0, 0}})
                   .ok());
  EXPECT_TRUE(UPoints::Make(TimeInterval::At(4),
                            {LinearMotion{0, 1, 0, 0},
                             LinearMotion{10, -1, 0, 0}})
                  .ok());
}

TEST(UPointsValueAt, EvaluatesAllMotions) {
  UPoints u = *UPoints::Make(
      TI(0, 10), {LinearMotion{0, 1, 0, 0}, LinearMotion{0, 0, 5, 0}});
  Points p = u.ValueAt(2);
  ASSERT_EQ(p.Size(), 2u);
  EXPECT_TRUE(p.Contains(Point(2, 0)));
  EXPECT_TRUE(p.Contains(Point(0, 5)));
}

TEST(UPointsValueAt, EndpointCollapseCleansUp) {
  UPoints u = *UPoints::Make(
      TI(0, 5), {LinearMotion{0, 1, 0, 0}, LinearMotion{10, -1, 0, 0}});
  // At the right endpoint both motions land on (5, 0): one point remains.
  EXPECT_EQ(u.ValueAt(5).Size(), 1u);
  EXPECT_EQ(u.ValueAt(4).Size(), 2u);
}

TEST(UPointsStorage, MotionsSortedLexicographically) {
  UPoints u = *UPoints::Make(
      TI(0, 1), {LinearMotion{5, 0, 0, 0}, LinearMotion{1, 0, 0, 0}});
  EXPECT_TRUE(u.motions()[0] < u.motions()[1]);
}

TEST(UPointsBoundingCube, CoversAllMotionEndpoints) {
  UPoints u = *UPoints::Make(
      TI(0, 10), {LinearMotion{0, 1, 0, 0}, LinearMotion{0, 0, 5, 0}});
  Cube c = u.BoundingCube();
  EXPECT_EQ(c.rect.max_x, 10);
  EXPECT_EQ(c.rect.max_y, 5);
}

}  // namespace
}  // namespace modb
