// End-to-end behavior of the sliced moving *spatial* types at the mapping
// level: multi-unit moving lines / regions / point sets through
// atinstant, atperiods, deftime, initial/final — Table 3's discrete
// representations exercised through the generic temporal interface.

#include <gtest/gtest.h>

#include <random>

#include "gen/region_gen.h"
#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

MovingLine TwoUnitFront() {
  // A "front" sweeping up during [0,10), then right during [10,20].
  MSeg up = *MSeg::FromEndSegments(0, S(0, 0, 10, 0), 10, S(0, 5, 10, 5));
  MSeg right = *MSeg::FromEndSegments(10, S(0, 5, 10, 5), 20, S(4, 5, 14, 5));
  return *MovingLine::Make({*ULine::Make(TI(0, 10, true, false), {up}),
                            *ULine::Make(TI(10, 20), {right})});
}

TEST(MovingLineMapping, AtInstantAcrossUnits) {
  MovingLine ml = TwoUnitFront();
  EXPECT_EQ(ml.NumUnits(), 2u);
  Intime<Line> at5 = ml.AtInstant(5);
  ASSERT_TRUE(at5.defined);
  EXPECT_TRUE(ApproxEqual(at5.val().segment(0).a(), Point(0, 2.5)));
  Intime<Line> at15 = ml.AtInstant(15);
  ASSERT_TRUE(at15.defined);
  EXPECT_TRUE(ApproxEqual(at15.val().segment(0).a(), Point(2, 5)));
  EXPECT_FALSE(ml.AtInstant(25).defined);
}

TEST(MovingLineMapping, ContinuityAtUnitBoundary) {
  MovingLine ml = TwoUnitFront();
  Line before = ml.AtInstant(10 - 1e-9).val();
  Line at = ml.AtInstant(10).val();
  EXPECT_TRUE(ApproxEqual(before.segment(0).a(), at.segment(0).a(), 1e-6));
}

TEST(MovingLineMapping, AtPeriodsSlices) {
  MovingLine ml = TwoUnitFront();
  auto r = ml.AtPeriods(Periods::FromIntervals({TI(3, 12)}));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumUnits(), 2u);
  EXPECT_DOUBLE_EQ(r->DefTime().Minimum(), 3);
  EXPECT_DOUBLE_EQ(r->DefTime().Maximum(), 12);
  EXPECT_FALSE(r->Present(2));
  EXPECT_TRUE(r->Present(11));
}

TEST(MovingLineMapping, InitialFinal) {
  MovingLine ml = TwoUnitFront();
  Intime<Line> init = ml.Initial();
  ASSERT_TRUE(init.defined);
  EXPECT_DOUBLE_EQ(init.inst(), 0);
  EXPECT_EQ(init.val().segment(0), S(0, 0, 10, 0));
  Intime<Line> fin = ml.Final();
  EXPECT_DOUBLE_EQ(fin.inst(), 20);
  EXPECT_EQ(fin.val().segment(0), S(4, 5, 14, 5));
}

TEST(MovingRegionMapping, AtInstantMatchesUnitValueAt) {
  std::mt19937_64 rng(6);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 8;
  opts.shape.radius = 20;
  opts.num_units = 3;
  opts.unit_duration = 4;
  opts.drift = Point(6, 2);
  opts.drift_alternation = Point(1, 1);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  for (double t = 0.3; t < 12; t += 0.9) {
    Intime<Region> v = mr.AtInstant(t);
    ASSERT_TRUE(v.defined) << t;
    std::size_t ui = *mr.FindUnit(t);
    EXPECT_NEAR(v.val().Area(), mr.unit(ui).ValueAt(t).Area(), 1e-9) << t;
  }
}

TEST(MovingRegionMapping, SnapshotOutputOnlyPathAgrees) {
  std::mt19937_64 rng(7);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 10;
  opts.shape.radius = 15;
  opts.num_units = 2;
  opts.unit_duration = 5;
  opts.drift = Point(4, 4);
  opts.drift_alternation = Point(1, 1);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  // The O(r) snapshot and the O(r log r) structured value describe the
  // same point set (probe with the plumbline).
  std::uniform_real_distribution<double> probe(-30, 60);
  for (int i = 0; i < 50; ++i) {
    double t = 0.2 + (10 - 0.4) * i / 50.0;
    std::size_t ui = *mr.FindUnit(t);
    std::vector<Seg> snap = mr.unit(ui).Snapshot(t);
    Region full = mr.unit(ui).ValueAt(t);
    Point p(probe(rng), probe(rng));
    bool on_boundary = false;
    bool via_snapshot = EvenOddContains(snap, p, &on_boundary);
    EXPECT_EQ(full.Contains(p), via_snapshot) << "t=" << t;
  }
}

TEST(MovingPointsMapping, GroupMotion) {
  // A flock of three points translating together, two units.
  std::vector<LinearMotion> flock1 = {{0, 1, 0, 0}, {2, 1, 0, 0},
                                      {1, 1, 2, 0}};
  // Continuation: same positions at t=10, then rising (absolute-time
  // coefficients, so y0 = -10 puts y(10) = 0).
  std::vector<LinearMotion> flock2 = {{10, 0, -10, 1}, {12, 0, -10, 1},
                                      {11, 0, -8, 1}};
  MovingPoints mps = *MovingPoints::Make(
      {*UPoints::Make(TI(0, 10, true, false), flock1),
       *UPoints::Make(TI(10, 20), flock2)});
  Intime<Points> at5 = mps.AtInstant(5);
  ASSERT_TRUE(at5.defined);
  EXPECT_EQ(at5.val().Size(), 3u);
  EXPECT_TRUE(at5.val().Contains(Point(5, 0)));
  Intime<Points> at15 = mps.AtInstant(15);
  EXPECT_TRUE(at15.val().Contains(Point(10, 5)));
  // Restriction.
  auto r = mps.AtPeriods(Periods::FromIntervals({TI(8, 12)}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumUnits(), 2u);
  EXPECT_EQ(r->TotalDuration(), 4);
}

TEST(SteppedRegionMapping, DiscreteStepsViaConstUnits) {
  // A land parcel re-surveyed at t=10: const(region) units (Section
  // 3.2.5's "values changing only in discrete steps").
  Region before = *Region::FromPolygon(
      {Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
  Region after = *Region::FromPolygon(
      {Point(0, 0), Point(6, 0), Point(6, 4), Point(0, 4)});
  SteppedRegion parcel = *SteppedRegion::Make(
      {*ConstUnit<Region>::Make(TI(0, 10, true, false), before),
       *ConstUnit<Region>::Make(TI(10, 20), after)});
  EXPECT_DOUBLE_EQ(parcel.AtInstant(5).val().Area(), 16);
  EXPECT_DOUBLE_EQ(parcel.AtInstant(10).val().Area(), 24);
  // Adjacent units with EQUAL region values are rejected (minimality).
  EXPECT_FALSE(SteppedRegion::Make(
                   {*ConstUnit<Region>::Make(TI(0, 10, true, false), before),
                    *ConstUnit<Region>::Make(TI(10, 20), before)})
                   .ok());
}

TEST(MovingRegionMapping, RejectsOverlappingUnits) {
  std::mt19937_64 rng(8);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 6;
  opts.num_units = 1;
  opts.unit_duration = 10;
  MovingRegion a = *GenerateMovingRegion(rng, opts);
  URegion u = a.unit(0);
  EXPECT_FALSE(MovingRegion::Make({u, u}).ok());
}

}  // namespace
}  // namespace modb
