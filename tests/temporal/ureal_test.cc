#include "temporal/ureal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

TEST(QuadraticRoots, TwoRoots) {
  std::vector<double> r = QuadraticRoots(1, -3, 2);  // t² - 3t + 2.
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 1);
  EXPECT_DOUBLE_EQ(r[1], 2);
}

TEST(QuadraticRoots, DoubleRoot) {
  std::vector<double> r = QuadraticRoots(1, -2, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 1);
}

TEST(QuadraticRoots, NoRealRoots) {
  EXPECT_TRUE(QuadraticRoots(1, 0, 1).empty());
}

TEST(QuadraticRoots, LinearAndConstant) {
  std::vector<double> r = QuadraticRoots(0, 2, -4);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 2);
  EXPECT_TRUE(QuadraticRoots(0, 0, 5).empty());
  EXPECT_TRUE(QuadraticRoots(0, 0, 0).empty());  // Identically zero.
}

TEST(QuadraticRoots, NumericallyStableForSmallQ) {
  // b large relative to a·c: the naive formula loses the small root.
  std::vector<double> r = QuadraticRoots(1, -1e8, 1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0] * r[1], 1, 1e-6);  // Vieta.
}

TEST(URealMake, PlainQuadraticAlwaysOk) {
  EXPECT_TRUE(UReal::Make(TI(0, 10), -1, 0, 0, false).ok());
}

TEST(URealMake, RootRequiresNonNegativeRadicand) {
  // t² - 4 is negative on (−2, 2): invalid over [0, 10]? At t=0 → -4 < 0.
  EXPECT_FALSE(UReal::Make(TI(0, 10), 1, 0, -4, true).ok());
  // Valid on [2, 10].
  EXPECT_TRUE(UReal::Make(TI(2, 10), 1, 0, -4, true).ok());
  // Vertex dips negative inside the interval: t² - 10t + 24 < 0 on (4, 6).
  EXPECT_FALSE(UReal::Make(TI(0, 10), 1, -10, 24, true).ok());
}

TEST(URealValue, QuadraticEvaluation) {
  UReal u = *UReal::Make(TI(0, 10), 2, -3, 1, false);
  EXPECT_DOUBLE_EQ(u.ValueAt(0), 1);
  EXPECT_DOUBLE_EQ(u.ValueAt(2), 2 * 4 - 6 + 1);
}

TEST(URealValue, RootEvaluation) {
  UReal u = *UReal::Make(TI(0, 10), 1, 0, 0, true);  // √(t²) = |t| = t.
  EXPECT_DOUBLE_EQ(u.ValueAt(3), 3);
  EXPECT_DOUBLE_EQ(u.ValueAt(0), 0);
}

TEST(URealExtrema, InteriorVertexMinimum) {
  // (t-5)² + 1 on [0, 10]: min 1 at 5, max 26 at 0 and 10.
  UReal u = *UReal::Make(TI(0, 10), 1, -10, 26, false);
  URealExtrema ex = u.Extrema();
  EXPECT_DOUBLE_EQ(ex.min_value, 1);
  EXPECT_DOUBLE_EQ(ex.min_at, 5);
  EXPECT_DOUBLE_EQ(ex.max_value, 26);
}

TEST(URealExtrema, MonotoneOnInterval) {
  UReal u = *UReal::Make(TI(0, 2), 0, 3, 1, false);  // 3t + 1.
  URealExtrema ex = u.Extrema();
  EXPECT_DOUBLE_EQ(ex.min_value, 1);
  EXPECT_DOUBLE_EQ(ex.min_at, 0);
  EXPECT_DOUBLE_EQ(ex.max_value, 7);
  EXPECT_DOUBLE_EQ(ex.max_at, 2);
}

TEST(URealExtrema, RootCaseVertex) {
  // √((t-5)² + 9): min 3 at t=5.
  UReal u = *UReal::Make(TI(0, 10), 1, -10, 34, true);
  URealExtrema ex = u.Extrema();
  EXPECT_DOUBLE_EQ(ex.min_value, 3);
  EXPECT_DOUBLE_EQ(ex.min_at, 5);
}

TEST(URealInstantsAtValue, QuadraticCrossings) {
  UReal u = *UReal::Make(TI(0, 10), 1, -10, 26, false);  // (t-5)² + 1.
  std::vector<Instant> at2 = u.InstantsAtValue(2);       // (t-5)² = 1.
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_DOUBLE_EQ(at2[0], 4);
  EXPECT_DOUBLE_EQ(at2[1], 6);
  // Outside the interval → filtered.
  UReal narrow = *UReal::Make(TI(0, 4.5), 1, -10, 26, false);
  EXPECT_EQ(narrow.InstantsAtValue(2).size(), 1u);
}

TEST(URealInstantsAtValue, RootCaseSquaresTheTarget) {
  UReal u = *UReal::Make(TI(0, 10), 1, 0, 0, true);  // √(t²) = t.
  std::vector<Instant> at3 = u.InstantsAtValue(3);
  ASSERT_EQ(at3.size(), 1u);
  EXPECT_DOUBLE_EQ(at3[0], 3);
  EXPECT_TRUE(u.InstantsAtValue(-1).empty());  // √ can't be negative.
}

TEST(URealEqualsEverywhere, ConstantDetection) {
  EXPECT_TRUE(UReal::Constant(TI(0, 1), 5)->EqualsEverywhere(5));
  EXPECT_FALSE(UReal::Constant(TI(0, 1), 5)->EqualsEverywhere(4));
  EXPECT_FALSE(UReal::Make(TI(0, 1), 0, 1, 5, false)->EqualsEverywhere(5));
  // Root constant: √(25) = 5.
  EXPECT_TRUE(UReal::Make(TI(0, 1), 0, 0, 25, true)->EqualsEverywhere(5));
}

TEST(URealFunctionEqual, ComparesRepresentation) {
  UReal a = *UReal::Make(TI(0, 1), 1, 2, 3, false);
  UReal b = *UReal::Make(TI(5, 6), 1, 2, 3, false);
  UReal c = *UReal::Make(TI(0, 1), 1, 2, 3, true);
  EXPECT_TRUE(UReal::FunctionEqual(a, b));  // Interval irrelevant.
  EXPECT_FALSE(UReal::FunctionEqual(a, c));
}

TEST(URealWithInterval, RestrictsAndRevalidates) {
  UReal u = *UReal::Make(TI(2, 10), 1, 0, -4, true);
  EXPECT_TRUE(u.WithInterval(TI(3, 4)).ok());
  // Widening into the invalid zone fails.
  EXPECT_FALSE(u.WithInterval(TI(0, 10)).ok());
}

}  // namespace
}  // namespace modb
