#include "storage/recovery.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/range_set.h"
#include "storage/fault.h"
#include "storage/spill.h"
#include "validate/validate.h"

namespace modb {
namespace {

VersionedSpillStore::Options FastOptions() {
  VersionedSpillStore::Options o;
  o.pool_capacity = 8;
  o.retry.base_delay_micros = 0;
  return o;
}

std::string Blob(std::size_t n, unsigned seed) {
  std::string b(n, '\0');
  for (std::size_t i = 0; i < n; ++i) b[i] = char((seed + i * 131u) & 0xffu);
  return b;
}

Result<MovingInt> SomeMovingInt() {
  std::vector<UInt> units;
  for (int i = 0; i < 3; ++i) {
    auto iv = TimeInterval::Make(i * 2.0, i * 2.0 + 1.0, true, false);
    if (!iv.ok()) return iv.status();
    auto u = UInt::Make(*iv, 10 + i);
    if (!u.ok()) return u.status();
    units.push_back(*u);
  }
  return MovingInt::Make(std::move(units));
}

/// A Region whose stored halfsegment array breaks the ROSE order — the
/// trusted FromParts path accepts it; only the validator can object.
Result<Region> BrokenRegion() {
  Result<Region> good = Region::FromPolygon(
      {Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
  if (!good.ok()) return good.status();
  std::vector<HalfSegment> hs = good->halfsegments();
  std::swap(hs.front(), hs.back());
  return Region::FromParts(hs, good->cycles(), good->faces(), good->Area(),
                           good->Perimeter(), good->BoundingBox());
}

/// Post-recovery liveness: the store must still accept a fresh commit.
bool StoreCommittable(VersionedSpillStore* store) {
  auto idx = store->StageBlob("liveness", SpillValueType::kOpaque);
  return idx.ok() && store->Commit().ok() && store->VerifyAccounting().ok();
}

TEST(VersionedSpillStore, CreateOpenRoundTrip) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_rt.bin";
  auto store = VersionedSpillStore::Create(path, FastOptions());
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->epoch(), 0u);
  EXPECT_EQ(store->NumRoots(), 0u);

  const std::string opaque = Blob(9000, 1);
  auto i0 = store->StageBlob(opaque, SpillValueType::kOpaque);
  ASSERT_TRUE(i0.ok());
  auto mi = SomeMovingInt();
  ASSERT_TRUE(mi.ok());
  auto i1 = store->StageValue(*mi);
  ASSERT_TRUE(i1.ok());
  // Staged state is invisible until Commit.
  EXPECT_EQ(store->NumRoots(), 0u);
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->epoch(), 1u);
  ASSERT_EQ(store->NumRoots(), 2u);
  EXPECT_TRUE(store->VerifyAccounting().ok());

  auto reopened = VersionedSpillStore::Open(path, FastOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 1u);
  ASSERT_EQ(reopened->NumRoots(), 2u);
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, opaque);
  auto loaded = reopened->LoadRoot<MovingInt>(1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->units().size(), mi->units().size());
  EXPECT_TRUE(reopened->VerifyAccounting().ok());
  EXPECT_EQ(reopened->recovery_info().epoch, 1u);
  EXPECT_EQ(reopened->recovery_info().roots_rejected, 0u);
}

TEST(VersionedSpillStore, CommittedBytesUntouchedWhileStaging) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_shadow.bin";
  auto store = VersionedSpillStore::Create(path, FastOptions());
  ASSERT_TRUE(store.ok());
  const std::string v1 = Blob(5000, 1);
  const std::string v2 = Blob(6000, 2);
  ASSERT_TRUE(store->StageBlob(v1, SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  // Restage a new version: the committed root must keep serving the old
  // bytes until the commit point — shadow pages only.
  ASSERT_TRUE(store->RestageBlob(0, v2, SpillValueType::kOpaque).ok());
  auto before = store->ReadRootBlob(0);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, v1);
  ASSERT_TRUE(store->Commit().ok());
  auto after = store->ReadRootBlob(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, v2);
  EXPECT_TRUE(store->VerifyAccounting().ok());
}

TEST(VersionedSpillStore, ReplacedPagesAreReusedNotLeaked) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_reuse.bin";
  auto store = VersionedSpillStore::Create(path, FastOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->StageBlob(Blob(9000, 0), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  // Alternating same-size rewrites must ping-pong between the value's
  // pages and its shadow copy; the device stops growing.
  for (unsigned gen = 1; gen <= 2; ++gen) {
    ASSERT_TRUE(
        store->RestageBlob(0, Blob(9000, gen), SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
  }
  const std::size_t pages_after_warmup = store->NumDevicePages();
  for (unsigned gen = 3; gen <= 8; ++gen) {
    ASSERT_TRUE(
        store->RestageBlob(0, Blob(9000, gen), SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
    EXPECT_TRUE(store->VerifyAccounting().ok());
  }
  EXPECT_EQ(store->NumDevicePages(), pages_after_warmup);
  auto final = store->ReadRootBlob(0);
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(*final, Blob(9000, 8));
}

TEST(VersionedSpillStore, TornRootRecordFallsBackToPreviousEpoch) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_torn.bin";
  const std::string v1 = Blob(3000, 1);
  {
    auto store = VersionedSpillStore::Create(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->StageBlob(v1, SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());  // epoch 1, slot 1
  }
  // Simulate a commit of epoch 2 crashing mid-root-write: garbage lands
  // in slot 0 (over the old epoch-0 record).
  {
    auto dev = FilePageDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    char junk[kPageSize];
    for (std::size_t i = 0; i < kPageSize; ++i) junk[i] = char(i * 7 + 1);
    ASSERT_TRUE(dev->WritePage(kRootSlotPages[0], junk).ok());
  }
  auto reopened = VersionedSpillStore::Open(path, FastOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 1u);
  EXPECT_EQ(reopened->recovery_info().roots_rejected, 1u);
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, v1);
  // And the store must be able to commit over the junk slot.
  ASSERT_TRUE(StoreCommittable(&*reopened));
}

TEST(VersionedSpillStore, ValidationRejectsStructurallyBrokenRoot) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_invalid.bin";
  auto broken = BrokenRegion();
  ASSERT_TRUE(broken.ok()) << broken.status();
  {
    auto store = VersionedSpillStore::Create(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->StageValue(*broken).ok());
    ASSERT_TRUE(store->Commit().ok());  // epoch 1: checksummed but invalid
  }
  // With validation on (the default), recovery refuses to serve the
  // broken epoch and falls back to the intact empty epoch 0.
  auto validated = VersionedSpillStore::Open(path, FastOptions());
  ASSERT_TRUE(validated.ok()) << validated.status();
  EXPECT_EQ(validated->epoch(), 0u);
  EXPECT_EQ(validated->NumRoots(), 0u);
  EXPECT_GE(validated->recovery_info().roots_rejected, 1u);
  // With validation off, CRC trust alone accepts the bytes — which is
  // exactly why the validated path is the default.
  VersionedSpillStore::Options trusting = FastOptions();
  trusting.validate_on_open = false;
  auto unvalidated = VersionedSpillStore::Open(path, trusting);
  ASSERT_TRUE(unvalidated.ok());
  EXPECT_EQ(unvalidated->epoch(), 1u);
}

TEST(SpilledLoadValidated, RejectsValueTheDecoderTrusts) {
  auto broken = BrokenRegion();
  ASSERT_TRUE(broken.ok());
  PageStore device;
  auto spilled = Spilled<Region>::Spill(*broken, &device);
  ASSERT_TRUE(spilled.ok());
  BufferPool pool(&device, 8);
  // The plain decode path accepts the bytes (FromParts only
  // bounds-checks)...
  auto plain = spilled->Load(&pool);
  EXPECT_TRUE(plain.ok());
  spilled->Release();
  // ...LoadValidated does not, and must not cache the rejected value.
  auto checked = spilled->LoadValidated(
      &pool, [](const Region& r) { return validate::ValidateRegion(r); });
  ASSERT_FALSE(checked.ok());
  EXPECT_FALSE(spilled->IsLoaded());
}

TEST(VersionedSpillStore, TransientReadFaultsAbsorbedByRetry) {
  if (!kFaultsEnabled) GTEST_SKIP() << "faults compiled out";
  const std::string path = ::testing::TempDir() + "/modb_recovery_retry.bin";
  const std::string payload = Blob(9000, 9);
  {
    auto store = VersionedSpillStore::Create(path, FastOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->StageBlob(payload, SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
  }
  FaultInjector::Global().Disarm();
  FaultInjector::Global().FailNth(FaultOp::kRead, 2);
  auto reopened = VersionedSpillStore::Open(path, FastOptions());
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, payload);
}

TEST(VersionedSpillStore, AbandonDropsUnflushedStagingBytes) {
  const std::string path = ::testing::TempDir() + "/modb_recovery_abandon.bin";
  const std::string v1 = Blob(2000, 1);
  auto store = VersionedSpillStore::Create(path, FastOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->StageBlob(v1, SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());
  ASSERT_TRUE(store->RestageBlob(0, Blob(2000, 2),
                                 SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Abandon().ok());
  EXPECT_FALSE(store->Commit().ok());

  auto reopened = VersionedSpillStore::Open(path, FastOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->epoch(), 1u);
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, v1);
}

}  // namespace
}  // namespace modb
