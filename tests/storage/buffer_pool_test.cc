#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "db/parallel.h"
#include "storage/fault.h"
#include "storage/mmap_device.h"
#include "storage/page_store.h"

namespace modb {
namespace {

// A device with `n` pages where page i is filled with the byte 'a' + i.
PageStore MakeDevice(int n) {
  PageStore store;
  for (int i = 0; i < n; ++i) {
    store.Write(std::string(kPageSize, char('a' + i)));
  }
  return store;
}

TEST(BufferPoolTest, MissThenHit) {
  PageStore store = MakeDevice(3);
  BufferPool pool(&store, 2);
  {
    auto ref = pool.Pin(1);
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_EQ(ref->page_id(), 1u);
    EXPECT_EQ(ref->data()[0], 'b');
    EXPECT_EQ(ref->data()[kPageSize - 1], 'b');
  }
  auto again = pool.Pin(1);
  ASSERT_TRUE(again.ok());
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BufferPoolTest, EvictionFollowsLruOrder) {
  PageStore store = MakeDevice(5);
  BufferPool pool(&store, 3);
  // Touch 0, 1, 2 (in that order), then re-touch 0 so 1 becomes LRU.
  for (uint32_t p : {0u, 1u, 2u, 0u}) {
    ASSERT_TRUE(pool.Pin(p).ok());
  }
  EXPECT_EQ(pool.NumResident(), 3u);

  // Faulting in 3 must evict 1 (the least recently used), not 0 or 2.
  ASSERT_TRUE(pool.Pin(3).ok());
  EXPECT_FALSE(pool.IsResident(1));
  EXPECT_TRUE(pool.IsResident(0));
  EXPECT_TRUE(pool.IsResident(2));
  EXPECT_TRUE(pool.IsResident(3));

  // Next victim is 2: LRU order is now 2 < 0 < 3.
  ASSERT_TRUE(pool.Pin(4).ok());
  EXPECT_FALSE(pool.IsResident(2));
  EXPECT_TRUE(pool.IsResident(0));
  EXPECT_EQ(pool.stats().evictions, 2u);
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  PageStore store = MakeDevice(3);
  BufferPool pool(&store, 1);
  auto held = pool.Pin(0);
  ASSERT_TRUE(held.ok());
  // The only frame is pinned: faulting another page must fail cleanly.
  auto blocked = pool.Pin(1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  // The held ref stays valid and the page resident.
  EXPECT_EQ(held->data()[0], 'a');
  EXPECT_TRUE(pool.IsResident(0));
  held->Release();
  EXPECT_TRUE(pool.Pin(1).ok());
}

TEST(BufferPoolTest, DirtyPagesWriteBackOnEviction) {
  PageStore store = MakeDevice(2);
  BufferPool pool(&store, 1);
  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    std::memset(ref->mutable_data(), 'Z', 8);
  }
  ASSERT_TRUE(pool.Pin(1).ok());  // evicts dirty page 0 -> writeback
  EXPECT_EQ(pool.stats().writebacks, 1u);

  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(0, page).ok());
  EXPECT_EQ(std::string(page, 8), std::string(8, 'Z'));
  EXPECT_EQ(page[8], 'a');  // untouched tail kept its bytes

  // Re-reading through the pool sees the written-back content.
  auto back = pool.Pin(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data()[0], 'Z');
}

TEST(BufferPoolTest, FlushAllPersistsWithoutEvicting) {
  PageStore store = MakeDevice(2);
  BufferPool pool(&store, 2);
  {
    auto ref = pool.Pin(1);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[0] = 'Q';
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(pool.IsResident(1));
  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(1, page).ok());
  EXPECT_EQ(page[0], 'Q');
  // A second flush has nothing dirty to write.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().writebacks, 1u);
}

TEST(BufferPoolTest, DropAllEvictsEverythingAndRefusesPins) {
  PageStore store = MakeDevice(4);
  BufferPool pool(&store, 4);
  for (uint32_t p = 0; p < 4; ++p) ASSERT_TRUE(pool.Pin(p).ok());
  {
    auto held = pool.Pin(2);
    ASSERT_TRUE(held.ok());
    EXPECT_EQ(pool.DropAll().code(), StatusCode::kFailedPrecondition);
  }
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.NumResident(), 0u);
  // Next access is a miss again.
  std::uint64_t misses = pool.stats().misses;
  ASSERT_TRUE(pool.Pin(0).ok());
  EXPECT_EQ(pool.stats().misses, misses + 1);
}

TEST(BufferPoolTest, ExtentContentByteIdenticalThroughPool) {
  PageStore store;
  std::string payload;
  for (int i = 0; i < int(kPageSize * 2 + 123); ++i) {
    payload.push_back(char('A' + i % 26));
  }
  PageExtent extent = store.Write(payload);
  BufferPool pool(&store, 2);
  std::string through_pool;
  std::size_t remaining = extent.num_bytes;
  for (uint32_t i = 0; i < extent.num_pages; ++i) {
    auto ref = pool.Pin(extent.first_page + i);
    ASSERT_TRUE(ref.ok());
    std::size_t len = std::min(kPageSize, remaining);
    through_pool.append(ref->data(), len);
    remaining -= len;
  }
  EXPECT_EQ(through_pool, payload);
}

TEST(BufferPoolTest, PinCountsStayCorrectUnderParallelFor) {
  const int kPages = 8;
  const std::size_t kChunks = 8;
  const int kRoundsPerChunk = 200;
  PageStore store = MakeDevice(kPages);
  // 4 worker threads over 4 frames: pins and evictions race constantly,
  // but with at most one pin held per thread the pool can always make
  // progress.
  ThreadPool workers(4);
  BufferPool pool(&store, 4);
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> pins{0};
  ParallelFor(workers, kChunks, kChunks,
              [&](std::size_t chunk, std::size_t, std::size_t) {
                for (int r = 0; r < kRoundsPerChunk; ++r) {
                  uint32_t page = uint32_t((chunk * 31 + r) % kPages);
                  auto ref = pool.Pin(page);
                  if (!ref.ok()) {
                    ++failures;
                    continue;
                  }
                  ++pins;
                  if (ref->data()[0] != char('a' + page)) ++failures;
                }
              });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.NumPinned(), 0u);  // every RAII ref released its pin
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, pins.load());
  EXPECT_EQ(stats.read_errors, 0u);
  // All frames still usable afterwards: pin everything once more.
  for (uint32_t p = 0; p < 4; ++p) ASSERT_TRUE(pool.Pin(p).ok());
}

TEST(BufferPoolTest, ParallelWritebackFailureNeverLosesDirtyBytes) {
  if (!kFaultsEnabled) GTEST_SKIP() << "built without MODB_FAULTS";
  FaultInjector::Global().Disarm();
  PageStore store = MakeDevice(8);
  BufferPool pool(&store, 4);
  // Dirty page 0, then arm one write fault: the first eviction that
  // picks page 0 as victim fails its writeback mid-ParallelFor.
  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[0] = 'D';
  }
  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);

  std::atomic<int> injected_failures{0};
  std::atomic<int> other_failures{0};
  ThreadPool workers(4);
  ParallelFor(workers, 64, 8,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  auto ref = pool.Pin(std::uint32_t(1 + (i % 7)));
                  if (!ref.ok()) {
                    if (ref.status().code() == StatusCode::kInternal) {
                      ++injected_failures;
                    } else {
                      ++other_failures;
                    }
                    continue;
                  }
                  EXPECT_EQ(ref->data()[0], char('a' + 1 + (i % 7)));
                }
              });
  FaultInjector::Global().Disarm();

  // The one-shot plan surfaced to exactly one pin; every other
  // concurrent pin succeeded, and all RAII pins were released.
  EXPECT_EQ(injected_failures.load(), 1);
  EXPECT_EQ(other_failures.load(), 0);
  EXPECT_EQ(pool.NumPinned(), 0u);
  EXPECT_GE(pool.stats().write_errors, 1u);

  // The failed writeback must not have lost the dirty byte: whether
  // page 0 is still resident-dirty or was evicted by a later (healed)
  // writeback, its bytes reach the device by flush time.
  ASSERT_TRUE(pool.FlushAll().ok());
  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(0, page).ok());
  EXPECT_EQ(page[0], 'D');
}

TEST(BufferPoolTest, DiscardAllDropsDirtyBytesAndRespectsPins) {
  PageStore store = MakeDevice(3);
  BufferPool pool(&store, 2);
  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[0] = 'Z';
  }
  auto pinned = pool.Pin(1);
  ASSERT_TRUE(pinned.ok());
  // A pinned frame blocks the discard outright — no partial drops.
  EXPECT_FALSE(pool.DiscardAll().ok());
  pinned->Release();
  ASSERT_TRUE(pool.DiscardAll().ok());
  EXPECT_EQ(pool.NumResident(), 0u);

  // The dirty byte was deliberately thrown away (crash simulation):
  // the device still holds the original page image.
  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(0, page).ok());
  EXPECT_EQ(page[0], 'a');
}

TEST(BufferPoolTest, WorksOverFilePageDevice) {
  const std::string path = ::testing::TempDir() + "/modb_pool_device.bin";
  PageStore staging = MakeDevice(3);
  ASSERT_TRUE(staging.SaveToFile(path).ok());
  auto device = FilePageDevice::Open(path);
  ASSERT_TRUE(device.ok()) << device.status();
  BufferPool pool(&*device, 2);
  auto ref = pool.Pin(2);
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(ref->data()[0], 'c');
  // Write through the pool, flush, and verify via a fresh open.
  ref->mutable_data()[1] = '!';
  ref->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  auto reopened = FilePageDevice::Open(path);
  ASSERT_TRUE(reopened.ok());
  char page[kPageSize];
  ASSERT_TRUE(reopened->ReadPage(2, page).ok());
  EXPECT_EQ(page[0], 'c');
  EXPECT_EQ(page[1], '!');
}

TEST(FilePageDeviceTest, CreateGrowReadWrite) {
  const std::string path = ::testing::TempDir() + "/modb_file_device.bin";
  auto device = FilePageDevice::Create(path);
  ASSERT_TRUE(device.ok()) << device.status();
  EXPECT_EQ(device->NumPages(), 0u);
  auto first = device->AllocatePages(3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(device->NumPages(), 3u);

  char page[kPageSize];
  ASSERT_TRUE(device->ReadPage(1, page).ok());
  EXPECT_EQ(page[0], '\0');  // fresh pages come back zeroed
  std::memset(page, 'x', kPageSize);
  ASSERT_TRUE(device->WritePage(1, page).ok());
  EXPECT_FALSE(device->WritePage(3, page).ok());
  EXPECT_FALSE(device->ReadPage(7, page).ok());

  // The file is PageStore-format compatible.
  auto loaded = PageStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumPages(), 3u);
  ASSERT_TRUE(loaded->ReadPage(1, page).ok());
  EXPECT_EQ(page[kPageSize - 1], 'x');
}

TEST(ShardedPoolTest, SmallPoolsCollapseToOneShard) {
  PageStore store = MakeDevice(4);
  BufferPool small(&store, 16);
  EXPECT_EQ(small.num_shards(), 1u);  // exact global LRU preserved
  BufferPool large(&store, 256);
  EXPECT_GT(large.num_shards(), 1u);
}

TEST(ShardedPoolTest, ExplicitShardCountIsRoundedAndClamped) {
  PageStore store = MakeDevice(4);
  EXPECT_EQ(BufferPool(&store, 64, 4).num_shards(), 4u);
  EXPECT_EQ(BufferPool(&store, 64, 7).num_shards(), 4u);  // floor pow2
  EXPECT_EQ(BufferPool(&store, 64, 0).num_shards(), 1u);
  EXPECT_EQ(BufferPool(&store, 2, 8).num_shards(), 2u);  // <= capacity
}

TEST(ShardedPoolTest, ConcurrentPinsSeeCorrectBytesAcrossShards) {
  constexpr int kPages = 64;
  PageStore store;
  for (int i = 0; i < kPages; ++i) {
    store.Write(std::string(kPageSize, char('A' + (i % 23))));
  }
  BufferPool pool(&store, 32, 4);
  ASSERT_EQ(pool.num_shards(), 4u);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const std::uint32_t page = std::uint32_t((t * 31 + round * 7) % kPages);
        auto ref = pool.Pin(page);
        if (!ref.ok()) {
          // Transient exhaustion is legal under contention; losing bytes
          // is not.
          continue;
        }
        if (ref->data()[0] != char('A' + (page % 23)) ||
            ref->data()[kPageSize - 1] != char('A' + (page % 23))) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(ShardedPoolTest, MappedFramesAreZeroCopyAndUpgradeOnWrite) {
  const std::string path = ::testing::TempDir() + "/modb_pool_mmap.bin";
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  ASSERT_TRUE(dev->AllocatePages(4).ok());
  char page[kPageSize];
  std::memset(page, 'z', kPageSize);
  ASSERT_TRUE(dev->WritePage(2, page).ok());

  BufferPool pool(&*dev, 8);
  auto mapped = dev->MappedPage(2);
  ASSERT_TRUE(mapped.ok());
  ASSERT_NE(*mapped, nullptr);
  {
    // Read pin: data() IS the mapping — no copy was made.
    auto ref = pool.Pin(2);
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_EQ(ref->data(), *mapped);
    EXPECT_EQ(ref->data()[17], 'z');
  }
  {
    // First write upgrades to a private copy (COW): the mapping keeps
    // the committed bytes until writeback.
    auto ref = pool.Pin(2);
    ASSERT_TRUE(ref.ok());
    char* w = ref->mutable_data();
    EXPECT_NE(w, *mapped);
    w[17] = 'Q';
    EXPECT_EQ((*mapped)[17], 'z');  // device bytes untouched pre-flush
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ((*mapped)[17], 'Q');  // writeback landed in the mapping
}

TEST(ShardedPoolTest, DiscardAllDropsCowScribblesOnMappedFrames) {
  const std::string path = ::testing::TempDir() + "/modb_pool_mmap_discard.bin";
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  ASSERT_TRUE(dev->AllocatePages(2).ok());
  char page[kPageSize];
  std::memset(page, 'c', kPageSize);
  ASSERT_TRUE(dev->WritePage(1, page).ok());

  BufferPool pool(&*dev, 4);
  {
    auto ref = pool.Pin(1);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[5] = 'X';  // uncommitted scribble
  }
  ASSERT_TRUE(pool.DiscardAll().ok());  // crash simulation
  auto ref = pool.Pin(1);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->data()[5], 'c') << "discarded bytes leaked to the device";
}

}  // namespace
}  // namespace modb
