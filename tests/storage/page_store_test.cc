#include "storage/page_store.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace modb {
namespace {

TEST(PageStoreTest, RoundTripSmall) {
  PageStore store;
  PageExtent e = store.Write("hello world");
  EXPECT_EQ(e.num_pages, 1u);
  EXPECT_EQ(e.num_bytes, 11u);
  auto back = store.Read(e);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello world");
}

TEST(PageStoreTest, MultiPageExtent) {
  PageStore store;
  std::string big(kPageSize * 2 + 100, 'x');
  big[kPageSize] = 'y';
  PageExtent e = store.Write(big);
  EXPECT_EQ(e.num_pages, 3u);
  auto back = store.Read(e);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(PageStoreTest, MultipleExtentsIndependent) {
  PageStore store;
  PageExtent a = store.Write("aaa");
  PageExtent b = store.Write(std::string(kPageSize + 1, 'b'));
  PageExtent c = store.Write("ccc");
  EXPECT_EQ(*store.Read(a), "aaa");
  EXPECT_EQ(*store.Read(c), "ccc");
  EXPECT_EQ(store.Read(b)->size(), kPageSize + 1);
  EXPECT_EQ(store.NumPages(), 4u);
}

TEST(PageStoreTest, EmptyWrite) {
  PageStore store;
  PageExtent e = store.Write("");
  EXPECT_EQ(e.num_pages, 0u);
  auto back = store.Read(e);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(PageStoreTest, OutOfRangeRejected) {
  PageStore store;
  store.Write("data");
  PageExtent bogus{5, 2, 100};
  EXPECT_FALSE(store.Read(bogus).ok());
}

TEST(PageStoreTest, InconsistentExtentRejected) {
  PageStore store;
  PageExtent e = store.Write("data");
  e.num_bytes = uint32_t(kPageSize * 5);  // More bytes than pages.
  EXPECT_FALSE(store.Read(e).ok());
}

TEST(PageStoreTest, SaveAndLoadFile) {
  PageStore store;
  PageExtent a = store.Write("persisted data");
  PageExtent b = store.Write(std::string(kPageSize + 7, 'k'));
  std::string path = ::testing::TempDir() + "/modb_pages.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = PageStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumPages(), store.NumPages());
  EXPECT_EQ(loaded->BytesUsed(), store.BytesUsed());
  // Extents issued before saving stay valid against the reload.
  EXPECT_EQ(*loaded->Read(a), "persisted data");
  EXPECT_EQ(loaded->Read(b)->size(), kPageSize + 7);
}

TEST(PageStoreTest, LoadRejectsGarbageFile) {
  std::string path = ::testing::TempDir() + "/modb_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a page file";
  }
  EXPECT_FALSE(PageStore::LoadFromFile(path).ok());
  EXPECT_FALSE(PageStore::LoadFromFile("/nonexistent/nowhere.bin").ok());
}

TEST(PageStoreTest, UsageAccounting) {
  PageStore store;
  store.Write(std::string(100, 'a'));
  store.Write(std::string(200, 'b'));
  EXPECT_EQ(store.BytesUsed(), 300u);
  EXPECT_EQ(store.BytesAllocated(), 2 * kPageSize);
}

}  // namespace
}  // namespace modb
