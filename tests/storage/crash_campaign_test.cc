#include "storage/crash_campaign.h"

#include <gtest/gtest.h>

#include <string>

#include "storage/fault.h"

namespace modb {
namespace {

TEST(CrashCampaign, EveryCrashPointRecoversToCommittedState) {
  if (!kFaultsEnabled) GTEST_SKIP() << "faults compiled out (MODB_FAULTS=OFF)";
  CrashCampaignOptions options;
  options.path = ::testing::TempDir() + "/modb_crash_campaign.bin";
  Result<CrashCampaignReport> report = RunCrashCampaign(options);
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(report.ok()) << report.status();

  // The workload performs real I/O in both directions, so the
  // enumeration must have found sites to crash at.
  EXPECT_GT(report->write_sites, 0u);
  EXPECT_GT(report->read_sites, 0u);
  EXPECT_GT(report->open_read_sites, 0u);

  // Every armed fault fired (the site enumeration is exact), and every
  // crash was followed by a verified recovery: the reopened store held a
  // byte-identical committed state, accounted for every page, and
  // accepted a fresh commit.
  EXPECT_GT(report->runs, 0u);
  EXPECT_GT(report->crashes, 0u);
  EXPECT_EQ(report->recoveries_verified + report->preinit_reopen_failures,
            report->crashes);

  // Transient faults during Open are absorbed by the retry policy: one
  // successful retried open per read site of a clean open.
  EXPECT_EQ(report->retried_opens, report->open_read_sites);
}

}  // namespace
}  // namespace modb
