// One suite, two devices: every test here runs over FilePageDevice and
// MmapPageDevice through the VersionedSpillStore device option, so the
// crash-consistency and spill contracts are pinned to the *format*, not
// to one implementation. verify.sh selects a device with
// --gtest_filter=*file*/ or *mmap*/ — the parameterization is the
// --device flag of the test binary.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/fault.h"
#include "storage/mmap_device.h"
#include "storage/page_store.h"
#include "storage/recovery.h"
#include "storage/spill.h"

namespace modb {
namespace {

class DeviceParamTest : public ::testing::TestWithParam<StoreDeviceKind> {
 protected:
  void SetUp() override { FaultInjector::Global().Disarm(); }
  void TearDown() override { FaultInjector::Global().Disarm(); }

  StoreDeviceKind device() const { return GetParam(); }

  VersionedSpillStore::Options StoreOptions() const {
    VersionedSpillStore::Options options;
    options.device = device();
    options.pool_capacity = 16;
    return options;
  }

  std::string TempPath(const char* name) const {
    return ::testing::TempDir() + "/" + name +
           (device() == StoreDeviceKind::kMmap ? "_mmap.bin" : "_file.bin");
  }

  Result<std::unique_ptr<PageDevice>> MakeRawDevice(const std::string& path,
                                                    bool create) const {
    if (device() == StoreDeviceKind::kMmap) {
      auto dev = create ? MmapPageDevice::Create(path)
                        : MmapPageDevice::Open(path);
      if (!dev.ok()) return dev.status();
      return std::unique_ptr<PageDevice>(
          new MmapPageDevice(std::move(*dev)));
    }
    auto dev =
        create ? FilePageDevice::Create(path) : FilePageDevice::Open(path);
    if (!dev.ok()) return dev.status();
    return std::unique_ptr<PageDevice>(new FilePageDevice(std::move(*dev)));
  }
};

TEST_P(DeviceParamTest, SpillRoundTripThroughBufferPool) {
  const std::string path = TempPath("modb_dev_spill");
  auto dev = MakeRawDevice(path, /*create=*/true);
  ASSERT_TRUE(dev.ok()) << dev.status();

  const std::string blob(kSpillPayloadSize * 2 + 700, 'q');
  auto loc = SpillBlob(dev->get(), blob);
  ASSERT_TRUE(loc.ok()) << loc.status();

  BufferPool pool(dev->get(), 8);
  auto back = ReadSpilledBlob(&pool, *loc);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, blob);
}

TEST_P(DeviceParamTest, TornSpillWriteIsCaughtByChecksumOnRead) {
  if (!kFaultsEnabled) GTEST_SKIP() << "built without MODB_FAULTS";
  const std::string path = TempPath("modb_dev_torn");
  auto dev = MakeRawDevice(path, /*create=*/true);
  ASSERT_TRUE(dev.ok()) << dev.status();
  FaultInjector::Global().Disarm();  // drop Create's header-write count

  // Tear the second spill page after 100 payload bytes: the device
  // reports success but the page CRC cannot match on read — the same
  // latent-corruption catch on both device kinds.
  std::string blob(kSpillPayloadSize + 500, 't');
  FaultInjector::Global().TearNth(1, kSpillHeaderSize + 100);
  auto loc = SpillBlob(dev->get(), blob);
  ASSERT_TRUE(loc.ok()) << loc.status();

  BufferPool pool(dev->get(), 8);
  auto back = ReadSpilledBlob(&pool, *loc);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("checksum"), std::string::npos)
      << back.status();
}

TEST_P(DeviceParamTest, StoreCreateCommitReopenRoundTrip) {
  const std::string path = TempPath("modb_dev_store");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();

  const std::string a(5000, 'a');
  const std::string b(123, 'b');
  ASSERT_TRUE(store->StageBlob(a, SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->StageBlob(b, SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->epoch(), 1u);
  EXPECT_TRUE(store->VerifyAccounting().ok());

  auto reopened = VersionedSpillStore::Open(path, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 1u);
  ASSERT_EQ(reopened->NumRoots(), 2u);
  auto back_a = reopened->ReadRootBlob(0);
  auto back_b = reopened->ReadRootBlob(1);
  ASSERT_TRUE(back_a.ok()) << back_a.status();
  ASSERT_TRUE(back_b.ok()) << back_b.status();
  EXPECT_EQ(*back_a, a);
  EXPECT_EQ(*back_b, b);
  EXPECT_TRUE(reopened->VerifyAccounting().ok());
}

TEST_P(DeviceParamTest, StoreFilesInteropAcrossDeviceKinds) {
  const std::string path = TempPath("modb_dev_cross");
  {
    auto store = VersionedSpillStore::Create(path, StoreOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->StageBlob(std::string(3000, 'x'), SpillValueType::kOpaque)
            .ok());
    ASSERT_TRUE(store->Commit().ok());
  }
  // Reopen under the *other* device kind: identical format, identical
  // recovery.
  VersionedSpillStore::Options other = StoreOptions();
  other.device = device() == StoreDeviceKind::kMmap ? StoreDeviceKind::kFile
                                                    : StoreDeviceKind::kMmap;
  auto reopened = VersionedSpillStore::Open(path, other);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 1u);
  ASSERT_EQ(reopened->NumRoots(), 1u);
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(*blob, std::string(3000, 'x'));
  EXPECT_TRUE(reopened->VerifyAccounting().ok());
}

TEST_P(DeviceParamTest, AbandonedCommitRecoversToPreviousEpoch) {
  const std::string path = TempPath("modb_dev_abandon");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(
      store->StageBlob(std::string(2000, '1'), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  // Stage epoch 2 but die before Commit: the staged pages are orphans
  // a reopen must reclaim, and the committed state must be epoch 1.
  ASSERT_TRUE(
      store->RestageBlob(0, std::string(2000, '2'), SpillValueType::kOpaque)
          .ok());
  ASSERT_TRUE(store->Abandon().ok());

  auto reopened = VersionedSpillStore::Open(path, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 1u);
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(*blob, std::string(2000, '1'));
  EXPECT_TRUE(reopened->VerifyAccounting().ok());
}

TEST_P(DeviceParamTest, TypedValueSurvivesCommitAndValidatedReopen) {
  const std::string path = TempPath("modb_dev_typed");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();

  MovingInt mi = *MovingInt::Make(
      {*UInt::Make(*TimeInterval::Make(0, 5, true, true), 7),
       *UInt::Make(*TimeInterval::Make(5, 9, false, true), 11)});
  auto idx = store->StageValue(mi);
  ASSERT_TRUE(idx.ok()) << idx.status();
  ASSERT_TRUE(store->Commit().ok());

  auto reopened = VersionedSpillStore::Open(path, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto back = reopened->LoadRoot<MovingInt>(*idx);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumUnits(), 2u);
}

std::string DeviceName(
    const ::testing::TestParamInfo<StoreDeviceKind>& info) {
  return info.param == StoreDeviceKind::kMmap ? "mmap" : "file";
}

INSTANTIATE_TEST_SUITE_P(Devices, DeviceParamTest,
                         ::testing::Values(StoreDeviceKind::kFile,
                                           StoreDeviceKind::kMmap),
                         DeviceName);

}  // namespace
}  // namespace modb
