// Failure-injection tests for the spill page format: corrupted page
// headers, mutated locators, and lying payload lengths must surface as
// clean error statuses — never crashes, hangs, or unbounded allocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/recovery.h"
#include "storage/spill.h"

namespace modb {
namespace {

std::string SampleBlob(std::size_t n) {
  std::string b(n, '\0');
  for (std::size_t i = 0; i < n; ++i) b[i] = char((i * 37u + 5u) & 0xffu);
  return b;
}

struct SpilledFixture {
  PageStore device;
  SpillLocator loc;
  std::string blob;
};

SpilledFixture MakeFixture(std::size_t n) {
  SpilledFixture f;
  f.blob = SampleBlob(n);
  f.loc = *SpillBlob(&f.device, f.blob);
  return f;
}

TEST(SpillFuzz, PageHeaderByteCorruptionAlwaysErrors) {
  SpilledFixture f = MakeFixture(9000);
  // Every byte of every page header, every bit: magic, version, flags,
  // sequence number, payload length, checksum.
  for (std::uint32_t p = 0; p < f.loc.num_pages; ++p) {
    char original[kPageSize];
    ASSERT_TRUE(f.device.ReadPage(f.loc.first_page + p, original).ok());
    for (std::size_t byte = 0; byte < kSpillHeaderSize; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        char mutated[kPageSize];
        std::memcpy(mutated, original, kPageSize);
        mutated[byte] ^= char(1 << bit);
        ASSERT_TRUE(
            f.device.WritePage(f.loc.first_page + p, mutated).ok());
        BufferPool pool(&f.device, 8);
        auto read = ReadSpilledBlob(&pool, f.loc);
        // The only header bits a reader may tolerate are the reserved
        // flag bits (byte 5, bits 1-7) — they are outside both the
        // checked flag mask and the payload checksum. Even then the
        // decoded bytes must be pristine.
        const bool reserved_flag_bit = (byte == 5 && bit != 0);
        if (read.ok()) {
          EXPECT_TRUE(reserved_flag_bit)
              << "page " << p << " header byte " << byte << " bit " << bit
              << " flipped but the blob still decoded";
          EXPECT_EQ(*read, f.blob);
        }
      }
    }
    ASSERT_TRUE(f.device.WritePage(f.loc.first_page + p, original).ok());
  }
  // Control: the pristine pages round-trip.
  BufferPool pool(&f.device, 8);
  auto read = ReadSpilledBlob(&pool, f.loc);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, f.blob);
}

TEST(SpillFuzz, PayloadCorruptionAlwaysErrors) {
  SpilledFixture f = MakeFixture(6000);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint32_t> page(0, f.loc.num_pages - 1);
  std::uniform_int_distribution<std::size_t> pos(kSpillHeaderSize,
                                                 kPageSize - 1);
  for (int trial = 0; trial < 300; ++trial) {
    std::uint32_t p = f.loc.first_page + page(rng);
    char original[kPageSize];
    ASSERT_TRUE(f.device.ReadPage(p, original).ok());
    char mutated[kPageSize];
    std::memcpy(mutated, original, kPageSize);
    std::size_t at = pos(rng);
    mutated[at] ^= char(1 << (rng() % 8));
    ASSERT_TRUE(f.device.WritePage(p, mutated).ok());
    BufferPool pool(&f.device, 8);
    auto read = ReadSpilledBlob(&pool, f.loc);
    // A flip past the used payload prefix of the last page is outside
    // the checksummed region; anywhere else it must error.
    if (read.ok()) {
      EXPECT_EQ(*read, f.blob) << "corrupt payload decoded at byte " << at;
    }
    ASSERT_TRUE(f.device.WritePage(p, original).ok());
  }
}

TEST(SpillFuzz, MutatedLocatorsNeverCrashOrOverallocate) {
  SpilledFixture f = MakeFixture(9000);
  BufferPool pool(&f.device, 8);
  const std::uint32_t kEdge[] = {
      0u,       1u,
      f.loc.first_page, f.loc.num_pages, f.loc.num_bytes,
      std::uint32_t(f.device.NumPages()),
      std::numeric_limits<std::uint32_t>::max() - 1,
      std::numeric_limits<std::uint32_t>::max()};
  for (std::uint32_t first : kEdge) {
    for (std::uint32_t pages : kEdge) {
      for (std::uint32_t bytes : kEdge) {
        SpillLocator mutated{first, pages, bytes};
        // Must return a clean Status (or, for the identity locator, the
        // original bytes) without touching out-of-range memory or
        // reserving gigabytes for a lying num_bytes.
        auto read = ReadSpilledBlob(&pool, mutated);
        if (read.ok()) {
          EXPECT_TRUE(*read == f.blob)
              << "locator {" << first << ", " << pages << ", " << bytes
              << "} decoded " << read->size() << " unexpected bytes";
        }
      }
    }
  }
}

TEST(SpillFuzz, RandomLocatorFuzzIsAlwaysClean) {
  SpilledFixture f = MakeFixture(5000);
  BufferPool pool(&f.device, 8);
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    SpillLocator loc{std::uint32_t(rng()), std::uint32_t(rng()),
                     std::uint32_t(rng())};
    auto read = ReadSpilledBlob(&pool, loc);  // must not crash or throw
    if (read.ok()) {
      EXPECT_EQ(*read, f.blob);
    }
  }
}

TEST(SpillFuzz, CorruptRootRecordsNeverCrashRecovery) {
  const std::string path = ::testing::TempDir() + "/modb_spill_fuzz_root.bin";
  {
    auto store = VersionedSpillStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->StageBlob(SampleBlob(3000),
                                 SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
  }
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    // Corrupt a random byte of a random root slot on the real file, then
    // reopen: recovery must either fall back to the other slot or fail
    // with a clean Status — never crash, never serve corrupt roots.
    {
      auto dev = FilePageDevice::Open(path);
      ASSERT_TRUE(dev.ok());
      std::uint32_t slot = kRootSlotPages[rng() % 2];
      char page[kPageSize];
      ASSERT_TRUE(dev->ReadPage(slot, page).ok());
      char original = page[rng() % kPageSize];
      page[rng() % kPageSize] = char(rng());
      ASSERT_TRUE(dev->WritePage(slot, page).ok());
      (void)original;
    }
    auto reopened = VersionedSpillStore::Open(path);
    if (reopened.ok()) {
      EXPECT_TRUE(reopened->VerifyAccounting().ok());
      for (std::size_t i = 0; i < reopened->NumRoots(); ++i) {
        auto blob = reopened->ReadRootBlob(i);
        if (blob.ok()) EXPECT_EQ(blob->size(), 3000u);
      }
      // Repair the store for the next trial by committing fresh state.
      ASSERT_TRUE(reopened->Commit().ok());
    } else {
      // Both slots dead: rebuild and continue fuzzing.
      auto rebuilt = VersionedSpillStore::Create(path);
      ASSERT_TRUE(rebuilt.ok());
      ASSERT_TRUE(rebuilt->StageBlob(SampleBlob(3000),
                                     SpillValueType::kOpaque).ok());
      ASSERT_TRUE(rebuilt->Commit().ok());
    }
  }
}

}  // namespace
}  // namespace modb
