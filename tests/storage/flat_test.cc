#include "storage/flat.h"

#include <gtest/gtest.h>

#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "spatial/region_builder.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

TEST(FlatBlob, SerializeParseRoundTrip) {
  FlatValue v{"rootbytes", {"array-one", std::string(1000, 'z')}};
  std::string blob = SerializeFlat(v);
  auto back = ParseFlat(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root, v.root);
  ASSERT_EQ(back->arrays.size(), 2u);
  EXPECT_EQ(back->arrays[0], "array-one");
  EXPECT_EQ(back->arrays[1].size(), 1000u);
}

TEST(FlatBlob, RejectsGarbage) {
  EXPECT_FALSE(ParseFlat("nonsense").ok());
  FlatValue v{"root", {}};
  std::string blob = SerializeFlat(v);
  blob.push_back('x');  // Trailing byte.
  EXPECT_FALSE(ParseFlat(blob).ok());
}

TEST(FlatBase, IntRealBoolRoundTrip) {
  EXPECT_EQ(*IntFromFlat(ToFlat(IntValue(-42))), IntValue(-42));
  EXPECT_EQ(*IntFromFlat(ToFlat(IntValue::Undefined())),
            IntValue::Undefined());
  EXPECT_EQ(*RealFromFlat(ToFlat(RealValue(3.25))), RealValue(3.25));
  EXPECT_EQ(*BoolFromFlat(ToFlat(BoolValue(true))), BoolValue(true));
  EXPECT_EQ(*BoolFromFlat(ToFlat(BoolValue::Undefined())),
            BoolValue::Undefined());
}

TEST(FlatString, FixedLengthRoundTrip) {
  auto f = ToFlat(StringValue(std::string("Lufthansa")));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*StringFromFlat(*f), StringValue(std::string("Lufthansa")));
  EXPECT_FALSE(ToFlat(StringValue(std::string(100, 'x'))).ok());
  auto undef = ToFlat(StringValue::Undefined());
  ASSERT_TRUE(undef.ok());
  EXPECT_EQ(*StringFromFlat(*undef), StringValue::Undefined());
}

TEST(FlatSpatial, PointAndPoints) {
  Point p(1.5, -2.5);
  EXPECT_EQ(*PointFromFlat(ToFlat(p)), p);
  Points ps = Points::FromVector({{1, 2}, {3, 4}, {0, 0}});
  EXPECT_EQ(*PointsFromFlat(ToFlat(ps)), ps);
  EXPECT_EQ(*PointsFromFlat(ToFlat(Points())), Points());
}

TEST(FlatSpatial, LineRoundTrip) {
  Line l = *Line::Make({*Seg::Make(Point(0, 0), Point(1, 1)),
                        *Seg::Make(Point(2, 0), Point(3, 5))});
  auto back = LineFromFlat(ToFlat(l));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, l);
  EXPECT_DOUBLE_EQ(back->Length(), l.Length());
}

TEST(FlatSpatial, RegionRoundTripWithHoles) {
  Region r = *Region::FromRings(
      {Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)},
      {{Point(2, 2), Point(4, 2), Point(4, 4), Point(2, 4)},
       {Point(6, 6), Point(8, 6), Point(8, 8), Point(6, 8)}});
  auto back = RegionFromFlat(ToFlat(r));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == r);
  EXPECT_DOUBLE_EQ(back->Area(), r.Area());
  EXPECT_EQ(back->NumCycles(), 3u);
  EXPECT_EQ(back->faces()[0].num_holes, 2);
  // The reconstructed structure still answers queries.
  EXPECT_FALSE(back->Contains(Point(3, 3)));
  EXPECT_TRUE(back->Contains(Point(5, 5)));
}

TEST(FlatSpatial, EmptyRegion) {
  auto back = RegionFromFlat(ToFlat(Region()));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->IsEmpty());
}

TEST(FlatRange, PeriodsRoundTrip) {
  Periods p = Periods::FromIntervals(
      {TI(0, 1, true, false), TI(2, 3, false, true), TimeInterval::At(9)});
  auto back = PeriodsFromFlat(ToFlat(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(FlatMoving, BoolIntStringRoundTrip) {
  MovingBool mb = *MovingBool::Make({*UBool::Make(TI(0, 1, true, false), true),
                                     *UBool::Make(TI(1, 2), false)});
  EXPECT_EQ(MovingBoolFromFlat(ToFlat(mb))->NumUnits(), 2u);
  EXPECT_TRUE(MovingBoolFromFlat(ToFlat(mb))->AtInstant(0.5).val());

  MovingInt mi = *MovingInt::Make({*UInt::Make(TI(0, 5), 7)});
  EXPECT_EQ(MovingIntFromFlat(ToFlat(mi))->AtInstant(3).val(), 7);

  MovingString ms = *MovingString::Make(
      {*UString::Make(TI(0, 1, true, false), "taxi"),
       *UString::Make(TI(1, 2), "idle")});
  auto f = ToFlat(ms);
  ASSERT_TRUE(f.ok());
  auto back = MovingStringFromFlat(*f);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->AtInstant(1.5).val(), "idle");
}

TEST(FlatMoving, RealRoundTrip) {
  MovingReal mr = *MovingReal::Make(
      {*UReal::Make(TI(0, 1, true, false), 1, 2, 3, false),
       *UReal::Make(TI(1, 2), 0, 0, 9, true)});
  auto back = MovingRealFromFlat(ToFlat(mr));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumUnits(), 2u);
  EXPECT_DOUBLE_EQ(back->AtInstant(0.5).val(), 1 * 0.25 + 2 * 0.5 + 3);
  EXPECT_DOUBLE_EQ(back->AtInstant(1.5).val(), 3);  // √9.
}

TEST(FlatMoving, PointRoundTrip) {
  std::mt19937_64 rng(4);
  TrajectoryOptions opts;
  opts.num_units = 20;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  auto back = MovingPointFromFlat(ToFlat(mp));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->NumUnits(), mp.NumUnits());
  for (double t = 0; t < 20; t += 0.5) {
    EXPECT_EQ(back->Present(t), mp.Present(t));
    if (mp.Present(t)) {
      EXPECT_TRUE(ApproxEqual(back->AtInstant(t).val(),
                              mp.AtInstant(t).val()));
    }
  }
}

TEST(FlatMoving, PointsSharedSubarray) {
  MovingPoints mps = *MovingPoints::Make(
      {*UPoints::Make(TI(0, 1, true, false),
                      {LinearMotion{0, 1, 0, 0}, LinearMotion{5, 0, 5, 0}}),
       *UPoints::Make(TI(1, 2), {LinearMotion{0, 2, 0, 0}})});
  FlatValue f = ToFlat(mps);
  EXPECT_EQ(f.arrays.size(), 2u);  // units + shared motions (Figure 7).
  auto back = MovingPointsFromFlat(f);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumUnits(), 2u);
  EXPECT_EQ(back->AtInstant(0.5).val().Size(), 2u);
  EXPECT_EQ(back->AtInstant(1.5).val().Size(), 1u);
}

TEST(FlatMoving, LineRoundTrip) {
  MSeg a = *MSeg::FromEndSegments(0, *Seg::Make(Point(0, 0), Point(1, 0)), 10,
                                  *Seg::Make(Point(5, 5), Point(6, 5)));
  MovingLine ml = *MovingLine::Make({*ULine::Make(TI(0, 10), {a})});
  auto back = MovingLineFromFlat(ToFlat(ml));
  ASSERT_TRUE(back.ok()) << back.status();
  Line l5 = back->AtInstant(5).val();
  ASSERT_EQ(l5.NumSegments(), 1u);
  EXPECT_TRUE(ApproxEqual(l5.segment(0).a(), Point(2.5, 2.5)));
}

TEST(FlatMoving, RegionRoundTripWithHoles) {
  std::mt19937_64 rng(8);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 8;
  opts.shape.radius = 20;
  opts.shape.center = Point(0, 0);
  opts.shape.with_hole = true;
  opts.num_units = 3;
  opts.unit_duration = 5;
  opts.drift = Point(10, 0);
  opts.drift_alternation = Point(0, 2);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  FlatValue f = ToFlat(mr);
  EXPECT_EQ(f.arrays.size(), 4u);  // units, mfaces, mcycles, msegments.
  auto back = MovingRegionFromFlat(f);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->NumUnits(), mr.NumUnits());
  for (double t = 0.5; t < 15; t += 1.7) {
    double oa = mr.unit(*mr.FindUnit(t)).ValueAt(t).Area();
    double ba = back->unit(*back->FindUnit(t)).ValueAt(t).Area();
    EXPECT_NEAR(ba, oa, 1e-9);
  }
}

TEST(AttributeStoreTest, SmallArraysInline) {
  AttributeStore store(256);
  FlatValue v{"root", {"tiny"}};
  std::string tuple = store.Put(v);
  EXPECT_EQ(store.page_store().NumPages(), 0u);  // Nothing paged.
  auto back = store.Get(tuple);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->arrays[0], "tiny");
}

TEST(AttributeStoreTest, LargeArraysPaged) {
  AttributeStore store(256);
  FlatValue v{"root", {std::string(10000, 'q'), "small"}};
  std::string tuple = store.Put(v);
  EXPECT_GT(store.page_store().NumPages(), 0u);
  // The tuple itself stays compact (the paper's requirement that the root
  // record live inside the tuple).
  EXPECT_LT(tuple.size(), 200u);
  auto back = store.Get(tuple);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->arrays[0].size(), 10000u);
  EXPECT_EQ(back->arrays[1], "small");
}

TEST(AttributeStoreTest, RealMovingPointAttribute) {
  std::mt19937_64 rng(6);
  TrajectoryOptions opts;
  opts.num_units = 500;  // Big enough to page out.
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  AttributeStore store(256);
  std::string tuple = store.Put(ToFlat(mp));
  EXPECT_GT(store.page_store().NumPages(), 1u);
  auto f = store.Get(tuple);
  ASSERT_TRUE(f.ok());
  auto back = MovingPointFromFlat(*f);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumUnits(), mp.NumUnits());
}

}  // namespace
}  // namespace modb
