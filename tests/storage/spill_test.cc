#include "storage/spill.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gen/trajectory_gen.h"
#include "storage/page_store.h"
#include "temporal/paged_ops.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

MovingPoint MakeTrajectory(int num_units, int seed = 7) {
  std::mt19937_64 rng{std::uint64_t(seed)};
  TrajectoryOptions opts;
  opts.num_units = num_units;
  return *RandomWalkPoint(rng, opts);
}

TEST(SpillBlobTest, RoundTripIsByteIdentical) {
  PageStore store;
  BufferPool pool(&store, 8);
  std::string blob;
  for (int i = 0; i < int(kSpillPayloadSize * 3 + 17); ++i) {
    blob.push_back(char(i * 31 + 7));
  }
  auto loc = SpillBlob(&store, blob);
  ASSERT_TRUE(loc.ok()) << loc.status();
  EXPECT_EQ(loc->num_pages, 4u);
  EXPECT_EQ(loc->num_bytes, blob.size());
  auto back = ReadSpilledBlob(&pool, *loc);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, blob);  // byte identity, not just equivalence
}

TEST(SpillBlobTest, EmptyAndSinglePageBlobs) {
  PageStore store;
  BufferPool pool(&store, 4);
  auto empty = SpillBlob(&store, "");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_pages, 1u);  // an empty value still roots a page
  auto back = ReadSpilledBlob(&pool, *empty);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());

  auto small = SpillBlob(&store, "hello");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->num_pages, 1u);
  EXPECT_EQ(*ReadSpilledBlob(&pool, *small), "hello");
}

TEST(SpillBlobTest, CorruptedPayloadIsRejectedByChecksum) {
  PageStore store;
  BufferPool pool(&store, 4);
  std::string blob(kSpillPayloadSize + 100, 'm');
  auto loc = SpillBlob(&store, blob);
  ASSERT_TRUE(loc.ok());

  // Flip one payload byte on the second page, behind the pool's back.
  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(loc->first_page + 1, page).ok());
  page[kSpillHeaderSize + 5] ^= 0x40;
  ASSERT_TRUE(store.WritePage(loc->first_page + 1, page).ok());

  BufferPool fresh(&store, 4);
  auto back = ReadSpilledBlob(&fresh, *loc);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("checksum"), std::string::npos)
      << back.status();
}

TEST(SpillBlobTest, BadHeaderFieldsAreRejected) {
  PageStore store;
  BufferPool pool(&store, 4);
  auto loc = SpillBlob(&store, std::string(64, 'h'));
  ASSERT_TRUE(loc.ok());

  char good[kPageSize];
  ASSERT_TRUE(store.ReadPage(loc->first_page, good).ok());

  // Bad magic.
  char page[kPageSize];
  std::memcpy(page, good, kPageSize);
  page[0] = 'X';
  ASSERT_TRUE(store.WritePage(loc->first_page, page).ok());
  {
    BufferPool fresh(&store, 4);
    auto r = ReadSpilledBlob(&fresh, *loc);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("magic"), std::string::npos);
  }

  // Bad version byte (offset 4 in the header).
  std::memcpy(page, good, kPageSize);
  page[4] = 99;
  ASSERT_TRUE(store.WritePage(loc->first_page, page).ok());
  {
    BufferPool fresh(&store, 4);
    auto r = ReadSpilledBlob(&fresh, *loc);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
  }

  // Restore, then lie in the locator about the byte count.
  ASSERT_TRUE(store.WritePage(loc->first_page, good).ok());
  SpillLocator wrong = *loc;
  wrong.num_bytes = 63;
  BufferPool fresh(&store, 4);
  EXPECT_FALSE(ReadSpilledBlob(&fresh, wrong).ok());
  wrong.num_bytes = std::uint32_t(2 * kSpillPayloadSize);
  EXPECT_FALSE(ReadSpilledBlob(&fresh, wrong).ok());
}

TEST(SpilledValueTest, MovingRealRoundTrip) {
  MovingReal mr = *MovingReal::Make(
      {*UReal::Make(TI(0, 1, true, false), 1, 2, 3, false),
       *UReal::Make(TI(1, 2), 0, 0, 9, true)});
  PageStore store;
  BufferPool pool(&store, 8);
  auto spilled = Spilled<MovingReal>::Spill(mr, &store);
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  EXPECT_FALSE(spilled->IsLoaded());

  auto loaded = spilled->Load(&pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(spilled->IsLoaded());
  EXPECT_EQ((*loaded)->NumUnits(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)->AtInstant(0.5).val(), 1 * 0.25 + 2 * 0.5 + 3);

  // The on-device bytes are exactly the flat serialization of the value.
  auto flat = ToFlat(mr);
  auto blob = ReadSpilledBlob(&pool, spilled->locator());
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, SerializeFlat(flat));
}

TEST(SpilledValueTest, ReleaseDropsAndReloads) {
  MovingPoint mp = MakeTrajectory(300);
  PageStore store;
  auto spilled = Spilled<MovingPoint>::Spill(mp, &store);
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  ASSERT_GT(spilled->locator().num_pages, 1u) << "want a multi-page value";

  BufferPool pool(&store, 4);  // smaller than the value: must recycle frames
  auto first = spilled->Load(&pool);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->NumUnits(), mp.NumUnits());
  spilled->Release();
  EXPECT_FALSE(spilled->IsLoaded());
  auto second = spilled->Load(&pool);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->NumUnits(), mp.NumUnits());
}

TEST(PagedOpsTest, AtInstantBatchSpilledMatchesInMemory) {
  MovingPoint mp = MakeTrajectory(200, /*seed=*/11);
  PageStore store;
  auto spilled = Spilled<MovingPoint>::Spill(mp, &store);
  ASSERT_TRUE(spilled.ok()) << spilled.status();

  std::vector<Instant> instants;
  for (double t = -2; t < 205; t += 0.25) instants.push_back(t);

  mp.BuildSearchIndex();
  std::vector<Intime<Point>> expect;
  BatchScratch scratch;
  ASSERT_TRUE(AtInstantBatchInto(mp, instants, &expect, &scratch).ok());

  BufferPool pool(&store, 8);
  std::vector<Intime<Point>> got;
  ASSERT_TRUE(
      AtInstantBatchSpilled(&*spilled, &pool, instants, &got).ok());
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].defined, expect[i].defined);
    if (got[i].defined) {
      EXPECT_EQ(got[i].value, expect[i].value);
    }
  }

  std::vector<std::uint8_t> present_expect, present_got;
  ASSERT_TRUE(PresentBatchInto(mp, instants, &present_expect).ok());
  ASSERT_TRUE(
      PresentBatchSpilled(&*spilled, &pool, instants, &present_got).ok());
  EXPECT_EQ(present_got, present_expect);

  auto p = PresentSpilled(&*spilled, &pool, 0.5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, mp.Present(0.5));
}

TEST(PagedOpsTest, SpilledRelationLargerThanPool) {
  // Ten trajectories spilled to one device, read back through a pool that
  // can hold only a fraction of their pages at once.
  PageStore store;
  std::vector<Spilled<MovingPoint>> rows;
  std::vector<MovingPoint> originals;
  for (int i = 0; i < 10; ++i) {
    originals.push_back(MakeTrajectory(120, /*seed=*/100 + i));
    auto s = Spilled<MovingPoint>::Spill(originals.back(), &store);
    ASSERT_TRUE(s.ok()) << s.status();
    rows.push_back(std::move(*s));
  }
  BufferPool pool(&store, 6);
  std::vector<Instant> instants = {0.5, 10.5, 60.25, 119.5};
  for (int i = 0; i < 10; ++i) {
    std::vector<Intime<Point>> got;
    ASSERT_TRUE(
        AtInstantBatchSpilled(&rows[i], &pool, instants, &got).ok());
    for (std::size_t k = 0; k < instants.size(); ++k) {
      ASSERT_TRUE(got[k].defined);
      EXPECT_EQ(got[k].value, originals[i].AtInstant(instants[k]).val());
    }
    rows[i].Release();  // keep resident set small, like a real scan
  }
  // Every byte came through the pool.
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(SpilledValueTest, SurvivesSaveAndLoadThroughFile) {
  MovingPoint mp = MakeTrajectory(150, /*seed=*/3);
  PageStore store;
  auto spilled = Spilled<MovingPoint>::Spill(mp, &store);
  ASSERT_TRUE(spilled.ok());

  const std::string path = ::testing::TempDir() + "/modb_spill_file.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto device = FilePageDevice::Open(path);
  ASSERT_TRUE(device.ok()) << device.status();

  BufferPool pool(&*device, 8);
  Spilled<MovingPoint> reopened(spilled->locator());
  auto loaded = reopened.Load(&pool, /*build_search_index=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumUnits(), mp.NumUnits());
  EXPECT_EQ((*loaded)->AtInstant(42.5).val(), mp.AtInstant(42.5).val());
}

}  // namespace
}  // namespace modb
