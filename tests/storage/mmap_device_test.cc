#include "storage/mmap_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/fault.h"
#include "storage/page_store.h"

namespace modb {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void FillPage(char* page, char c) { std::memset(page, c, kPageSize); }

TEST(MmapDeviceTest, CreateGrowReadWrite) {
  const std::string path = TempPath("modb_mmap_basic.bin");
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  EXPECT_EQ(dev->NumPages(), 0u);

  auto first = dev->AllocatePages(3);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(dev->NumPages(), 3u);

  char page[kPageSize];
  FillPage(page, 'm');
  ASSERT_TRUE(dev->WritePage(1, page).ok());

  char back[kPageSize];
  ASSERT_TRUE(dev->ReadPage(1, back).ok());
  EXPECT_EQ(std::memcmp(page, back, kPageSize), 0);

  // Fresh pages are zeroed, and out-of-range ids are rejected.
  ASSERT_TRUE(dev->ReadPage(2, back).ok());
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[kPageSize - 1], 0);
  EXPECT_FALSE(dev->ReadPage(3, back).ok());
  EXPECT_FALSE(dev->WritePage(3, page).ok());
}

TEST(MmapDeviceTest, MappedPointersAreZeroCopyAndStableAcrossGrowth) {
  const std::string path = TempPath("modb_mmap_stable.bin");
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  ASSERT_TRUE(dev->AllocatePages(2).ok());

  char page[kPageSize];
  FillPage(page, 's');
  ASSERT_TRUE(dev->WritePage(1, page).ok());

  auto mapped = dev->MappedPage(1);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_NE(*mapped, nullptr);
  EXPECT_EQ((*mapped)[0], 's');

  // Growth extends the file under the fixed reservation; the pointer
  // handed out before the growth must stay valid and keep its bytes.
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(dev->AllocatePages(64).ok());
  }
  auto again = dev->MappedPage(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *mapped);
  EXPECT_EQ((*mapped)[kPageSize - 1], 's');

  // WritePage is visible through previously handed-out pointers — they
  // alias the same shared mapping.
  FillPage(page, 'T');
  ASSERT_TRUE(dev->WritePage(1, page).ok());
  EXPECT_EQ((*mapped)[17], 'T');
}

TEST(MmapDeviceTest, OpensFilesWrittenByFileDeviceAndViceVersa) {
  const std::string path = TempPath("modb_mmap_interop.bin");
  char page[kPageSize];
  {
    auto fdev = FilePageDevice::Create(path);
    ASSERT_TRUE(fdev.ok()) << fdev.status();
    ASSERT_TRUE(fdev->AllocatePages(2).ok());
    FillPage(page, 'f');
    ASSERT_TRUE(fdev->WritePage(0, page).ok());
    ASSERT_TRUE(fdev->Sync().ok());
  }
  {
    auto mdev = MmapPageDevice::Open(path);
    ASSERT_TRUE(mdev.ok()) << mdev.status();
    EXPECT_EQ(mdev->NumPages(), 2u);
    char back[kPageSize];
    ASSERT_TRUE(mdev->ReadPage(0, back).ok());
    EXPECT_EQ(back[0], 'f');
    // Write through the mapping, sync, and hand the file back.
    FillPage(page, 'M');
    ASSERT_TRUE(mdev->WritePage(1, page).ok());
    ASSERT_TRUE(mdev->Sync().ok());
  }
  {
    auto fdev = FilePageDevice::Open(path);
    ASSERT_TRUE(fdev.ok()) << fdev.status();
    char back[kPageSize];
    ASSERT_TRUE(fdev->ReadPage(1, back).ok());
    EXPECT_EQ(back[kPageSize - 1], 'M');
  }
}

TEST(MmapDeviceTest, OpensPageStoreSaveToFileOutput) {
  const std::string path = TempPath("modb_mmap_savetofile.bin");
  PageStore store;
  PageExtent extent = store.Write(std::string(kPageSize + 100, 'p'));
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto dev = MmapPageDevice::Open(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  ASSERT_EQ(dev->NumPages(), store.NumPages());
  char back[kPageSize];
  ASSERT_TRUE(dev->ReadPage(extent.first_page, back).ok());
  EXPECT_EQ(back[0], 'p');
}

TEST(MmapDeviceTest, ReopenSeesSyncedBytes) {
  const std::string path = TempPath("modb_mmap_reopen.bin");
  {
    auto dev = MmapPageDevice::Create(path);
    ASSERT_TRUE(dev.ok()) << dev.status();
    ASSERT_TRUE(dev->AllocatePages(1).ok());
    char page[kPageSize];
    FillPage(page, 'r');
    ASSERT_TRUE(dev->WritePage(0, page).ok());
    ASSERT_TRUE(dev->Sync().ok());
  }
  auto dev = MmapPageDevice::Open(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  char back[kPageSize];
  ASSERT_TRUE(dev->ReadPage(0, back).ok());
  EXPECT_EQ(back[0], 'r');
  EXPECT_EQ(back[kPageSize - 1], 'r');
}

TEST(MmapDeviceTest, ReservationExhaustionIsResourceExhausted) {
  const std::string path = TempPath("modb_mmap_reserve.bin");
  MmapPageDevice::Options options;
  options.reserve_bytes = kPageFileHeaderSize + 4 * kPageSize;
  auto dev = MmapPageDevice::Create(path, options);
  ASSERT_TRUE(dev.ok()) << dev.status();
  ASSERT_TRUE(dev->AllocatePages(4).ok());
  auto overflow = dev->AllocatePages(1);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // The failed growth admitted nothing: page 3 still reads, 4 does not.
  char page[kPageSize];
  EXPECT_TRUE(dev->ReadPage(3, page).ok());
  EXPECT_FALSE(dev->ReadPage(4, page).ok());
}

class MmapDeviceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultsEnabled) {
      GTEST_SKIP() << "built without MODB_FAULTS";
    }
    FaultInjector::Global().Disarm();
  }
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(MmapDeviceFaultTest, ReadAndWriteFaultsFireAndHeal) {
  const std::string path = TempPath("modb_mmap_fault.bin");
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  FaultInjector::Global().Disarm();  // Create's header write counted
  ASSERT_TRUE(dev->AllocatePages(2).ok());

  char page[kPageSize];
  FaultInjector::Global().FailNth(FaultOp::kRead, 0);
  EXPECT_FALSE(dev->ReadPage(0, page).ok());
  EXPECT_TRUE(dev->ReadPage(0, page).ok());

  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);
  EXPECT_FALSE(dev->WritePage(0, page).ok());
  EXPECT_TRUE(dev->WritePage(0, page).ok());

  // MappedPage is a read too: a phantom-free in-range page maps fine,
  // but the injector can fail it like any other read.
  FaultInjector::Global().FailNth(FaultOp::kRead, 0);
  EXPECT_FALSE(dev->MappedPage(1).ok());
  EXPECT_TRUE(dev->MappedPage(1).ok());
}

TEST_F(MmapDeviceFaultTest, TornGrowthLeavesPhantomPagesReportingDataLoss) {
  const std::string path = TempPath("modb_mmap_phantom.bin");
  auto dev = MmapPageDevice::Create(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  FaultInjector::Global().Disarm();
  // The growth tears after one page's worth of bytes: pages 1..3 are
  // phantoms the header admits but the file never materialized. The
  // mmap device must bounds-check instead of faulting SIGBUS.
  FaultInjector::Global().TearNth(0, kPageSize);
  ASSERT_TRUE(dev->AllocatePages(4).ok());

  char page[kPageSize];
  EXPECT_TRUE(dev->ReadPage(0, page).ok());
  Status lost = dev->ReadPage(3, page);
  ASSERT_FALSE(lost.ok());
  // Same typed kDataLoss shape as FilePageDevice: path, byte offset,
  // expected and got counts, so recovery heals both identically.
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss);
  EXPECT_NE(lost.message().find(path), std::string::npos) << lost;
  EXPECT_NE(lost.message().find("offset " + std::to_string(24 + 3 * kPageSize)),
            std::string::npos)
      << lost;
  EXPECT_NE(lost.message().find("expected " + std::to_string(kPageSize)),
            std::string::npos)
      << lost;
  EXPECT_NE(lost.message().find("got "), std::string::npos) << lost;

  // The zero-copy path refuses phantoms the same way.
  auto mapped = dev->MappedPage(3);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kDataLoss);

  // Healing: a full write materializes the page and it reads again.
  FillPage(page, 'h');
  ASSERT_TRUE(dev->WritePage(3, page).ok());
  char back[kPageSize];
  ASSERT_TRUE(dev->ReadPage(3, back).ok());
  EXPECT_EQ(back[0], 'h');
}

TEST_F(MmapDeviceFaultTest, ExternallyTruncatedFileReadsAsDataLoss) {
  const std::string path = TempPath("modb_mmap_truncated.bin");
  {
    auto dev = MmapPageDevice::Create(path);
    ASSERT_TRUE(dev.ok()) << dev.status();
    ASSERT_TRUE(dev->AllocatePages(2).ok());
    char page[kPageSize];
    FillPage(page, 'x');
    ASSERT_TRUE(dev->WritePage(1, page).ok());
    ASSERT_TRUE(dev->Sync().ok());
  }
  // Cut the file mid-way through page 1, then open: the opened device
  // must treat page 1 as unreadable, not SIGBUS on first touch.
  std::filesystem::resize_file(path, 24 + kPageSize + 100);
  auto dev = MmapPageDevice::Open(path);
  ASSERT_TRUE(dev.ok()) << dev.status();
  char page[kPageSize];
  Status lost = dev->ReadPage(1, page);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss);
  EXPECT_NE(lost.message().find("got 100"), std::string::npos) << lost;
  EXPECT_TRUE(dev->ReadPage(0, page).ok());
}

}  // namespace
}  // namespace modb
