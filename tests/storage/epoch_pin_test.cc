// Epoch-pinned snapshot readers over VersionedSpillStore: a pin takes an
// immutable view of one committed epoch, reads through it are lock-free
// against a committing writer, and the pages a commit replaces stay
// parked (retired) until the last pin that could reference them drains.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/fault.h"
#include "storage/recovery.h"

namespace modb {
namespace {

class EpochPinTest : public ::testing::TestWithParam<StoreDeviceKind> {
 protected:
  void SetUp() override { FaultInjector::Global().Disarm(); }
  void TearDown() override { FaultInjector::Global().Disarm(); }

  VersionedSpillStore::Options StoreOptions() const {
    VersionedSpillStore::Options options;
    options.device = GetParam();
    options.pool_capacity = 16;
    return options;
  }

  std::string TempPath(const char* name) const {
    return ::testing::TempDir() + "/" + name +
           (GetParam() == StoreDeviceKind::kMmap ? "_mmap.bin" : "_file.bin");
  }

  /// A blob big enough to occupy real pages, unique per (tag, epoch).
  static std::string Payload(char tag, std::uint64_t epoch) {
    std::string blob(5000, tag);
    for (std::size_t i = 0; i < blob.size(); i += 7) {
      blob[i] = char('0' + (epoch % 10));
    }
    return blob;
  }
};

TEST_P(EpochPinTest, PinObservesTheEpochItWasTakenOn) {
  const std::string path = TempPath("modb_pin_basic");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();

  VersionedSpillStore::EpochPin empty;
  EXPECT_FALSE(empty);

  ASSERT_TRUE(store->StageBlob(Payload('a', 1), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  VersionedSpillStore::EpochPin pin = store->PinEpoch();
  ASSERT_TRUE(bool(pin));
  EXPECT_EQ(pin.epoch(), 1u);
  ASSERT_EQ(pin.NumRoots(), 1u);
  EXPECT_EQ(store->NumPinnedEpochs(), 1u);

  auto blob = store->ReadRootBlob(pin, 0);
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(*blob, Payload('a', 1));

  pin.Release();
  EXPECT_FALSE(pin);
  EXPECT_EQ(store->NumPinnedEpochs(), 0u);
  // Releasing twice is harmless.
  pin.Release();
}

TEST_P(EpochPinTest, PinnedViewSurvivesReplacingCommitByteIdentical) {
  const std::string path = TempPath("modb_pin_replace");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();

  ASSERT_TRUE(store->StageBlob(Payload('a', 1), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  VersionedSpillStore::EpochPin pin = store->PinEpoch();
  ASSERT_EQ(pin.epoch(), 1u);

  // The writer replaces root 0 and commits epoch 2: the replaced pages
  // must be retired, not freed, while the pin is alive.
  ASSERT_TRUE(
      store->RestageBlob(0, Payload('b', 2), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->epoch(), 2u);
  EXPECT_GT(store->NumRetiredPages(), 0u);
  EXPECT_TRUE(store->VerifyAccounting().ok());

  // The pinned view is byte-identical to the pre-commit state; the
  // unpinned read sees the new epoch.
  auto pinned = store->ReadRootBlob(pin, 0);
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_EQ(*pinned, Payload('a', 1));
  auto current = store->ReadRootBlob(0);
  ASSERT_TRUE(current.ok()) << current.status();
  EXPECT_EQ(*current, Payload('b', 2));

  // Dropping the last pin drains the retired run back into free.
  pin.Release();
  EXPECT_EQ(store->NumRetiredPages(), 0u);
  EXPECT_TRUE(store->VerifyAccounting().ok());
}

TEST_P(EpochPinTest, RetiredRunsDrainInPinOrder) {
  const std::string path = TempPath("modb_pin_order");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->StageBlob(Payload('a', 1), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  VersionedSpillStore::EpochPin pin1 = store->PinEpoch();  // epoch 1
  ASSERT_TRUE(
      store->RestageBlob(0, Payload('b', 2), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());
  const std::size_t retired_after_2 = store->NumRetiredPages();
  EXPECT_GT(retired_after_2, 0u);

  VersionedSpillStore::EpochPin pin2 = store->PinEpoch();  // epoch 2
  ASSERT_TRUE(
      store->RestageBlob(0, Payload('c', 3), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_GT(store->NumRetiredPages(), retired_after_2);
  EXPECT_EQ(store->NumPinnedEpochs(), 2u);

  // Releasing the older pin frees only the runs no remaining pin could
  // reference: epoch 2's replaced pages stay parked for pin2.
  pin1.Release();
  EXPECT_GT(store->NumRetiredPages(), 0u);
  EXPECT_TRUE(store->VerifyAccounting().ok());
  auto view2 = store->ReadRootBlob(pin2, 0);
  ASSERT_TRUE(view2.ok()) << view2.status();
  EXPECT_EQ(*view2, Payload('b', 2));

  pin2.Release();
  EXPECT_EQ(store->NumRetiredPages(), 0u);
  EXPECT_EQ(store->NumPinnedEpochs(), 0u);
  EXPECT_TRUE(store->VerifyAccounting().ok());
}

TEST_P(EpochPinTest, PinSurvivesStoreMove) {
  const std::string path = TempPath("modb_pin_move");
  auto created = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(created.ok()) << created.status();
  VersionedSpillStore store = std::move(*created);
  ASSERT_TRUE(store.StageBlob(Payload('m', 1), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store.Commit().ok());

  VersionedSpillStore::EpochPin pin = store.PinEpoch();
  VersionedSpillStore moved = std::move(store);  // pin must stay valid
  EXPECT_EQ(moved.NumPinnedEpochs(), 1u);
  auto blob = moved.ReadRootBlob(pin, 0);
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(*blob, Payload('m', 1));
  pin.Release();
  EXPECT_EQ(moved.NumPinnedEpochs(), 0u);
}

TEST_P(EpochPinTest, PinOutlivingTheStoreReleasesSafely) {
  const std::string path = TempPath("modb_pin_outlive");
  VersionedSpillStore::EpochPin pin;
  {
    auto store = VersionedSpillStore::Create(path, StoreOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->StageBlob(Payload('o', 1), SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
    pin = store->PinEpoch();
    EXPECT_EQ(pin.epoch(), 1u);
  }
  // The store is gone; the pin still holds the snapshot metadata and
  // must release without touching freed store state.
  EXPECT_EQ(pin.NumRoots(), 1u);
  pin.Release();
}

TEST_P(EpochPinTest, ConcurrentReadersSeeFrozenViewsWhileWriterCommits) {
  const std::string path = TempPath("modb_pin_concurrent");
  auto store = VersionedSpillStore::Create(path, StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->StageBlob(Payload('w', 1), SpillValueType::kOpaque).ok());
  ASSERT_TRUE(store->Commit().ok());

  // Record the expected bytes of every epoch the writer will commit
  // *before* any thread starts, so readers verify against ground truth.
  constexpr std::uint64_t kLastEpoch = 12;
  std::map<std::uint64_t, std::string> expected;
  expected[1] = Payload('w', 1);
  for (std::uint64_t e = 2; e <= kLastEpoch; ++e) {
    expected[e] = Payload('w', e);
  }

  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> read_failures{0};
  std::atomic<int> views_verified{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        VersionedSpillStore::EpochPin pin = store->PinEpoch();
        const std::string& want = expected.at(pin.epoch());
        // Read the pinned root several times while the writer plows
        // ahead: the view must never change under the pin.
        for (int i = 0; i < 3; ++i) {
          auto blob = store->ReadRootBlob(pin, 0);
          if (!blob.ok()) {
            read_failures.fetch_add(1);
          } else if (*blob != want) {
            mismatches.fetch_add(1);
          } else {
            views_verified.fetch_add(1);
          }
        }
      }
    });
  }

  for (std::uint64_t e = 2; e <= kLastEpoch; ++e) {
    ASSERT_TRUE(
        store->RestageBlob(0, expected[e], SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_GT(views_verified.load(), 0);
  // All pins drained: no retired pages may survive, and every device
  // page must be accounted for — the zero-leak contract.
  EXPECT_EQ(store->NumPinnedEpochs(), 0u);
  EXPECT_EQ(store->NumRetiredPages(), 0u);
  EXPECT_TRUE(store->VerifyAccounting().ok());
}

TEST_P(EpochPinTest, ReopenStartsWithNoPinsAndNoRetiredPages) {
  const std::string path = TempPath("modb_pin_reopen");
  {
    auto store = VersionedSpillStore::Create(path, StoreOptions());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->StageBlob(Payload('r', 1), SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
    // Die with a pin outstanding and retired pages parked: neither is
    // durable state, so recovery must reclaim everything.
    VersionedSpillStore::EpochPin pin = store->PinEpoch();
    ASSERT_TRUE(
        store->RestageBlob(0, Payload('r', 2), SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
    EXPECT_GT(store->NumRetiredPages(), 0u);
    ASSERT_TRUE(store->Abandon().ok());
    pin.Release();
  }
  auto reopened = VersionedSpillStore::Open(path, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->epoch(), 2u);
  EXPECT_EQ(reopened->NumPinnedEpochs(), 0u);
  EXPECT_EQ(reopened->NumRetiredPages(), 0u);
  EXPECT_TRUE(reopened->VerifyAccounting().ok());
  auto blob = reopened->ReadRootBlob(0);
  ASSERT_TRUE(blob.ok()) << blob.status();
  EXPECT_EQ(*blob, Payload('r', 2));
}

std::string DeviceName(
    const ::testing::TestParamInfo<StoreDeviceKind>& info) {
  return info.param == StoreDeviceKind::kMmap ? "mmap" : "file";
}

INSTANTIATE_TEST_SUITE_P(Devices, EpochPinTest,
                         ::testing::Values(StoreDeviceKind::kFile,
                                           StoreDeviceKind::kMmap),
                         DeviceName);

}  // namespace
}  // namespace modb
