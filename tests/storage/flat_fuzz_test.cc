// Failure-injection tests for the flat decoders: corrupted or truncated
// blobs must produce error statuses, never crashes or invalid values
// slipping past the validating factories.

#include <gtest/gtest.h>

#include <random>

#include "db/relation_io.h"
#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "storage/flat.h"

namespace modb {
namespace {

std::string SampleMovingPointBlob() {
  std::mt19937_64 rng(1);
  TrajectoryOptions opts;
  opts.num_units = 12;
  return SerializeFlat(ToFlat(*RandomWalkPoint(rng, opts)));
}

std::string SampleRegionBlob() {
  std::mt19937_64 rng(2);
  RegionGenOptions opts;
  opts.num_vertices = 12;
  opts.with_hole = true;
  return SerializeFlat(ToFlat(*GenerateRegion(rng, opts)));
}

TEST(FlatFuzz, TruncationsAlwaysError) {
  std::string blob = SampleMovingPointBlob();
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    auto parsed = ParseFlat(std::string_view(blob).substr(0, len));
    if (!parsed.ok()) continue;
    // Parsing may succeed only for... it cannot: truncation removes
    // trailing array bytes and the parser demands exact consumption.
    ADD_FAILURE() << "truncated blob of " << len << " bytes parsed";
  }
}

TEST(FlatFuzz, SingleByteCorruptionNeverCrashes) {
  std::string blob = SampleMovingPointBlob();
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::size_t> pos(0, blob.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  int decoded_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = blob;
    mutated[pos(rng)] ^= char(1 << bit(rng));
    auto parsed = ParseFlat(mutated);
    if (!parsed.ok()) continue;
    auto back = MovingPointFromFlat(*parsed);
    if (back.ok()) {
      // A flipped coordinate bit can still decode to a *valid* moving
      // point; what matters is that the value passed validation.
      ++decoded_ok;
      for (const UPoint& u : back->units()) {
        EXPECT_LE(u.interval().start(), u.interval().end());
      }
    }
  }
  SUCCEED() << decoded_ok << " mutations decoded to valid values";
}

TEST(FlatFuzz, RegionCorruptionNeverCrashes) {
  std::string blob = SampleRegionBlob();
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<std::size_t> pos(0, blob.size() - 1);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = blob;
    mutated[pos(rng)] = char(rng());
    auto parsed = ParseFlat(mutated);
    if (!parsed.ok()) continue;
    auto back = RegionFromFlat(*parsed);
    if (back.ok()) {
      // Structural invariants that FromParts guarantees even for mutated
      // geometry: link indices stay in range.
      for (const HalfSegment& h : back->halfsegments()) {
        EXPECT_GE(h.cycle, 0);
        EXPECT_LT(std::size_t(h.cycle), back->NumCycles());
        EXPECT_LT(std::size_t(h.next_in_cycle),
                  back->halfsegments().size());
      }
    }
  }
  SUCCEED();
}

TEST(FlatFuzz, AttributeBlobCorruption) {
  std::mt19937_64 rng(5);
  TrajectoryOptions opts;
  opts.num_units = 6;
  AttributeValue value(*RandomWalkPoint(rng, opts));
  std::string blob = *SerializeAttribute(value);
  std::uniform_int_distribution<std::size_t> pos(0, blob.size() - 1);
  int survived = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = blob;
    mutated[pos(rng)] = char(rng());
    auto back = DeserializeAttribute(mutated);  // Must not crash.
    if (back.ok()) ++survived;
  }
  SUCCEED() << survived << " mutations decoded to valid values";
}

}  // namespace
}  // namespace modb
