#include "storage/fault.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/retry.h"
#include "storage/spill.h"

namespace modb {
namespace {

// Every test disarms on both ends so no plan leaks across tests (the
// injector is process-global).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultsEnabled) {
      GTEST_SKIP() << "built without MODB_FAULTS";
    }
    FaultInjector::Global().Disarm();
  }
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultTest, NthReadFailsThenRecovers) {
  PageStore store;
  ASSERT_TRUE(store.AllocatePages(3).ok());
  char page[kPageSize];
  FaultInjector::Global().FailNth(FaultOp::kRead, 1);
  EXPECT_TRUE(store.ReadPage(0, page).ok());   // op 0: clean
  Status failed = store.ReadPage(1, page);     // op 1: injected
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_NE(failed.message().find("injected read fault"), std::string::npos);
  EXPECT_TRUE(store.ReadPage(1, page).ok());   // plan is one-shot
  EXPECT_GE(FaultInjector::Global().OpCount(FaultOp::kRead), 3u);
}

TEST_F(FaultTest, ReadFaultSurfacesThroughBufferPool) {
  PageStore store;
  ASSERT_TRUE(store.AllocatePages(2).ok());
  BufferPool pool(&store, 2);
  FaultInjector::Global().FailNth(FaultOp::kRead, 0);
  auto ref = pool.Pin(0);
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(ref.status().code(), StatusCode::kInternal);
  EXPECT_EQ(pool.stats().read_errors, 1u);
  EXPECT_FALSE(pool.IsResident(0));
  // The failed frame went back on the free list; the pool still works.
  auto retry = pool.Pin(0);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(pool.NumResident(), 1u);
}

TEST_F(FaultTest, WritebackFailureKeepsDirtyPageResident) {
  PageStore store;
  ASSERT_TRUE(store.AllocatePages(2).ok());
  BufferPool pool(&store, 1);
  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    ref->mutable_data()[0] = 'D';
  }
  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);
  // Evicting page 0 requires a writeback, which fails; the pin must fail
  // without losing the dirty bytes.
  auto blocked = pool.Pin(1);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(pool.IsResident(0));
  EXPECT_EQ(pool.stats().write_errors, 1u);

  // Once the device heals, the same eviction succeeds and the bytes land.
  auto ok = pool.Pin(1);
  ASSERT_TRUE(ok.ok()) << ok.status();
  char page[kPageSize];
  ASSERT_TRUE(store.ReadPage(0, page).ok());
  EXPECT_EQ(page[0], 'D');
}

TEST_F(FaultTest, FlushAllSurfacesInjectedWriteFailure) {
  PageStore store;
  ASSERT_TRUE(store.AllocatePages(1).ok());
  BufferPool pool(&store, 1);
  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    ref->MarkDirty();
  }
  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);
  EXPECT_FALSE(pool.FlushAll().ok());
  EXPECT_TRUE(pool.FlushAll().ok());  // retry after the one-shot plan fired
}

TEST_F(FaultTest, SpillWriteFailureSurfacesAsError) {
  PageStore store;
  FaultInjector::Global().FailNth(FaultOp::kWrite, 1);
  // Page 0 writes fine, page 1 fails: SpillBlob must report the error.
  auto loc = SpillBlob(&store, std::string(kSpillPayloadSize * 3, 's'));
  ASSERT_FALSE(loc.ok());
  EXPECT_EQ(loc.status().code(), StatusCode::kInternal);
}

TEST_F(FaultTest, TornSpillWriteIsCaughtByChecksumOnRead) {
  PageStore store;
  std::string blob(kSpillPayloadSize + 500, 't');
  // Tear the second page: header survives (first 16 bytes of the write),
  // but only 100 payload bytes persist, so its CRC cannot match.
  FaultInjector::Global().TearNth(1, kSpillHeaderSize + 100);
  auto loc = SpillBlob(&store, blob);
  ASSERT_TRUE(loc.ok()) << loc.status();  // torn writes are silent

  BufferPool pool(&store, 4);
  auto back = ReadSpilledBlob(&pool, *loc);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("checksum"), std::string::npos)
      << back.status();
}

TEST_F(FaultTest, TornHeaderIsCaughtByMagicCheck) {
  PageStore store;
  // Keep only 3 bytes of the first page: even the magic is incomplete.
  FaultInjector::Global().TearNth(0, 3);
  auto loc = SpillBlob(&store, std::string(64, 'u'));
  ASSERT_TRUE(loc.ok());
  BufferPool pool(&store, 4);
  auto back = ReadSpilledBlob(&pool, *loc);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultTest, TornSpilledValueNeverDecodes) {
  MovingInt mi = *MovingInt::Make(
      {*UInt::Make(*TimeInterval::Make(0, 5, true, true), 7)});
  PageStore store;
  FaultInjector::Global().TearNth(0, kSpillHeaderSize + 4);
  auto spilled = Spilled<MovingInt>::Spill(mi, &store);
  ASSERT_TRUE(spilled.ok());
  BufferPool pool(&store, 4);
  auto loaded = spilled->Load(&pool);
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(spilled->IsLoaded());  // no partial value is ever cached
}

TEST_F(FaultTest, FilePageDeviceReadAndWriteFaults) {
  const std::string path = ::testing::TempDir() + "/modb_fault_device.bin";
  auto device = FilePageDevice::Create(path);
  ASSERT_TRUE(device.ok()) << device.status();
  // Create's header write counted as a write op; re-arm from zero now.
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(device->AllocatePages(2).ok());

  char page[kPageSize];
  FaultInjector::Global().FailNth(FaultOp::kRead, 0);
  EXPECT_FALSE(device->ReadPage(0, page).ok());
  EXPECT_TRUE(device->ReadPage(0, page).ok());

  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);
  EXPECT_FALSE(device->WritePage(0, page).ok());
  EXPECT_TRUE(device->WritePage(0, page).ok());
}

TEST_F(FaultTest, TornFileGrowthFailsLaterReads) {
  const std::string path = ::testing::TempDir() + "/modb_fault_grow.bin";
  auto device = FilePageDevice::Create(path);
  ASSERT_TRUE(device.ok()) << device.status();
  FaultInjector::Global().Disarm();
  // The grow tears after one page's worth of bytes: pages 1..3 are never
  // materialized even though the header admits them.
  FaultInjector::Global().TearNth(0, kPageSize);
  ASSERT_TRUE(device->AllocatePages(4).ok());
  char page[kPageSize];
  EXPECT_TRUE(device->ReadPage(0, page).ok());
  EXPECT_FALSE(device->ReadPage(3, page).ok());
}

TEST_F(FaultTest, ShortReadReportsDataLossWithOffsetAndCounts) {
  const std::string path = ::testing::TempDir() + "/modb_fault_short_read.bin";
  auto device = FilePageDevice::Create(path);
  ASSERT_TRUE(device.ok()) << device.status();
  FaultInjector::Global().Disarm();
  // Tear the growth after one page: pages 1..3 are phantoms the header
  // admits but the file never materialized.
  FaultInjector::Global().TearNth(0, kPageSize);
  ASSERT_TRUE(device->AllocatePages(4).ok());

  char page[kPageSize];
  Status lost = device->ReadPage(3, page);
  ASSERT_FALSE(lost.ok());
  // A short read is permanent data loss — retrying cannot help — and the
  // Status must carry enough detail to locate the hole: file, byte
  // offset (24-byte header + 3 pages), expected and actual counts.
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(IsTransient(lost));
  EXPECT_NE(lost.message().find(path), std::string::npos) << lost;
  EXPECT_NE(lost.message().find("offset " + std::to_string(24 + 3 * kPageSize)),
            std::string::npos)
      << lost;
  EXPECT_NE(lost.message().find("expected " + std::to_string(kPageSize)),
            std::string::npos)
      << lost;
  EXPECT_NE(lost.message().find("got "), std::string::npos) << lost;
}

TEST_F(FaultTest, ExternallyTruncatedFileReadsAsDataLoss) {
  const std::string path = ::testing::TempDir() + "/modb_fault_truncated.bin";
  auto device = FilePageDevice::Create(path);
  ASSERT_TRUE(device.ok()) << device.status();
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(device->AllocatePages(2).ok());
  char page[kPageSize];
  for (std::size_t i = 0; i < kPageSize; ++i) page[i] = 'x';
  ASSERT_TRUE(device->WritePage(1, page).ok());

  // Cut the file mid-way through page 1, as a crashed filesystem might.
  std::filesystem::resize_file(path, 24 + kPageSize + 100);

  Status lost = device->ReadPage(1, page);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.code(), StatusCode::kDataLoss);
  EXPECT_NE(lost.message().find("offset " + std::to_string(24 + kPageSize)),
            std::string::npos)
      << lost;
  EXPECT_NE(lost.message().find("got 100"), std::string::npos) << lost;
  // Page 0 is still intact: the loss report is per-page, not per-file.
  EXPECT_TRUE(device->ReadPage(0, page).ok());
}

TEST_F(FaultTest, TornSaveToFileIsRejectedOnLoad) {
  PageStore store;
  ASSERT_TRUE(store.AllocatePages(3).ok());
  const std::string path = ::testing::TempDir() + "/modb_fault_save.bin";

  FaultInjector::Global().FailNth(FaultOp::kWrite, 0);
  EXPECT_FALSE(store.SaveToFile(path).ok());

  // A torn save persists the header plus one page of a three-page store.
  FaultInjector::Global().TearNth(0, 24 + kPageSize);
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = PageStore::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status();

  // Healed device: the round trip works again.
  ASSERT_TRUE(store.SaveToFile(path).ok());
  EXPECT_TRUE(PageStore::LoadFromFile(path).ok());
}

}  // namespace
}  // namespace modb
