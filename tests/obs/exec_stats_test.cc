#include "obs/exec_stats.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace modb {
namespace obs {
namespace {

ExecStats SampleTree() {
  ExecStats root;
  root.op = "index_join_on_moving_point";
  root.tuples_in = 64;
  root.tuples_out = 7;
  root.predicate_evals = 30;
  root.index_candidates = 30;
  root.index_hits = 7;
  root.index_builds = 1;
  root.units_scanned = 256;
  root.workers = 2;
  root.morsels = 9;
  root.morsels_stolen = 3;
  root.pushdown_skips = 5;
  root.materializations = 1;
  root.wall_ns = 123456789;
  for (int c = 0; c < 2; ++c) {
    ExecStats child;
    child.op = "chunk[" + std::to_string(c) + "]";
    child.tuples_in = 32;
    child.tuples_out = c == 0 ? 3 : 4;
    child.predicate_evals = 15;
    child.index_candidates = 15;
    child.index_hits = child.tuples_out;
    child.units_scanned = 128;
    root.children.push_back(child);
  }
  return root;
}

TEST(ExecStats, JsonRoundTripIsExact) {
  ExecStats root = SampleTree();
  const std::string json = root.ToJson();
  auto parsed = ExecStats::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->op, root.op);
  EXPECT_EQ(parsed->tuples_in, root.tuples_in);
  EXPECT_EQ(parsed->tuples_out, root.tuples_out);
  EXPECT_EQ(parsed->predicate_evals, root.predicate_evals);
  EXPECT_EQ(parsed->index_candidates, root.index_candidates);
  EXPECT_EQ(parsed->index_hits, root.index_hits);
  EXPECT_EQ(parsed->index_builds, root.index_builds);
  EXPECT_EQ(parsed->units_scanned, root.units_scanned);
  EXPECT_EQ(parsed->workers, root.workers);
  EXPECT_EQ(parsed->morsels, root.morsels);
  EXPECT_EQ(parsed->morsels_stolen, root.morsels_stolen);
  EXPECT_EQ(parsed->pushdown_skips, root.pushdown_skips);
  EXPECT_EQ(parsed->materializations, root.materializations);
  EXPECT_EQ(parsed->wall_ns, root.wall_ns);
  ASSERT_EQ(parsed->children.size(), 2u);
  EXPECT_EQ(parsed->children[1].op, "chunk[1]");
  EXPECT_EQ(parsed->children[1].tuples_out, 4u);
  // Serialize-parse-serialize is a fixed point.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ExecStats, ZeroFieldsAreOmittedAndDefaulted) {
  ExecStats s;
  s.op = "select";
  const std::string json = s.ToJson();
  // Only the op should appear; counters at zero stay out of the dump.
  EXPECT_EQ(json.find("tuples_in"), std::string::npos);
  EXPECT_EQ(json.find("wall_ns"), std::string::npos);
  EXPECT_EQ(json.find("children"), std::string::npos);
  auto parsed = ExecStats::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->op, "select");
  EXPECT_EQ(parsed->tuples_in, 0u);
  EXPECT_EQ(parsed->workers, 0u);
  EXPECT_TRUE(parsed->children.empty());
}

TEST(ExecStats, FromJsonRejectsGarbage) {
  EXPECT_FALSE(ExecStats::FromJson("").ok());
  EXPECT_FALSE(ExecStats::FromJson("[]").ok());
  EXPECT_FALSE(ExecStats::FromJson("{\"op\":\"x\",\"bogus\":1}").ok());
  EXPECT_FALSE(ExecStats::FromJson("{\"op\":7}").ok());
  EXPECT_FALSE(ExecStats::FromJson("{\"children\":{}}").ok());
}

TEST(ExecStats, MergeCountersSumsEverythingButWallTime) {
  ExecStats a = SampleTree();
  ExecStats b;
  b.op = "ignored";
  b.tuples_in = 1;
  b.tuples_out = 2;
  b.predicate_evals = 3;
  b.index_candidates = 4;
  b.index_hits = 5;
  b.index_builds = 2;
  b.units_scanned = 6;
  b.workers = 1;
  b.morsels = 7;
  b.morsels_stolen = 2;
  b.pushdown_skips = 8;
  b.materializations = 1;
  b.wall_ns = 999;
  ExecStats child;
  child.op = "chunk[9]";
  b.children.push_back(child);
  a.MergeCountersFrom(b);
  EXPECT_EQ(a.op, "index_join_on_moving_point");  // label untouched
  EXPECT_EQ(a.tuples_in, 65u);
  EXPECT_EQ(a.tuples_out, 9u);
  EXPECT_EQ(a.predicate_evals, 33u);
  EXPECT_EQ(a.index_candidates, 34u);
  EXPECT_EQ(a.index_hits, 12u);
  EXPECT_EQ(a.index_builds, 3u);
  EXPECT_EQ(a.units_scanned, 262u);
  EXPECT_EQ(a.workers, 3u);
  EXPECT_EQ(a.morsels, 16u);
  EXPECT_EQ(a.morsels_stolen, 5u);
  EXPECT_EQ(a.pushdown_skips, 13u);
  EXPECT_EQ(a.materializations, 2u);
  EXPECT_EQ(a.wall_ns, 123456789u);       // wall time is not additive
  EXPECT_EQ(a.children.size(), 2u);       // children untouched
}

// The obs JSON layer underneath: spot-check parse strictness the stats
// round-trip depends on.
TEST(ObsJson, ParserIsStrict) {
  EXPECT_TRUE(JsonValue::Parse("{\"a\":[1,2.5,-3e2,true,null,\"s\"]}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());   // trailing comma
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} x").ok());  // trailing junk
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());      // wrong quotes
  EXPECT_FALSE(JsonValue::Parse("+1").ok());
  auto esc = JsonValue::Parse("\"a\\u0041\\n\\\"b\"");
  ASSERT_TRUE(esc.ok());
  EXPECT_EQ(esc->string_value(), "aA\n\"b");
  auto num = JsonValue::Parse("9007199254740992");  // 2^53 round-trips
  ASSERT_TRUE(num.ok());
  EXPECT_EQ(num->uint_value(), 9007199254740992ull);
}

}  // namespace
}  // namespace obs
}  // namespace modb
