#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/range_set.h"
#include "db/parallel.h"
#include "obs/json.h"
#include "storage/recovery.h"
#include "validate/validate.h"

namespace modb {
namespace obs {
namespace {

#ifndef MODB_NO_METRICS

TEST(Counter, IncValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsByBitWidth) {
  Histogram h;
  h.Record(0);     // bit width 0
  h.Record(1);     // 1
  h.Record(2);     // 2
  h.Record(3);     // 2
  h.Record(4);     // 3
  h.Record(1024);  // 11
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 1024);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(MetricsRegistry, SameNameSamePointer) {
  Metrics m;
  Counter* a = m.counter("x");
  Counter* b = m.counter("x");
  Counter* c = m.counter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(m.histogram("h"), m.histogram("h"));
}

TEST(MetricsRegistry, SnapshotsAreNameSorted) {
  Metrics m;
  m.counter("zulu")->Inc(1);
  m.counter("alpha")->Inc(2);
  m.counter("mike")->Inc(3);
  auto snap = m.SnapshotCounters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mike");
  EXPECT_EQ(snap[2].name, "zulu");
  EXPECT_EQ(snap[0].value, 2u);
}

TEST(MetricsRegistry, ResetAllKeepsRegistrations) {
  Metrics m;
  Counter* c = m.counter("c");
  c->Inc(7);
  m.histogram("h")->Record(9);
  m.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(m.counter("c"), c);  // still registered
  EXPECT_EQ(m.histogram("h")->count(), 0u);
}

// The correctness property the whole hot-path design rests on: relaxed
// atomic increments from ParallelFor workers lose nothing — the final
// counter equals the serial total at every chunking.
TEST(MetricsRegistry, CountsUnderParallelForMatchSerial) {
  Metrics m;
  ThreadPool pool(4);
  const std::size_t n = 10000;
  for (std::size_t chunks : {1u, 2u, 7u, 64u}) {
    Counter* c = m.counter("parallel_sum");
    c->Reset();
    ParallelFor(pool, n, chunks,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  // Local-accumulate-then-flush, as the library does.
                  std::uint64_t local = 0;
                  for (std::size_t i = begin; i < end; ++i) local += i;
                  c->Inc(local);
                });
    EXPECT_EQ(c->value(), std::uint64_t(n) * (n - 1) / 2) << chunks;
  }
}

TEST(MetricsRegistry, ScopedTimerRecords) {
  Metrics m;
  Histogram* h = m.histogram("t");
  { ScopedTimer timer(h); }
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistry, MacrosHitTheGlobalRegistry) {
  Counter* c = Metrics::Global().counter("test.macro_counter");
  const std::uint64_t before = c->value();
  for (int i = 0; i < 5; ++i) MODB_COUNTER_INC("test.macro_counter");
  MODB_COUNTER_ADD("test.macro_counter", 10);
  EXPECT_EQ(c->value(), before + 15);
}

// The recovery and validation subsystems must flush their counters to
// the global registry — CI dashboards (tools/verify.sh) read them from
// the ToJson() export, so a silently-dead counter is an observability
// regression even when the code paths themselves work.
TEST(MetricsRegistry, RecoveryAndValidationCountersFlush) {
  Metrics& g = Metrics::Global();
  const std::uint64_t checks0 = g.counter("validate.checks")->value();
  const std::uint64_t violations0 = g.counter("validate.violations")->value();
  const std::uint64_t replays0 =
      g.counter("storage.recovery.replays")->value();
  const std::uint64_t orphans0 =
      g.counter("storage.recovery.orphans_reclaimed")->value();
  const std::uint64_t rejected0 =
      g.counter("storage.recovery.root_rejected")->value();

  // A failing invariant check bumps both validate counters.
  Periods overlapping = Periods::MakeTrusted(
      {*TimeInterval::Make(0, 5, true, false),
       *TimeInterval::Make(3, 8, true, false)});
  EXPECT_FALSE(validate::ValidateRangeSet(overlapping).ok());
  EXPECT_GT(g.counter("validate.checks")->value(), checks0);
  EXPECT_GT(g.counter("validate.violations")->value(), violations0);

  // One commit + abandoned restage + reopen: the recovery replay runs
  // and reclaims the abandoned shadow pages as orphans.
  const std::string path =
      ::testing::TempDir() + "/modb_metrics_recovery.bin";
  {
    auto store = VersionedSpillStore::Create(path);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store->StageBlob(std::string(9000, 'm'),
                                 SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->RestageBlob(0, std::string(9000, 'n'),
                                   SpillValueType::kOpaque).ok());
    ASSERT_TRUE(store->Abandon().ok());
  }
  {
    auto reopened = VersionedSpillStore::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_GT(reopened->recovery_info().orphans_reclaimed, 0u);
  }
  EXPECT_GT(g.counter("storage.recovery.replays")->value(), replays0);
  EXPECT_GT(g.counter("storage.recovery.orphans_reclaimed")->value(),
            orphans0);

  // A garbage root slot bumps the rejection counter on the next open.
  {
    auto dev = FilePageDevice::Open(path);
    ASSERT_TRUE(dev.ok());
    char junk[kPageSize];
    for (std::size_t i = 0; i < kPageSize; ++i) junk[i] = char(i * 3 + 1);
    ASSERT_TRUE(dev->WritePage(kRootSlotPages[0], junk).ok());
  }
  ASSERT_TRUE(VersionedSpillStore::Open(path).ok());
  EXPECT_GT(g.counter("storage.recovery.root_rejected")->value(), rejected0);
}

#else  // MODB_NO_METRICS

TEST(MetricsRegistry, CompiledOutStubsAreInert) {
  Counter* c = Metrics::Global().counter("anything");
  c->Inc(100);
  EXPECT_EQ(c->value(), 0u);
  MODB_COUNTER_INC("anything");
  EXPECT_EQ(c->value(), 0u);
  EXPECT_TRUE(Metrics::Global().SnapshotCounters().empty());
  EXPECT_TRUE(Metrics::Global().SnapshotHistograms().empty());
}

#endif  // MODB_NO_METRICS

// In both builds ToJson() must be a valid document with the two
// top-level sections (empty when compiled out) — the bench JSON export
// and tools/json_check rely on this.
TEST(MetricsRegistry, ToJsonIsValidJson) {
#ifndef MODB_NO_METRICS
  Metrics m;
  m.counter("a.b")->Inc(3);
  m.histogram("c\"quoted\"")->Record(5);
  const std::string json = m.ToJson();
#else
  const std::string json = Metrics::Global().ToJson();
#endif
  auto doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << doc.status() << " in " << json;
  ASSERT_EQ(doc->kind(), JsonValue::Kind::kObject);
  const JsonValue* counters = doc->Find("counters");
  const JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(histograms, nullptr);
#ifndef MODB_NO_METRICS
  const JsonValue* a = counters->Find("a.b");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->uint_value(), 3u);
  const JsonValue* h = histograms->Find("c\"quoted\"");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->uint_value(), 1u);
  EXPECT_EQ(h->Find("sum")->uint_value(), 5u);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace modb
