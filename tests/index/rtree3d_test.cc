#include "index/rtree3d.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace modb {
namespace {

Cube MakeCube(double x, double y, double t, double ext) {
  return Cube(Rect(x, y, x + ext, y + ext), t, t + ext);
}

TEST(RTree3D, EmptyTree) {
  RTree3D tree = RTree3D::BulkLoad({});
  EXPECT_EQ(tree.NumEntries(), 0u);
  EXPECT_TRUE(tree.Query(MakeCube(0, 0, 0, 100)).empty());
}

TEST(RTree3D, SingleEntry) {
  RTree3D tree = RTree3D::BulkLoad({{MakeCube(5, 5, 5, 1), 42}});
  auto hits = tree.Query(MakeCube(5.5, 5.5, 5.5, 0.1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.Query(MakeCube(50, 50, 50, 1)).empty());
}

TEST(RTree3D, TouchingBoxesCount) {
  RTree3D tree = RTree3D::BulkLoad({{MakeCube(0, 0, 0, 1), 1}});
  // Shares exactly the corner point (1,1,1).
  EXPECT_EQ(tree.Query(MakeCube(1, 1, 1, 1)).size(), 1u);
}

TEST(RTree3D, TimeDimensionFilters) {
  RTree3D tree = RTree3D::BulkLoad(
      {{Cube(Rect(0, 0, 1, 1), 0, 1), 1}, {Cube(Rect(0, 0, 1, 1), 10, 11), 2}});
  auto hits = tree.Query(Cube(Rect(0, 0, 1, 1), 10.5, 10.6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2);
}

class RTreeBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(RTreeBruteForce, MatchesLinearScan) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> pos(0, 100);
  std::uniform_real_distribution<double> ext(0.5, 8);
  std::vector<RTree3D::Entry> entries;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    entries.push_back({MakeCube(pos(rng), pos(rng), pos(rng), ext(rng)), i});
  }
  RTree3D tree = RTree3D::BulkLoad(entries, 8);
  EXPECT_EQ(tree.NumEntries(), std::size_t(n));
  EXPECT_GE(tree.Height(), 2);
  for (int q = 0; q < 20; ++q) {
    Cube query = MakeCube(pos(rng), pos(rng), pos(rng), ext(rng) * 3);
    std::vector<int64_t> expected;
    for (const auto& e : entries) {
      if (Cube::Intersect(e.cube, query)) expected.push_back(e.id);
    }
    std::vector<int64_t> got = tree.Query(query);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeBruteForce, ::testing::Range(0, 10));

TEST(RTree3D, VisitorShortForm) {
  RTree3D tree = RTree3D::BulkLoad(
      {{MakeCube(0, 0, 0, 1), 1}, {MakeCube(2, 2, 2, 1), 2}});
  int count = 0;
  tree.QueryVisit(MakeCube(-1, -1, -1, 10), [&count](int64_t) { ++count; });
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace modb
