#include "index/rtree3d.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/simd.h"

namespace modb {
namespace {

Cube MakeCube(double x, double y, double t, double ext) {
  return Cube(Rect(x, y, x + ext, y + ext), t, t + ext);
}

TEST(RTree3D, EmptyTree) {
  RTree3D tree = RTree3D::BulkLoad({});
  EXPECT_EQ(tree.NumEntries(), 0u);
  EXPECT_TRUE(tree.Query(MakeCube(0, 0, 0, 100)).empty());
}

TEST(RTree3D, SingleEntry) {
  RTree3D tree = RTree3D::BulkLoad({{MakeCube(5, 5, 5, 1), 42}});
  auto hits = tree.Query(MakeCube(5.5, 5.5, 5.5, 0.1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42);
  EXPECT_TRUE(tree.Query(MakeCube(50, 50, 50, 1)).empty());
}

TEST(RTree3D, TouchingBoxesCount) {
  RTree3D tree = RTree3D::BulkLoad({{MakeCube(0, 0, 0, 1), 1}});
  // Shares exactly the corner point (1,1,1).
  EXPECT_EQ(tree.Query(MakeCube(1, 1, 1, 1)).size(), 1u);
}

TEST(RTree3D, TimeDimensionFilters) {
  RTree3D tree = RTree3D::BulkLoad(
      {{Cube(Rect(0, 0, 1, 1), 0, 1), 1}, {Cube(Rect(0, 0, 1, 1), 10, 11), 2}});
  auto hits = tree.Query(Cube(Rect(0, 0, 1, 1), 10.5, 10.6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2);
}

class RTreeBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(RTreeBruteForce, MatchesLinearScan) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> pos(0, 100);
  std::uniform_real_distribution<double> ext(0.5, 8);
  std::vector<RTree3D::Entry> entries;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    entries.push_back({MakeCube(pos(rng), pos(rng), pos(rng), ext(rng)), i});
  }
  RTree3D tree = RTree3D::BulkLoad(entries, 8);
  EXPECT_EQ(tree.NumEntries(), std::size_t(n));
  EXPECT_GE(tree.Height(), 2);
  for (int q = 0; q < 20; ++q) {
    Cube query = MakeCube(pos(rng), pos(rng), pos(rng), ext(rng) * 3);
    std::vector<int64_t> expected;
    for (const auto& e : entries) {
      if (Cube::Intersect(e.cube, query)) expected.push_back(e.id);
    }
    std::vector<int64_t> got = tree.Query(query);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeBruteForce, ::testing::Range(0, 10));

// Reference pointer-based STR R-tree (the pre-flattening
// implementation, ported verbatim): same Sort-Tile-Recursive grouping,
// same recursive DFS, so the flat level-ordered tree must reproduce its
// emitted id sequence exactly — not just the same set.
class PointerRTree {
 public:
  static PointerRTree Build(std::vector<RTree3D::Entry> entries, int fanout) {
    fanout = std::clamp(fanout, 2, 32);
    PointerRTree tree;
    tree.entries_ = std::move(entries);
    if (tree.entries_.empty()) return tree;
    std::vector<int32_t> ids(tree.entries_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = int32_t(i);
    auto entry_cube = [&tree](int32_t i) -> const Cube& {
      return tree.entries_[std::size_t(i)].cube;
    };
    std::vector<int32_t> level;
    for (auto& group : StrGroups(std::move(ids), fanout, entry_cube)) {
      Node node;
      node.leaf = true;
      node.children = std::move(group);
      for (int32_t e : node.children) node.cube.Extend(entry_cube(e));
      tree.nodes_.push_back(std::move(node));
      level.push_back(int32_t(tree.nodes_.size()) - 1);
    }
    auto node_cube = [&tree](int32_t i) -> const Cube& {
      return tree.nodes_[std::size_t(i)].cube;
    };
    while (level.size() > 1) {
      const std::size_t prev = level.size();
      auto groups = StrGroups(std::move(level), fanout, node_cube);
      if (groups.size() >= prev) {
        // Same degenerate-tiling guard as RTree3D::BulkLoad so the two
        // builds keep identical shapes.
        std::vector<int32_t> seq;
        seq.reserve(prev);
        for (auto& g : groups) seq.insert(seq.end(), g.begin(), g.end());
        groups.clear();
        for (std::size_t i = 0; i < seq.size(); i += std::size_t(fanout)) {
          const std::size_t j = std::min(seq.size(), i + std::size_t(fanout));
          groups.emplace_back(seq.begin() + i, seq.begin() + j);
        }
      }
      std::vector<int32_t> next;
      for (auto& group : groups) {
        Node node;
        node.leaf = false;
        node.children = std::move(group);
        for (int32_t c : node.children) node.cube.Extend(node_cube(c));
        tree.nodes_.push_back(std::move(node));
        next.push_back(int32_t(tree.nodes_.size()) - 1);
      }
      level = std::move(next);
    }
    return tree;
  }

  std::vector<int64_t> Query(const Cube& query) const {
    std::vector<int64_t> out;
    if (!nodes_.empty()) VisitRec(int32_t(nodes_.size()) - 1, query, &out);
    return out;
  }

 private:
  struct Node {
    Cube cube;
    bool leaf = true;
    std::vector<int32_t> children;
  };

  static double CenterX(const Cube& c) { return (c.rect.min_x + c.rect.max_x) / 2; }
  static double CenterY(const Cube& c) { return (c.rect.min_y + c.rect.max_y) / 2; }
  static double CenterT(const Cube& c) { return (c.min_t + c.max_t) / 2; }

  template <typename GetCube>
  static std::vector<std::vector<int32_t>> StrGroups(std::vector<int32_t> items,
                                                     int fanout,
                                                     GetCube cube_of) {
    const std::size_t n = items.size();
    const std::size_t num_groups = (n + fanout - 1) / std::size_t(fanout);
    const int s = std::max(1, int(std::ceil(std::cbrt(double(num_groups)))));
    std::sort(items.begin(), items.end(), [&](int32_t a, int32_t b) {
      return CenterX(cube_of(a)) < CenterX(cube_of(b));
    });
    std::vector<std::vector<int32_t>> groups;
    const std::size_t slab = (n + s - 1) / std::size_t(s);
    for (std::size_t x0 = 0; x0 < n; x0 += slab) {
      std::size_t x1 = std::min(n, x0 + slab);
      std::sort(items.begin() + x0, items.begin() + x1,
                [&](int32_t a, int32_t b) {
                  return CenterY(cube_of(a)) < CenterY(cube_of(b));
                });
      const std::size_t run = (x1 - x0 + s - 1) / std::size_t(s);
      for (std::size_t y0 = x0; y0 < x1; y0 += run) {
        std::size_t y1 = std::min(x1, y0 + run);
        std::sort(items.begin() + y0, items.begin() + y1,
                  [&](int32_t a, int32_t b) {
                    return CenterT(cube_of(a)) < CenterT(cube_of(b));
                  });
        for (std::size_t t0 = y0; t0 < y1; t0 += std::size_t(fanout)) {
          std::size_t t1 = std::min(y1, t0 + std::size_t(fanout));
          groups.emplace_back(items.begin() + t0, items.begin() + t1);
        }
      }
    }
    return groups;
  }

  void VisitRec(int32_t node_idx, const Cube& query,
                std::vector<int64_t>* out) const {
    const Node& node = nodes_[std::size_t(node_idx)];
    if (!Cube::Intersect(node.cube, query)) return;
    if (node.leaf) {
      for (int32_t e : node.children) {
        const RTree3D::Entry& entry = entries_[std::size_t(e)];
        if (Cube::Intersect(entry.cube, query)) out->push_back(entry.id);
      }
      return;
    }
    for (int32_t c : node.children) VisitRec(c, query, out);
  }

  std::vector<RTree3D::Entry> entries_;
  std::vector<Node> nodes_;
};

std::vector<RTree3D::Entry> RandomEntries(std::mt19937_64* rng, int n) {
  std::uniform_real_distribution<double> pos(0, 100);
  std::uniform_real_distribution<double> ext(0.5, 8);
  std::vector<RTree3D::Entry> entries;
  entries.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(
        {MakeCube(pos(*rng), pos(*rng), pos(*rng), ext(*rng)), i});
  }
  return entries;
}

// The flat tree must emit the exact same id sequence as the pointer
// tree's recursive DFS (BFS flatten + reverse stack push preserves the
// traversal order, not just the result set).
TEST(RTree3D, FlattenMatchesPointerTreeVisitSequence) {
  for (int fanout : {2, 4, 8, 16, 27}) {
    for (int n : {1, 7, 63, 400}) {
      std::mt19937_64 rng(std::uint64_t(fanout * 1000 + n));
      std::vector<RTree3D::Entry> entries = RandomEntries(&rng, n);
      RTree3D flat = RTree3D::BulkLoad(entries, fanout);
      PointerRTree ref = PointerRTree::Build(entries, fanout);
      std::uniform_real_distribution<double> pos(0, 100);
      std::uniform_real_distribution<double> ext(0.5, 8);
      for (int q = 0; q < 25; ++q) {
        Cube query = MakeCube(pos(rng), pos(rng), pos(rng), ext(rng) * 3);
        std::vector<int64_t> got;
        flat.QueryVisit(query, [&got](int64_t id) { got.push_back(id); });
        EXPECT_EQ(got, ref.Query(query))
            << "fanout=" << fanout << " n=" << n << " q=" << q;
      }
    }
  }
}

// Differential check of the two hit-mask kernels: the AVX2
// specialization must produce the exact visit sequence of the scalar
// core (same comparisons, no reordering). Skipped (scalar vs scalar)
// on machines without AVX2.
TEST(RTree3D, SimdMatchesScalarVisitSequence) {
  std::mt19937_64 rng(99);
  std::vector<RTree3D::Entry> entries = RandomEntries(&rng, 500);
  RTree3D tree = RTree3D::BulkLoad(entries, 16);
  std::uniform_real_distribution<double> pos(0, 100);
  std::uniform_real_distribution<double> ext(0.5, 8);
  std::vector<Cube> queries;
  for (int q = 0; q < 50; ++q) {
    queries.push_back(MakeCube(pos(rng), pos(rng), pos(rng), ext(rng) * 3));
  }
  // Degenerate windows too: empty-intersection and all-covering.
  queries.push_back(MakeCube(500, 500, 500, 1));
  queries.push_back(MakeCube(-100, -100, -100, 400));
  for (const Cube& query : queries) {
    simd::SetSimdMode(simd::Mode::kScalar);
    std::vector<int64_t> scalar;
    tree.QueryVisit(query, [&scalar](int64_t id) { scalar.push_back(id); });
    simd::SetSimdMode(simd::Mode::kAvx2);
    std::vector<int64_t> vec;
    tree.QueryVisit(query, [&vec](int64_t id) { vec.push_back(id); });
    simd::SetSimdMode(simd::Mode::kAuto);
    EXPECT_EQ(scalar, vec);
  }
}

TEST(RTree3D, VisitorShortForm) {
  RTree3D tree = RTree3D::BulkLoad(
      {{MakeCube(0, 0, 0, 1), 1}, {MakeCube(2, 2, 2, 1), 2}});
  int count = 0;
  tree.QueryVisit(MakeCube(-1, -1, -1, 10), [&count](int64_t) { ++count; });
  EXPECT_EQ(count, 2);
}

// The caller-buffer overload fills the provided vector (clearing it
// first) and matches the allocating overload exactly.
TEST(RTree3D, CallerBufferOverload) {
  std::mt19937_64 rng(7);
  RTree3D tree = RTree3D::BulkLoad(RandomEntries(&rng, 300), 8);
  std::uniform_real_distribution<double> pos(0, 100);
  std::vector<int64_t> buf = {111, 222};  // stale content must be cleared
  for (int q = 0; q < 10; ++q) {
    Cube query = MakeCube(pos(rng), pos(rng), pos(rng), 12);
    tree.Query(query, &buf);
    EXPECT_EQ(buf, tree.Query(query));
  }
}

}  // namespace
}  // namespace modb
