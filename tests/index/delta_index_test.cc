// IndexSnapshot / IndexLayersView: the LSM layer stack must visit the
// same candidate set as one bulk-loaded tree over the same entries, no
// matter how the entries are split across base/delta/mem — and the
// off-lock merge protocol must reject a plan whose generation a seal
// overtook.

#include "index/delta_index.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "index/rtree3d.h"
#include "spatial/bbox.h"

namespace modb {
namespace {

Cube UnitCube(double x, double y, double t) {
  return Cube(Rect(x, y, x + 1, y + 1), t, t + 1);
}

std::vector<RTree3D::Entry> MakeEntries(int n, std::uint64_t seed) {
  std::vector<RTree3D::Entry> entries;
  std::uint64_t s = seed;
  for (int i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = double((s >> 33) % 100);
    const double y = double((s >> 13) % 100);
    const double t = double(i % 50);
    entries.push_back({UnitCube(x, y, t), std::int64_t(i % 17)});
  }
  return entries;
}

std::vector<std::int64_t> Collect(const IndexLayersView& view,
                                  const Cube& query) {
  std::vector<std::int64_t> ids;
  view.QueryVisit(query, [&ids](std::int64_t id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TEST(DeltaIndex, AnyLayeringMatchesASingleBulkTree) {
  const std::vector<RTree3D::Entry> entries = MakeEntries(300, 5);
  RTree3D single = RTree3D::BulkLoad(entries, 16);
  const IndexLayersView single_view = IndexLayersView::Single(&single);

  // Split 60% into base, 30% into delta, 10% into mem.
  IndexSnapshot stack;
  const std::size_t base_end = 180, delta_end = 270;
  stack.ResetBase(
      std::vector<RTree3D::Entry>(entries.begin(), entries.begin() + base_end),
      16);
  stack.AppendToDelta(
      std::vector<RTree3D::Entry>(entries.begin() + base_end,
                                  entries.begin() + delta_end),
      16);
  stack.SetMem(
      std::vector<RTree3D::Entry>(entries.begin() + delta_end, entries.end()));

  std::uint64_t probe_seed = 99;
  for (int i = 0; i < 50; ++i) {
    probe_seed = probe_seed * 6364136223846793005ULL + 1442695040888963407ULL;
    Cube q = UnitCube(double((probe_seed >> 33) % 100),
                      double((probe_seed >> 13) % 100), double(i));
    q.rect.max_x += 10;
    q.rect.max_y += 10;
    q.max_t += 10;
    EXPECT_EQ(Collect(single_view, q), Collect(stack.View(), q))
        << "probe " << i;
  }
  // And after an inline compaction the union is unchanged.
  stack.MergeInline(16);
  EXPECT_EQ(0u, stack.DeltaEntries());
  for (int i = 0; i < 50; ++i) {
    Cube q = UnitCube(double(i % 100), double((i * 7) % 100), double(i % 50));
    q.rect.max_x += 15;
    q.rect.max_y += 15;
    q.max_t += 15;
    EXPECT_EQ(Collect(single_view, q), Collect(stack.View(), q));
  }
}

TEST(DeltaIndex, StaleMergePlanIsRejected) {
  const std::vector<RTree3D::Entry> entries = MakeEntries(100, 3);
  IndexSnapshot stack;
  stack.AppendToDelta(entries, 16);

  std::optional<MergePlan> plan = stack.PrepareMerge();
  ASSERT_TRUE(plan.has_value());

  // A seal event lands between prepare and apply: the generation moved,
  // so the built tree would be missing the new entries.
  stack.AppendToDelta(MakeEntries(10, 4), 16);

  RTree3D merged = RTree3D::BulkLoad(plan->entries, 16);
  EXPECT_FALSE(stack.ApplyMerge(*plan, std::move(merged)));
  EXPECT_EQ(0u, stack.BaseEntries()) << "a stale merge must not install";
  EXPECT_EQ(110u, stack.DeltaEntries());

  // Re-prepared against the current generation, it lands.
  plan = stack.PrepareMerge();
  ASSERT_TRUE(plan.has_value());
  RTree3D remerged = RTree3D::BulkLoad(plan->entries, 16);
  EXPECT_TRUE(stack.ApplyMerge(*plan, std::move(remerged)));
  EXPECT_EQ(110u, stack.BaseEntries());
  EXPECT_EQ(0u, stack.DeltaEntries());
  EXPECT_EQ(1u, stack.merges());
}

TEST(DeltaIndex, EmptyDeltaHasNothingToMerge) {
  IndexSnapshot stack;
  EXPECT_FALSE(stack.PrepareMerge().has_value());
  stack.SetMem(MakeEntries(5, 9));
  EXPECT_FALSE(stack.PrepareMerge().has_value())
      << "mem is not merge input - only sealed (delta) entries compact";
}

}  // namespace
}  // namespace modb
