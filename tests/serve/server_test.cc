// End-to-end serving tests against a real server on an ephemeral port:
// the concurrent-client determinism contract (byte-identical result
// blocks across clients and thread budgets, equal to direct library
// execution), the ValidateParallelOptions round-trip to a client-visible
// kInvalidArgument, typed overload rejections that never hang, malformed
// frames over a raw socket, graceful shutdown with traffic in flight,
// and AdmissionController unit tests driven without sockets.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "db/modb.h"
#include "gen/flights_gen.h"
#include "serve/client.h"
#include "serve/net.h"
#include "serve/wire.h"

namespace modb {
namespace serve {
namespace {

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// AdmissionController (no sockets).
// ---------------------------------------------------------------------------

TEST(AdmissionController, NonPositiveCostIsInvalidArgument) {
  AdmissionController ac(4, 4);
  EXPECT_EQ(ac.Acquire(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ac.Acquire(-3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ac.in_use(), 0);
}

TEST(AdmissionController, CostBeyondBudgetRejectsImmediately) {
  AdmissionController ac(4, 4);
  Status s = ac.Acquire(5);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("budget"), std::string::npos);
  EXPECT_EQ(ac.rejected(), 1u);
  EXPECT_EQ(ac.in_use(), 0);
}

TEST(AdmissionController, FullQueueRejectsInsteadOfWaiting) {
  AdmissionController ac(1, 0);
  ASSERT_TRUE(ac.Acquire(1).ok());
  // The budget is taken and the queue holds nobody: an admissible-sized
  // query must be rejected, not parked.
  Status s = ac.Acquire(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("queue"), std::string::npos);
  EXPECT_EQ(ac.rejected(), 1u);
  ac.Release(1);
  EXPECT_EQ(ac.in_use(), 0);
}

TEST(AdmissionController, WaiterIsAdmittedOnRelease) {
  AdmissionController ac(2, 2);
  ASSERT_TRUE(ac.Acquire(2).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(ac.Acquire(1).ok());
    admitted = true;
    ac.Release(1);
  });
  ASSERT_TRUE(WaitUntil([&] { return ac.queued() == 1; }));
  EXPECT_FALSE(admitted.load());
  ac.Release(2);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ac.in_use(), 0);
  EXPECT_EQ(ac.rejected(), 0u);
}

TEST(AdmissionController, WaitersAdmitInFifoOrder) {
  AdmissionController ac(2, 4);
  ASSERT_TRUE(ac.Acquire(2).ok());

  std::mutex order_mu;
  std::vector<int> order;
  auto worker = [&](int id, std::int64_t cost) {
    ASSERT_TRUE(ac.Acquire(cost).ok());
    {
      std::lock_guard lock(order_mu);
      order.push_back(id);
    }
    ac.Release(cost);
  };
  // First waiter is expensive, second is cheap: FIFO means the cheap one
  // must NOT jump the queue when capacity frees up.
  std::thread w1([&] { worker(1, 2); });
  ASSERT_TRUE(WaitUntil([&] { return ac.queued() == 1; }));
  std::thread w2([&] { worker(2, 1); });
  ASSERT_TRUE(WaitUntil([&] { return ac.queued() == 2; }));

  ac.Release(2);
  w1.join();
  w2.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(ac.in_use(), 0);
}

// ---------------------------------------------------------------------------
// Server fixture: planes resident, index prebuilt, ephemeral port.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    FlightsOptions gen;
    gen.num_flights = 12;
    gen.seed = 99;
    Result<Relation> planes = GeneratePlanes(gen);
    ASSERT_TRUE(planes.ok()) << planes.status();
    ASSERT_TRUE(db_.Register(*std::move(planes)).ok());
    ASSERT_TRUE(db_.BuildIndex("planes", "flight").ok());
    server_ = std::make_unique<Server>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Client MustConnect() {
    Result<Client> client = Connect();
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }
  Result<Client> Connect() {
    return Client::Connect("127.0.0.1", server_->port());
  }

  Db db_;
  std::unique_ptr<Server> server_;
};

QueryRequest Q1Select() {
  QueryRequest req;
  req.kind = QueryRequest::Kind::kSelect;
  req.relation = "planes";
  FilterSpec len;
  len.kind = FilterSpec::Kind::kTrajectoryLengthAtLeast;
  len.attr = "flight";
  len.threshold = 5000.0;
  req.filters = {len};
  return req;
}

QueryRequest Q2IndexJoin() {
  QueryRequest req;
  req.kind = QueryRequest::Kind::kIndexJoin;
  req.relation = "planes";
  req.join_relation = "planes";
  req.attr = "flight";
  req.join_attr = "flight";
  req.distance = 500.0;
  req.distinct_pairs = true;
  return req;
}

QueryRequest BatchRequest(QueryRequest::Kind kind) {
  QueryRequest req;
  req.kind = kind;
  req.relation = "planes";
  req.attr = "flight";
  for (double t = 0; t <= 24.0; t += 0.5) req.instants.push_back(t);
  return req;
}

TEST_F(ServerTest, EveryQueryKindMatchesDirectExecution) {
  StartServer();
  QueryRequest project;
  project.kind = QueryRequest::Kind::kProject;
  project.relation = "planes";
  project.project = {"airline", "id"};

  const std::vector<QueryRequest> requests = {
      Q1Select(), project, Q2IndexJoin(),
      BatchRequest(QueryRequest::Kind::kAtInstantBatch),
      BatchRequest(QueryRequest::Kind::kPresentBatch)};

  Client client = MustConnect();
  for (const QueryRequest& req : requests) {
    Result<QueryResult> direct = db_.Run(req);
    ASSERT_TRUE(direct.ok()) << direct.status();
    Result<std::string> expect = EncodeResultBlock(*direct);
    ASSERT_TRUE(expect.ok());

    Result<Client::Reply> reply = client.Query(req);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_TRUE(reply->status.ok()) << reply->status;
    EXPECT_EQ(reply->result_block, *expect) << "kind " << int(req.kind);
    EXPECT_FALSE(reply->result.stats.op.empty());
  }
}

TEST_F(ServerTest, EightConcurrentClientsAreByteIdentical) {
  StartServer();
  const QueryRequest base = Q1Select();
  Result<QueryResult> direct = db_.Run(base);
  ASSERT_TRUE(direct.ok()) << direct.status();
  Result<std::string> expect = EncodeResultBlock(*direct);
  ASSERT_TRUE(expect.ok());

  constexpr int kClients = 8;
  std::vector<std::string> blocks(kClients);
  std::vector<Status> verdicts(kClients, Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Result<Client> client =
          Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        verdicts[i] = client.status();
        return;
      }
      QueryRequest req = base;
      req.num_threads = (i % 4) + 1;  // mixed per-client thread budgets
      Result<Client::Reply> reply = client->Query(req);
      if (!reply.ok()) {
        verdicts[i] = reply.status();
      } else if (!reply->status.ok()) {
        verdicts[i] = reply->status;
      } else {
        blocks[i] = reply->result_block;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(verdicts[i].ok()) << "client " << i << ": " << verdicts[i];
    EXPECT_EQ(blocks[i], *expect) << "client " << i;
  }
}

TEST_F(ServerTest, InvalidThreadCountRoundTripsAsInvalidArgument) {
  StartServer();
  Client client = MustConnect();
  QueryRequest req = Q1Select();
  req.num_threads = 5000;  // past kMaxQueryThreads = 4096
  Result<Client::Reply> reply = client.Query(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reply->status.message().find("num_threads"), std::string::npos)
      << reply->status;
  EXPECT_NE(reply->status.message().find("4096"), std::string::npos)
      << reply->status;

  // An i64 far outside int range must clamp into the same verdict, and
  // the connection must survive both errors.
  req.num_threads = std::int64_t{1} << 40;
  reply = client.Query(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kInvalidArgument);

  req.num_threads = 1;
  reply = client.Query(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok()) << reply->status;
}

TEST_F(ServerTest, UnknownRelationIsNotFound) {
  StartServer();
  Client client = MustConnect();
  QueryRequest req;
  req.relation = "ships";
  Result<Client::Reply> reply = client.Query(req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kNotFound);
  EXPECT_NE(reply->status.message().find("ships"), std::string::npos);
}

TEST_F(ServerTest, NonQueryFrameGetsTypedReplyAndConnectionSurvives) {
  StartServer();
  Result<int> fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  ASSERT_TRUE(
      WriteFrame(*fd, FrameType::kReply, EncodeQueryRequest(Q1Select()))
          .ok());
  Result<std::optional<Frame>> frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  Result<WireReply> reply = DecodeReply((*frame)->payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kInvalidArgument);

  // The header was well-formed, so the stream is still in sync: a real
  // query on the same connection succeeds.
  ASSERT_TRUE(
      WriteFrame(*fd, FrameType::kQuery, EncodeQueryRequest(Q1Select()))
          .ok());
  frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  reply = DecodeReply((*frame)->payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok()) << reply->status;
  CloseFd(*fd);
}

TEST_F(ServerTest, GarbageMagicGetsDataLossReplyThenClose) {
  StartServer();
  Result<int> fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  const char garbage[kFrameHeaderBytes] = {'X', 'Y', 'Z', 'W', 0, 0,
                                           0,   0,   0,   0,   0, 0};
  ASSERT_TRUE(WriteFull(*fd, garbage, sizeof garbage).ok());

  Result<std::optional<Frame>> frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  Result<WireReply> reply = DecodeReply((*frame)->payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kDataLoss);

  // Resynchronization is hopeless; the server must hang up.
  frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_FALSE(frame->has_value());
  CloseFd(*fd);
}

TEST_F(ServerTest, OversizedLengthGetsTypedReplyThenClose) {
  StartServer();
  Result<int> fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  // Patch the length field past the cap (EncodeFrameHeader itself would
  // happily write it — the cap is enforced on decode).
  std::string bytes = EncodeFrameHeader(FrameType::kQuery, 0);
  const std::uint32_t oversized = kMaxFramePayload + 1;
  bytes[8] = char(oversized & 0xff);
  bytes[9] = char((oversized >> 8) & 0xff);
  bytes[10] = char((oversized >> 16) & 0xff);
  bytes[11] = char((oversized >> 24) & 0xff);
  ASSERT_TRUE(WriteFull(*fd, bytes.data(), bytes.size()).ok());

  Result<std::optional<Frame>> frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  Result<WireReply> reply = DecodeReply((*frame)->payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kInvalidArgument);

  frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->has_value());
  CloseFd(*fd);
}

TEST_F(ServerTest, TruncatedPayloadNeverHangsTheServer) {
  StartServer();
  Result<int> fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  // Header promises 100 payload bytes; send 10 and half-close. The
  // server's payload read must fail cleanly and drop the connection.
  const std::string header = EncodeFrameHeader(FrameType::kQuery, 100);
  ASSERT_TRUE(WriteFull(*fd, header.data(), header.size()).ok());
  ASSERT_TRUE(WriteFull(*fd, "truncated!", 10).ok());
  ::shutdown(*fd, SHUT_WR);

  Result<std::optional<Frame>> frame = ReadFrame(*fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_FALSE(frame->has_value());  // EOF, no reply, no hang
  CloseFd(*fd);

  // And the server still serves new connections.
  Client client = MustConnect();
  Result<Client::Reply> reply = client.Query(Q1Select());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok());
}

TEST_F(ServerTest, OverloadYieldsTypedRejectionsNeverHangs) {
  ServerOptions options;
  options.thread_budget = 1;
  options.queue_capacity = 0;
  StartServer(options);

  // Every request asks for 2 workers against a 1-thread budget: all of
  // them must come back as fast typed kResourceExhausted.
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> rejected{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Result<Client> client =
          Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        wrong += kRequests;
        return;
      }
      QueryRequest req = Q1Select();
      req.num_threads = 2;
      for (int i = 0; i < kRequests; ++i) {
        Result<Client::Reply> reply = client->Query(req);
        if (reply.ok() &&
            reply->status.code() == StatusCode::kResourceExhausted &&
            !reply->status.message().empty()) {
          ++rejected;
        } else {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rejected.load(), kClients * kRequests);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(server_->admission().rejected(),
            std::uint64_t(kClients * kRequests));
  EXPECT_EQ(server_->admission().in_use(), 0);

  // The same connection budget still serves admissible queries.
  Client client = MustConnect();
  QueryRequest ok_req = Q1Select();
  ok_req.num_threads = 1;
  Result<Client::Reply> reply = client.Query(ok_req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok()) << reply->status;
}

TEST_F(ServerTest, ContendedAdmissibleLoadAllSucceedsOrRejectsTyped) {
  ServerOptions options;
  options.thread_budget = 2;
  options.queue_capacity = 1;
  StartServer(options);

  constexpr int kClients = 4;
  constexpr int kRequests = 6;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Result<Client> client =
          Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        wrong += kRequests;
        return;
      }
      QueryRequest req = BatchRequest(QueryRequest::Kind::kAtInstantBatch);
      for (int i = 0; i < kRequests; ++i) {
        Result<Client::Reply> reply = client->Query(req);
        if (!reply.ok()) {
          ++wrong;
        } else if (reply->status.ok()) {
          ++ok;
        } else if (reply->status.code() == StatusCode::kResourceExhausted) {
          ++rejected;
        } else {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(ok.load(), 0);  // contention may reject, but never everything
  EXPECT_EQ(ok.load() + rejected.load(), kClients * kRequests);
  EXPECT_EQ(server_->admission().in_use(), 0);
}

TEST_F(ServerTest, GracefulStopDrainsInFlightQueries) {
  StartServer();
  constexpr int kClients = 3;
  std::atomic<int> completed{0};
  std::atomic<int> wrong{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Result<Client> client =
          Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) return;  // raced with Stop before connecting
      while (!go.load()) std::this_thread::yield();
      const QueryRequest req = Q2IndexJoin();
      for (;;) {
        Result<Client::Reply> reply = client->Query(req);
        // Once Stop() half-closes the connection the transport reports
        // an error/EOF — that ends the loop. Every reply that did
        // arrive must be a complete, well-formed success.
        if (!reply.ok()) break;
        if (reply->status.ok() && !reply->result_block.empty()) {
          ++completed;
        } else {
          ++wrong;
        }
      }
    });
  }
  go = true;
  // Let some queries land in flight, then stop under load.
  ASSERT_TRUE(WaitUntil([&] { return completed.load() >= 2; }));
  server_->Stop();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(completed.load(), 2);
  server_->Stop();  // idempotent
}

TEST_F(ServerTest, MetricsEndpointServesJsonOverHttp) {
  StartServer();
  // Generate at least one request so the serving counters exist.
  Client client = MustConnect();
  Result<Client::Reply> reply = client.Query(Q1Select());
  ASSERT_TRUE(reply.ok()) << reply.status();

  Result<std::string> metrics =
      FetchMetricsJson("127.0.0.1", server_->port());
  ASSERT_TRUE(metrics.ok()) << metrics.status();
#ifndef MODB_NO_METRICS
  EXPECT_NE(metrics->find("serve.requests"), std::string::npos);
  EXPECT_NE(metrics->find("serve.request_ns"), std::string::npos);
#else
  // Metrics compiled out: the endpoint still serves the empty registry.
  EXPECT_NE(metrics->find("\"counters\""), std::string::npos);
#endif
}

}  // namespace
}  // namespace serve
}  // namespace modb
