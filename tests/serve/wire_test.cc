// Wire protocol codec tests: round-trips for every frame / request /
// result-block / reply shape, plus the fuzz contract — truncated,
// oversized, and garbage bytes must yield a typed error, never a crash,
// an over-read, or an accepted message with trailing bytes.

#include "serve/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "db/modb.h"
#include "db/relation.h"
#include "spatial/point.h"
#include "temporal/moving.h"

namespace modb {
namespace serve {
namespace {

TimeInterval TI(double s, double e) {
  return *TimeInterval::Make(s, e, true, true);
}

MovingPoint MP(double t0, double t1, Point p0, Point p1) {
  return *MovingPoint::Make({*UPoint::FromEndpoints(TI(t0, t1), p0, p1)});
}

// ---------------------------------------------------------------------------
// Frame header.
// ---------------------------------------------------------------------------

TEST(FrameHeader, RoundTrip) {
  const std::string h = EncodeFrameHeader(FrameType::kQuery, 1234);
  ASSERT_EQ(h.size(), kFrameHeaderBytes);
  Result<struct FrameHeader> d = DecodeFrameHeader(h);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->type, FrameType::kQuery);
  EXPECT_EQ(d->payload_len, 1234u);

  Result<struct FrameHeader> r =
      DecodeFrameHeader(EncodeFrameHeader(FrameType::kReply, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, FrameType::kReply);
  EXPECT_EQ(r->payload_len, 0u);
}

TEST(FrameHeader, BadMagicIsDataLoss) {
  std::string h = EncodeFrameHeader(FrameType::kQuery, 8);
  h[0] = 'X';
  Result<struct FrameHeader> d = DecodeFrameHeader(h);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDataLoss);
}

TEST(FrameHeader, WrongSizeVersionTypeReservedAreInvalidArgument) {
  const std::string good = EncodeFrameHeader(FrameType::kQuery, 8);

  EXPECT_EQ(DecodeFrameHeader(good.substr(0, 11)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeFrameHeader(good + "x").status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = good;
  bad_version[4] = char(kWireVersion + 1);
  EXPECT_EQ(DecodeFrameHeader(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_type = good;
  bad_type[5] = 7;
  EXPECT_EQ(DecodeFrameHeader(bad_type).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_reserved = good;
  bad_reserved[6] = 1;
  EXPECT_EQ(DecodeFrameHeader(bad_reserved).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameHeader, OversizedLengthRejectedBeforeAllocation) {
  // A length field just past the cap must be rejected from the 12 header
  // bytes alone.
  std::string h = EncodeFrameHeader(FrameType::kQuery, kMaxFramePayload);
  EXPECT_TRUE(DecodeFrameHeader(h).ok());
  h = EncodeFrameHeader(FrameType::kQuery, kMaxFramePayload + 1);
  Result<struct FrameHeader> d = DecodeFrameHeader(h);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// QueryRequest round-trips.
// ---------------------------------------------------------------------------

QueryRequest FullRequest() {
  QueryRequest req;
  req.kind = QueryRequest::Kind::kIndexJoin;
  req.relation = "planes";
  FilterSpec eq;
  eq.kind = FilterSpec::Kind::kStringEquals;
  eq.attr = "airline";
  eq.value = "Lufthansa";
  FilterSpec len;
  len.kind = FilterSpec::Kind::kTrajectoryLengthAtLeast;
  len.attr = "flight";
  len.threshold = 5000.0;
  FilterSpec present;
  present.kind = FilterSpec::Kind::kPresentAt;
  present.attr = "flight";
  present.t0 = 12.5;
  FilterSpec deftime;
  deftime.kind = FilterSpec::Kind::kDeftimeIntersects;
  deftime.attr = "flight";
  deftime.t0 = 1.0;
  deftime.t1 = 9.0;
  req.filters = {eq, len, present, deftime};
  req.project = {"airline", "id"};
  req.join_relation = "planes";
  req.attr = "flight";
  req.join_attr = "flight";
  req.distance = 50.0;
  req.distinct_pairs = false;
  req.instants = {0.0, 0.5, 1.0};
  req.window_t0 = 1.0;
  req.window_t1 = 25.0;
  req.window_width = 4.0;
  req.window_step = 2.0;
  req.min_x = -10.0;
  req.min_y = -20.0;
  req.max_x = 30.0;
  req.max_y = 40.0;
  req.num_threads = 7;
  return req;
}

void ExpectRequestsEqual(const QueryRequest& a, const QueryRequest& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.relation, b.relation);
  ASSERT_EQ(a.filters.size(), b.filters.size());
  for (std::size_t i = 0; i < a.filters.size(); ++i) {
    EXPECT_EQ(a.filters[i].kind, b.filters[i].kind);
    EXPECT_EQ(a.filters[i].attr, b.filters[i].attr);
    EXPECT_EQ(a.filters[i].value, b.filters[i].value);
    EXPECT_EQ(a.filters[i].threshold, b.filters[i].threshold);
    EXPECT_EQ(a.filters[i].t0, b.filters[i].t0);
    EXPECT_EQ(a.filters[i].t1, b.filters[i].t1);
  }
  EXPECT_EQ(a.project, b.project);
  EXPECT_EQ(a.join_relation, b.join_relation);
  EXPECT_EQ(a.attr, b.attr);
  EXPECT_EQ(a.join_attr, b.join_attr);
  EXPECT_EQ(a.distance, b.distance);
  EXPECT_EQ(a.distinct_pairs, b.distinct_pairs);
  EXPECT_EQ(a.instants, b.instants);
  EXPECT_EQ(a.window_t0, b.window_t0);
  EXPECT_EQ(a.window_t1, b.window_t1);
  EXPECT_EQ(a.window_width, b.window_width);
  EXPECT_EQ(a.window_step, b.window_step);
  EXPECT_EQ(a.min_x, b.min_x);
  EXPECT_EQ(a.min_y, b.min_y);
  EXPECT_EQ(a.max_x, b.max_x);
  EXPECT_EQ(a.max_y, b.max_y);
  EXPECT_EQ(a.num_threads, b.num_threads);
}

TEST(QueryRequestCodec, RoundTripsEveryField) {
  const QueryRequest req = FullRequest();
  Result<QueryRequest> back = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectRequestsEqual(req, *back);
}

TEST(QueryRequestCodec, RoundTripsEveryKind) {
  for (std::uint8_t k = 0;
       k <= std::uint8_t(QueryRequest::Kind::kWindowAggregate); ++k) {
    QueryRequest req;
    req.kind = QueryRequest::Kind(k);
    req.relation = "r";
    req.num_threads = -1;  // <= 0 selects one worker per pool thread
    Result<QueryRequest> back = DecodeQueryRequest(EncodeQueryRequest(req));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->kind, req.kind);
    EXPECT_EQ(back->num_threads, -1);
  }
}

TEST(QueryRequestCodec, RejectsUnknownKinds) {
  std::string bytes = EncodeQueryRequest(FullRequest());
  bytes[0] = char(9);  // query kind past kPresentBatch
  Result<QueryRequest> d = DecodeQueryRequest(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);

  // Filter kind lives right after the kind byte, the relation string,
  // and the filter count: 1 + (4 + 6) + 4.
  bytes = EncodeQueryRequest(FullRequest());
  bytes[1 + 4 + 6 + 4] = char(4);
  d = DecodeQueryRequest(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryRequestCodec, RejectsTrailingBytes) {
  const std::string bytes =
      EncodeQueryRequest(FullRequest()) + std::string(1, '\0');
  Result<QueryRequest> d = DecodeQueryRequest(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(d.status().message().find("trailing"), std::string::npos)
      << d.status();
}

TEST(QueryRequestCodec, EveryStrictPrefixFailsTyped) {
  // The decoder consumed every byte of the full encoding (ExpectEnd), so
  // any strict prefix cuts a required field and must fail — typed, not
  // crash.
  const std::string bytes = EncodeQueryRequest(FullRequest());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    Result<QueryRequest> d = DecodeQueryRequest(bytes.substr(0, n));
    ASSERT_FALSE(d.ok()) << "prefix length " << n;
    EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QueryRequestCodec, HugeStringLengthFailsWithoutOverread) {
  // A string length prefix claiming ~4 GiB in a tiny payload must fail
  // the bounds check, not allocate or read past the end.
  WireWriter w;
  w.U8(0);                  // kind = kSelect
  w.U32(0xfffffff0u);       // relation length: absurd
  Result<QueryRequest> d = DecodeQueryRequest(w.bytes());
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Result blocks.
// ---------------------------------------------------------------------------

TEST(ResultBlockCodec, RowsRoundTrip) {
  Relation rel("answer", Schema({{"airline", AttributeType::kString},
                                 {"flight", AttributeType::kMovingPoint}}));
  ASSERT_TRUE(
      rel.Insert({StringValue{"LH"}, MP(0, 10, Point(0, 0), Point(10, 5))})
          .ok());
  ASSERT_TRUE(
      rel.Insert({StringValue{"BA"}, MP(2, 6, Point(1, 1), Point(3, 3))})
          .ok());

  QueryResult result;
  result.payload = QueryResult::Payload::kRows;
  result.rows = rel;
  Result<std::string> block = EncodeResultBlock(result);
  ASSERT_TRUE(block.ok()) << block.status();

  Result<QueryResult> back = DecodeResultBlock(*block);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->payload, QueryResult::Payload::kRows);
  EXPECT_EQ(back->rows.name(), "answer");
  ASSERT_EQ(back->rows.schema().NumAttributes(), 2u);
  EXPECT_EQ(back->rows.schema().attribute(0).name, "airline");
  EXPECT_EQ(back->rows.schema().attribute(1).type,
            AttributeType::kMovingPoint);
  ASSERT_EQ(back->rows.NumTuples(), 2u);
  EXPECT_EQ(std::get<StringValue>(back->rows.tuple(1)[0]).value(), "BA");

  // Re-encoding the decoded block reproduces the bytes — the identity
  // the determinism contract compares.
  Result<std::string> again = EncodeResultBlock(*back);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *block);
}

TEST(ResultBlockCodec, XYRoundTrip) {
  QueryResult result;
  result.payload = QueryResult::Payload::kXY;
  result.batch_tuples = 2;
  result.batch_instants = 3;
  result.xs = {1, 2, 3, 4, 5, 6};
  result.ys = {6, 5, 4, 3, 2, 1};
  result.defined = {1, 1, 0, 0, 1, 1};
  Result<std::string> block = EncodeResultBlock(result);
  ASSERT_TRUE(block.ok());
  Result<QueryResult> back = DecodeResultBlock(*block);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->payload, QueryResult::Payload::kXY);
  EXPECT_EQ(back->batch_tuples, 2u);
  EXPECT_EQ(back->batch_instants, 3u);
  EXPECT_EQ(back->xs, result.xs);
  EXPECT_EQ(back->ys, result.ys);
  EXPECT_EQ(back->defined, result.defined);
}

TEST(ResultBlockCodec, PresentRoundTrip) {
  QueryResult result;
  result.payload = QueryResult::Payload::kPresent;
  result.batch_tuples = 3;
  result.batch_instants = 2;
  result.present = {1, 0, 0, 1, 1, 1};
  Result<std::string> block = EncodeResultBlock(result);
  ASSERT_TRUE(block.ok());
  Result<QueryResult> back = DecodeResultBlock(*block);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->payload, QueryResult::Payload::kPresent);
  EXPECT_EQ(back->present, result.present);
}

TEST(ResultBlockCodec, RejectsGeometryOverflowAndBadFlagBytes) {
  // Geometry whose product overflows the frame cap must be rejected
  // before any element loop runs.
  WireWriter w;
  w.U8(std::uint8_t(QueryResult::Payload::kXY));
  w.U64(std::uint64_t(1) << 60);
  w.U64(std::uint64_t(1) << 60);
  Result<QueryResult> d = DecodeResultBlock(w.bytes());
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);

  // A defined byte outside {0, 1}.
  QueryResult xy;
  xy.payload = QueryResult::Payload::kXY;
  xy.batch_tuples = 1;
  xy.batch_instants = 1;
  xy.xs = {1};
  xy.ys = {2};
  xy.defined = {1};
  Result<std::string> block = EncodeResultBlock(xy);
  ASSERT_TRUE(block.ok());
  std::string bytes = *block;
  bytes.back() = char(2);
  d = DecodeResultBlock(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultBlockCodec, EveryStrictPrefixFailsTyped) {
  QueryResult xy;
  xy.payload = QueryResult::Payload::kXY;
  xy.batch_tuples = 2;
  xy.batch_instants = 2;
  xy.xs = {1, 2, 3, 4};
  xy.ys = {4, 3, 2, 1};
  xy.defined = {1, 0, 1, 0};
  Result<std::string> block = EncodeResultBlock(xy);
  ASSERT_TRUE(block.ok());
  for (std::size_t n = 0; n < block->size(); ++n) {
    Result<QueryResult> d = DecodeResultBlock(block->substr(0, n));
    ASSERT_FALSE(d.ok()) << "prefix length " << n;
  }
}

// ---------------------------------------------------------------------------
// Replies.
// ---------------------------------------------------------------------------

TEST(ReplyCodec, OkReplyRoundTrips) {
  QueryResult result;
  result.payload = QueryResult::Payload::kPresent;
  result.batch_tuples = 1;
  result.batch_instants = 1;
  result.present = {1};
  result.stats.op = "present_batch";
  result.stats.tuples_in = 1;

  Result<std::string> payload = EncodeReply(Status::OK(), &result);
  ASSERT_TRUE(payload.ok()) << payload.status();
  Result<WireReply> reply = DecodeReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok());
  EXPECT_EQ(reply->result_block, *EncodeResultBlock(result));
  Result<ExecStats> stats = ExecStats::FromJson(reply->stats_json);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->op, "present_batch");
}

TEST(ReplyCodec, ErrorReplyRoundTripsCodeAndMessage) {
  const Status rejected = Status::ResourceExhausted(
      "query needs 8 worker threads but the server budget is 4");
  Result<std::string> payload = EncodeReply(rejected, nullptr);
  ASSERT_TRUE(payload.ok());
  Result<WireReply> reply = DecodeReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reply->status.message(), rejected.message());
  EXPECT_TRUE(reply->result_block.empty());
}

TEST(ReplyCodec, RejectsInconsistentReplies) {
  // OK with no result block.
  WireWriter ok_no_block;
  ok_no_block.U32(std::uint32_t(StatusCode::kOk));
  ok_no_block.Str("");
  ok_no_block.Str("");
  ok_no_block.Str("");
  EXPECT_FALSE(DecodeReply(ok_no_block.bytes()).ok());

  // Error carrying a result block.
  WireWriter err_with_block;
  err_with_block.U32(std::uint32_t(StatusCode::kNotFound));
  err_with_block.Str("nope");
  err_with_block.Str("stale block");
  err_with_block.Str("");
  EXPECT_FALSE(DecodeReply(err_with_block.bytes()).ok());

  // Unknown status code.
  WireWriter bad_code;
  bad_code.U32(99);
  bad_code.Str("");
  bad_code.Str("");
  bad_code.Str("");
  EXPECT_FALSE(DecodeReply(bad_code.bytes()).ok());
}

// ---------------------------------------------------------------------------
// Mutations: the v2 request payload and its ack block.
// ---------------------------------------------------------------------------

MutationRequest FullMutation() {
  MutationRequest req;
  req.kind = MutationRequest::Kind::kIngest;
  req.relation = "fleet";
  req.fixes.push_back({"obj00001", 1.5, -3.25, 4.75});
  req.fixes.push_back({"obj00002", 2.0, 0.0, -0.0});
  req.fixes.push_back({"", 3.0, 1e9, -1e-9});
  req.seal_units = 12;
  return req;
}

void ExpectMutationsEqual(const MutationRequest& a, const MutationRequest& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.relation, b.relation);
  ASSERT_EQ(a.fixes.size(), b.fixes.size());
  for (std::size_t i = 0; i < a.fixes.size(); ++i) {
    EXPECT_EQ(a.fixes[i].object_id, b.fixes[i].object_id) << "fix " << i;
    EXPECT_EQ(a.fixes[i].t, b.fixes[i].t) << "fix " << i;
    EXPECT_EQ(a.fixes[i].x, b.fixes[i].x) << "fix " << i;
    EXPECT_EQ(a.fixes[i].y, b.fixes[i].y) << "fix " << i;
  }
  EXPECT_EQ(a.seal_units, b.seal_units);
}

TEST(MutationCodec, RoundTripsEveryFieldAndKind) {
  for (std::uint8_t k = 0;
       k <= std::uint8_t(MutationRequest::Kind::kIngest); ++k) {
    MutationRequest req = FullMutation();
    req.kind = MutationRequest::Kind(k);
    Result<MutationRequest> d = DecodeMutationRequest(EncodeMutationRequest(req));
    ASSERT_TRUE(d.ok()) << "kind " << int(k) << ": " << d.status();
    ExpectMutationsEqual(req, *d);
  }
}

TEST(MutationCodec, RejectsUnknownKinds) {
  std::string bytes = EncodeMutationRequest(FullMutation());
  bytes[0] = char(3);  // one past kIngest
  Result<MutationRequest> d = DecodeMutationRequest(bytes);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(MutationCodec, RejectsTrailingBytes) {
  std::string bytes = EncodeMutationRequest(FullMutation());
  bytes.push_back('\0');
  EXPECT_FALSE(DecodeMutationRequest(bytes).ok());
}

TEST(MutationCodec, EveryStrictPrefixFailsTyped) {
  const std::string bytes = EncodeMutationRequest(FullMutation());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    Result<MutationRequest> d = DecodeMutationRequest(bytes.substr(0, n));
    ASSERT_FALSE(d.ok()) << "prefix length " << n;
    EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument)
        << "prefix length " << n;
  }
}

TEST(MutationCodec, HugeStringLengthFailsWithoutOverread) {
  // A fix-count far beyond the payload must be rejected by arithmetic,
  // not by allocating or walking 2^32 entries.
  std::string bytes = EncodeMutationRequest(FullMutation());
  const std::size_t count_at = 1 + 4 + 5;  // kind, relation len, "fleet"
  bytes[count_at] = char(0xff);
  bytes[count_at + 1] = char(0xff);
  bytes[count_at + 2] = char(0xff);
  bytes[count_at + 3] = char(0xff);
  EXPECT_FALSE(DecodeMutationRequest(bytes).ok());
}

MutationResult FullAck() {
  MutationResult ack;
  ack.accepted = 64;
  ack.objects = 8;
  ack.mem_units = 3;
  ack.delta_entries = 40;
  ack.base_entries = 512;
  ack.merges = 2;
  ack.epoch = 65;
  return ack;
}

void ExpectAcksEqual(const MutationResult& a, const MutationResult& b) {
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.objects, b.objects);
  EXPECT_EQ(a.mem_units, b.mem_units);
  EXPECT_EQ(a.delta_entries, b.delta_entries);
  EXPECT_EQ(a.base_entries, b.base_entries);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.epoch, b.epoch);
}

TEST(MutationAckCodec, RoundTrips) {
  const MutationResult ack = FullAck();
  Result<MutationResult> d = DecodeMutationAck(EncodeMutationAck(ack));
  ASSERT_TRUE(d.ok()) << d.status();
  ExpectAcksEqual(ack, *d);
}

TEST(MutationAckCodec, EveryStrictPrefixFailsTyped) {
  const std::string bytes = EncodeMutationAck(FullAck());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    ASSERT_FALSE(DecodeMutationAck(bytes.substr(0, n)).ok())
        << "prefix length " << n;
  }
  std::string trailing = bytes;
  trailing.push_back('\0');
  EXPECT_FALSE(DecodeMutationAck(trailing).ok());
}

TEST(MutationAckCodec, AckBlockIsNotAQueryResult) {
  // The ack block kind (3) sits outside the QueryResult payload range,
  // so a client that sent a query cannot mistake an ack for rows.
  const std::string block = EncodeMutationAck(FullAck());
  Result<QueryResult> d = DecodeResultBlock(block);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(MutationAckCodec, ReplyRoundTripsOkAndError) {
  const MutationResult ack = FullAck();
  Result<std::string> payload = EncodeMutationReply(Status::OK(), &ack);
  ASSERT_TRUE(payload.ok()) << payload.status();
  Result<WireReply> reply = DecodeReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->status.ok());
  Result<MutationResult> decoded = DecodeMutationAck(reply->result_block);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectAcksEqual(ack, *decoded);

  const Status not_found =
      Status::NotFound("ingest into unknown relation 'ghost'");
  payload = EncodeMutationReply(not_found, nullptr);
  ASSERT_TRUE(payload.ok());
  reply = DecodeReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(reply->status.message(), not_found.message());
  EXPECT_TRUE(reply->result_block.empty());
}

// ---------------------------------------------------------------------------
// Fuzz: random garbage through every decoder. The contract is "typed
// error or a valid decode", never a crash, hang, or over-read.
// ---------------------------------------------------------------------------

TEST(WireFuzz, RandomBytesNeverCrashAnyDecoder) {
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 200);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string bytes(len(rng), '\0');
    for (char& c : bytes) c = char(byte(rng));
    // Exercise all four decoders on the same garbage; only their status
    // matters.
    (void)DecodeFrameHeader(std::string_view(bytes).substr(
        0, std::min<std::size_t>(bytes.size(), kFrameHeaderBytes)));
    (void)DecodeQueryRequest(bytes);
    (void)DecodeResultBlock(bytes);
    (void)DecodeReply(bytes);
    (void)DecodeMutationRequest(bytes);
    (void)DecodeMutationAck(bytes);
  }
}

TEST(WireFuzz, MutatedValidMutationsNeverCrash) {
  const std::string base = EncodeMutationRequest(FullMutation());
  std::mt19937_64 rng(1331);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = base;
    bytes[pos(rng)] = char(byte(rng));
    Result<MutationRequest> d = DecodeMutationRequest(bytes);
    if (d.ok()) {
      Result<MutationRequest> again =
          DecodeMutationRequest(EncodeMutationRequest(*d));
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
}

TEST(WireFuzz, MutatedValidRequestsNeverCrash) {
  // Single-byte mutations of a valid encoding: decoders must stay total
  // and, when they do accept, re-encode to something decodable.
  const std::string base = EncodeQueryRequest(FullRequest());
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = base;
    bytes[pos(rng)] = char(byte(rng));
    Result<QueryRequest> d = DecodeQueryRequest(bytes);
    if (d.ok()) {
      Result<QueryRequest> again =
          DecodeQueryRequest(EncodeQueryRequest(*d));
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
}

TEST(WireFuzz, MutatedValidRepliesNeverCrash) {
  QueryResult result;
  result.payload = QueryResult::Payload::kXY;
  result.batch_tuples = 2;
  result.batch_instants = 2;
  result.xs = {1, 2, 3, 4};
  result.ys = {4, 3, 2, 1};
  result.defined = {1, 1, 1, 0};
  Result<std::string> payload = EncodeReply(Status::OK(), &result);
  ASSERT_TRUE(payload.ok());
  const std::string base = *payload;
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = base;
    bytes[pos(rng)] = char(byte(rng));
    Result<WireReply> d = DecodeReply(bytes);
    if (d.ok() && d->status.ok()) {
      // An accepted OK reply must carry a decodable-or-rejected block —
      // decoding it must not crash either way.
      (void)DecodeResultBlock(d->result_block);
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace modb
