#include "core/base_types.h"

#include <gtest/gtest.h>

#include "core/intime.h"

namespace modb {
namespace {

TEST(BaseValue, DefaultIsUndefined) {
  IntValue v;
  EXPECT_FALSE(v.defined());
  EXPECT_EQ(v, IntValue::Undefined());
}

TEST(BaseValue, DefinedHoldsValue) {
  IntValue v(42);
  ASSERT_TRUE(v.defined());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(0), 42);
  EXPECT_EQ(IntValue::Undefined().value_or(7), 7);
}

TEST(BaseValue, UndefinedComparesEqualToUndefined) {
  EXPECT_EQ(RealValue::Undefined(), RealValue::Undefined());
  EXPECT_NE(RealValue::Undefined(), RealValue(0.0));
}

TEST(BaseValue, UndefinedSortsFirst) {
  EXPECT_TRUE(IntValue::Undefined() < IntValue(-1000));
  EXPECT_FALSE(IntValue(-1000) < IntValue::Undefined());
  EXPECT_FALSE(IntValue::Undefined() < IntValue::Undefined());
}

TEST(BaseValue, StringAndBoolCarriers) {
  StringValue s(std::string("Lufthansa"));
  EXPECT_EQ(s.value(), "Lufthansa");
  BoolValue b(true);
  EXPECT_TRUE(b.value());
  EXPECT_TRUE(BoolValue(false) < BoolValue(true));
}

TEST(FlatString, LengthLimit) {
  EXPECT_TRUE(FitsFlatString(std::string(kMaxStringLength, 'x')));
  EXPECT_FALSE(FitsFlatString(std::string(kMaxStringLength + 1, 'x')));
}

TEST(Intime, ProjectionsAndUndefined) {
  Intime<double> it(3.0, 7.5);
  EXPECT_TRUE(it.defined);
  EXPECT_DOUBLE_EQ(it.inst(), 3.0);
  EXPECT_DOUBLE_EQ(it.val(), 7.5);
  EXPECT_FALSE(Intime<double>::Undefined().defined);
}

}  // namespace
}  // namespace modb
