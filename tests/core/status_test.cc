#include "core/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace modb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing widget");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "NOT_FOUND: missing widget");
}

TEST(StatusTest, CodeNamesStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnIfErrorMacro, PropagatesAndPasses) {
  auto fails = [] { return Status::Internal("boom"); };
  auto passes = [] { return Status::OK(); };
  auto run = [&](bool fail) -> Status {
    MODB_RETURN_IF_ERROR(passes());
    if (fail) MODB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(run(false).ok());
  EXPECT_EQ(run(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace modb
