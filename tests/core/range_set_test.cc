#include "core/range_set.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

TEST(RangeSetCanonical, MergesOverlapping) {
  Periods p = Periods::FromIntervals({TI(1, 3), TI(2, 5)});
  ASSERT_EQ(p.NumIntervals(), 1u);
  EXPECT_EQ(p.interval(0), TI(1, 5));
}

TEST(RangeSetCanonical, MergesAdjacent) {
  Periods p = Periods::FromIntervals({TI(1, 2, true, false), TI(2, 3)});
  ASSERT_EQ(p.NumIntervals(), 1u);
  EXPECT_EQ(p.interval(0), TI(1, 3));
}

TEST(RangeSetCanonical, KeepsGapSeparated) {
  // [1,2) and (2,3]: the instant 2 is missing, so they stay apart.
  Periods p = Periods::FromIntervals({TI(1, 2, true, false),
                                      TI(2, 3, false, true)});
  EXPECT_EQ(p.NumIntervals(), 2u);
  EXPECT_FALSE(p.Contains(2));
  EXPECT_TRUE(p.Contains(1.5));
  EXPECT_TRUE(p.Contains(2.5));
}

TEST(RangeSetCanonical, SortsInput) {
  Periods p = Periods::FromIntervals({TI(5, 6), TI(1, 2), TI(3, 4)});
  ASSERT_EQ(p.NumIntervals(), 3u);
  EXPECT_EQ(p.interval(0), TI(1, 2));
  EXPECT_EQ(p.interval(2), TI(5, 6));
}

TEST(RangeSetCanonical, UniqueRepresentation) {
  // Different input decompositions of the same point set compare equal —
  // the paper's unique-representation requirement.
  Periods a = Periods::FromIntervals({TI(1, 2), TI(2, 3)});
  Periods b = Periods::FromIntervals({TI(1, 3)});
  EXPECT_EQ(a, b);
}

TEST(RangeSetContains, BinarySearchPath) {
  Periods p = Periods::FromIntervals({TI(0, 1), TI(2, 3), TI(4, 5)});
  EXPECT_TRUE(p.Contains(0));
  EXPECT_TRUE(p.Contains(4.5));
  EXPECT_FALSE(p.Contains(1.5));
  EXPECT_FALSE(p.Contains(-1));
  EXPECT_FALSE(p.Contains(6));
}

TEST(RangeSetCovers, IntervalSubset) {
  Periods p = Periods::FromIntervals({TI(0, 2), TI(4, 6)});
  EXPECT_TRUE(p.Covers(TI(0.5, 1.5)));
  EXPECT_TRUE(p.Covers(TI(4, 6)));
  EXPECT_FALSE(p.Covers(TI(1, 5)));
}

TEST(RangeSetMinMax, Bounds) {
  Periods p = Periods::FromIntervals({TI(2, 3), TI(7, 9)});
  EXPECT_DOUBLE_EQ(p.Minimum(), 2);
  EXPECT_DOUBLE_EQ(p.Maximum(), 9);
}

TEST(RangeSetUnion, MergesAcrossOperands) {
  Periods a = Periods::FromIntervals({TI(1, 2)});
  Periods b = Periods::FromIntervals({TI(2, 3)});
  Periods u = Periods::Union(a, b);
  ASSERT_EQ(u.NumIntervals(), 1u);
  EXPECT_EQ(u.interval(0), TI(1, 3));
}

TEST(RangeSetIntersection, Basic) {
  Periods a = Periods::FromIntervals({TI(0, 5)});
  Periods b = Periods::FromIntervals({TI(1, 2), TI(4, 8)});
  Periods i = Periods::Intersection(a, b);
  ASSERT_EQ(i.NumIntervals(), 2u);
  EXPECT_EQ(i.interval(0), TI(1, 2));
  EXPECT_EQ(i.interval(1), TI(4, 5));
}

TEST(RangeSetDifference, CarvesHoles) {
  Periods a = Periods::FromIntervals({TI(0, 10)});
  Periods b = Periods::FromIntervals({TI(2, 3), TI(5, 6)});
  Periods d = Periods::Difference(a, b);
  ASSERT_EQ(d.NumIntervals(), 3u);
  EXPECT_EQ(d.interval(0), TI(0, 2, true, false));
  EXPECT_EQ(d.interval(1), TI(3, 5, false, false));
  EXPECT_EQ(d.interval(2), TI(6, 10, false, true));
}

TEST(RangeSetDifference, OpenClosedBookkeeping) {
  Periods a = Periods::FromIntervals({TI(0, 10)});
  Periods b = Periods::FromIntervals({TI(0, 10, false, false)});
  Periods d = Periods::Difference(a, b);
  // Only the two endpoints remain.
  ASSERT_EQ(d.NumIntervals(), 2u);
  EXPECT_TRUE(d.interval(0).IsDegenerate());
  EXPECT_TRUE(d.interval(1).IsDegenerate());
  EXPECT_TRUE(d.Contains(0));
  EXPECT_TRUE(d.Contains(10));
  EXPECT_FALSE(d.Contains(5));
}

TEST(RangeSetEmpty, Behaviors) {
  Periods e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Contains(0));
  Periods a = Periods::FromIntervals({TI(1, 2)});
  EXPECT_EQ(Periods::Union(e, a), a);
  EXPECT_TRUE(Periods::Intersection(e, a).IsEmpty());
  EXPECT_TRUE(Periods::Difference(e, a).IsEmpty());
  EXPECT_EQ(Periods::Difference(a, e), a);
}

TEST(RangeSetIntDomain, AdjacentIntegersMerge) {
  using IntIv = Interval<int64_t>;
  IntRange r = IntRange::FromIntervals(
      {*IntIv::Make(1, 3, true, true), *IntIv::Make(4, 6, true, true)});
  // 3 and 4 are adjacent integers → one interval.
  ASSERT_EQ(r.NumIntervals(), 1u);
  EXPECT_EQ(r.interval(0), *IntIv::Make(1, 6, true, true));
}

// Property sweep: set algebra laws checked pointwise on random range
// sets.
class RangeSetAlgebra : public ::testing::TestWithParam<int> {
 protected:
  Periods RandomPeriods(std::mt19937& rng) {
    std::uniform_real_distribution<double> pick(0, 10);
    std::uniform_int_distribution<int> count(0, 4);
    std::bernoulli_distribution flag(0.5);
    std::vector<TimeInterval> ivs;
    int n = count(rng);
    for (int i = 0; i < n; ++i) {
      double a = pick(rng), b = pick(rng);
      if (a > b) std::swap(a, b);
      bool lc = flag(rng), rc = flag(rng);
      if (a == b) lc = rc = true;
      ivs.push_back(TI(a, b, lc, rc));
    }
    return Periods::FromIntervals(std::move(ivs));
  }
};

TEST_P(RangeSetAlgebra, PointwiseLaws) {
  std::mt19937 rng(GetParam());
  Periods a = RandomPeriods(rng);
  Periods b = RandomPeriods(rng);
  Periods u = Periods::Union(a, b);
  Periods i = Periods::Intersection(a, b);
  Periods d = Periods::Difference(a, b);
  for (int k = 0; k <= 100; ++k) {
    double t = 10.0 * k / 100;
    bool in_a = a.Contains(t), in_b = b.Contains(t);
    EXPECT_EQ(u.Contains(t), in_a || in_b) << t;
    EXPECT_EQ(i.Contains(t), in_a && in_b) << t;
    EXPECT_EQ(d.Contains(t), in_a && !in_b) << t;
  }
  // Canonical invariants: sorted, pairwise disjoint, non-adjacent.
  for (std::size_t k = 0; k + 1 < u.NumIntervals(); ++k) {
    EXPECT_TRUE(TimeInterval::Disjoint(u.interval(k), u.interval(k + 1)));
    EXPECT_FALSE(TimeInterval::Adjacent(u.interval(k), u.interval(k + 1)));
    EXPECT_TRUE(u.interval(k) < u.interval(k + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangeSetAlgebra, ::testing::Range(0, 60));

}  // namespace
}  // namespace modb
