#include "core/interval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc, bool rc) {
  auto r = TimeInterval::Make(s, e, lc, rc);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(IntervalMake, RejectsReversedEndpoints) {
  EXPECT_FALSE(TimeInterval::Make(2, 1, true, true).ok());
}

TEST(IntervalMake, DegenerateMustBeClosed) {
  EXPECT_FALSE(TimeInterval::Make(1, 1, true, false).ok());
  EXPECT_FALSE(TimeInterval::Make(1, 1, false, true).ok());
  EXPECT_FALSE(TimeInterval::Make(1, 1, false, false).ok());
  EXPECT_TRUE(TimeInterval::Make(1, 1, true, true).ok());
}

TEST(IntervalMake, AtBuildsDegenerate) {
  TimeInterval i = TimeInterval::At(3.5);
  EXPECT_TRUE(i.IsDegenerate());
  EXPECT_TRUE(i.Contains(3.5));
  EXPECT_FALSE(i.Contains(3.5 + 1e-9));
}

TEST(IntervalContains, RespectsClosedness) {
  TimeInterval i = TI(1, 2, true, false);
  EXPECT_TRUE(i.Contains(1));
  EXPECT_TRUE(i.Contains(1.5));
  EXPECT_FALSE(i.Contains(2));
  EXPECT_FALSE(i.Contains(0.999));
}

TEST(IntervalContainsOpen, ExcludesEndpointsAlways) {
  TimeInterval i = TI(1, 2, true, true);
  EXPECT_FALSE(i.ContainsOpen(1));
  EXPECT_FALSE(i.ContainsOpen(2));
  EXPECT_TRUE(i.ContainsOpen(1.5));
}

TEST(IntervalIsContainedIn, SubsetOnBoundaryFlags) {
  EXPECT_TRUE(TI(1, 2, false, false).IsContainedIn(TI(1, 2, true, true)));
  EXPECT_FALSE(TI(1, 2, true, true).IsContainedIn(TI(1, 2, false, true)));
  EXPECT_TRUE(TI(1.2, 1.8, true, true).IsContainedIn(TI(1, 2, false, false)));
  EXPECT_FALSE(TI(0.5, 1.5, true, true).IsContainedIn(TI(1, 2, true, true)));
}

// The paper's r-disjoint: e_u < s_v, or equal endpoint not shared by both
// closed sides.
TEST(IntervalDisjoint, TouchingEndpointsDependOnFlags) {
  // [1,2] and [2,3]: both closed at 2 → share the point 2.
  EXPECT_FALSE(TimeInterval::Disjoint(TI(1, 2, true, true), TI(2, 3, true, true)));
  // [1,2) and [2,3]: disjoint.
  EXPECT_TRUE(TimeInterval::Disjoint(TI(1, 2, true, false), TI(2, 3, true, true)));
  // [1,2] and (2,3]: disjoint.
  EXPECT_TRUE(TimeInterval::Disjoint(TI(1, 2, true, true), TI(2, 3, false, true)));
  // [1,2) and (2,3]: disjoint (with a gap point).
  EXPECT_TRUE(TimeInterval::Disjoint(TI(1, 2, true, false), TI(2, 3, false, true)));
}

TEST(IntervalDisjoint, OverlapDetected) {
  EXPECT_FALSE(TimeInterval::Disjoint(TI(1, 3, true, true), TI(2, 4, true, true)));
  EXPECT_FALSE(TimeInterval::Disjoint(TI(2, 4, true, true), TI(1, 3, true, true)));
  EXPECT_TRUE(TimeInterval::Disjoint(TI(1, 2, true, true), TI(3, 4, true, true)));
}

// adjacent: disjoint and no domain value fits between.
TEST(IntervalAdjacent, ContinuousDomain) {
  // [1,2) + [2,3]: adjacent (2 belongs to the right interval).
  EXPECT_TRUE(TimeInterval::Adjacent(TI(1, 2, true, false), TI(2, 3, true, true)));
  // [1,2] + (2,3]: adjacent.
  EXPECT_TRUE(TimeInterval::Adjacent(TI(1, 2, true, true), TI(2, 3, false, true)));
  // [1,2) + (2,3]: NOT adjacent (the instant 2 lies between them).
  EXPECT_FALSE(TimeInterval::Adjacent(TI(1, 2, true, false), TI(2, 3, false, true)));
  // Overlapping intervals are not adjacent.
  EXPECT_FALSE(TimeInterval::Adjacent(TI(1, 2.5, true, true), TI(2, 3, true, true)));
  // Order independence.
  EXPECT_TRUE(TimeInterval::Adjacent(TI(2, 3, true, true), TI(1, 2, true, false)));
}

// The discrete-domain clause of r-adjacent: [1,2] and [3,4] over int are
// adjacent because no integer lies strictly between 2 and 3.
TEST(IntervalAdjacent, IntegerDomainGapOfOne) {
  using IntIv = Interval<int64_t>;
  auto a = *IntIv::Make(1, 2, true, true);
  auto b = *IntIv::Make(3, 4, true, true);
  EXPECT_TRUE(IntIv::Adjacent(a, b));
  auto c = *IntIv::Make(4, 5, true, true);
  EXPECT_FALSE(IntIv::Adjacent(a, c));
}

TEST(IntervalIntersect, ProperOverlap) {
  auto r = TimeInterval::Intersect(TI(1, 3, true, false), TI(2, 4, false, true));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->start(), 2);
  EXPECT_EQ(r->end(), 3);
  EXPECT_FALSE(r->left_closed());
  EXPECT_FALSE(r->right_closed());
}

TEST(IntervalIntersect, SharedEndpointOnly) {
  auto r = TimeInterval::Intersect(TI(1, 2, true, true), TI(2, 3, true, true));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->IsDegenerate());
  EXPECT_EQ(r->start(), 2);
}

TEST(IntervalIntersect, DisjointGivesNullopt) {
  EXPECT_FALSE(TimeInterval::Intersect(TI(1, 2, true, false),
                                       TI(2, 3, true, true)).has_value());
  EXPECT_FALSE(TimeInterval::Intersect(TI(1, 2, true, true),
                                       TI(3, 4, true, true)).has_value());
}

TEST(IntervalIntersect, NestedKeepsInnerFlags) {
  auto r = TimeInterval::Intersect(TI(0, 10, true, true), TI(2, 3, false, false));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, TI(2, 3, false, false));
}

TEST(IntervalMerge, UnionOfAdjacent) {
  TimeInterval m = TimeInterval::Merge(TI(1, 2, true, false), TI(2, 3, true, true));
  EXPECT_EQ(m, TI(1, 3, true, true));
}

TEST(IntervalMerge, OverlappingKeepsOuterFlags) {
  TimeInterval m = TimeInterval::Merge(TI(1, 3, false, true), TI(2, 4, true, false));
  EXPECT_EQ(m, TI(1, 4, false, false));
}

TEST(IntervalMerge, EqualEndpointsUnionFlags) {
  TimeInterval m = TimeInterval::Merge(TI(1, 2, false, true), TI(1, 2, true, false));
  EXPECT_EQ(m, TI(1, 2, true, true));
}

TEST(IntervalOrder, SortsByStartThenFlags) {
  std::vector<TimeInterval> v = {TI(2, 3, true, true), TI(1, 5, false, true),
                                 TI(1, 2, true, true)};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0], TI(1, 2, true, true));
  EXPECT_EQ(v[1], TI(1, 5, false, true));
  EXPECT_EQ(v[2], TI(2, 3, true, true));
}

TEST(IntervalDuration, Basics) {
  EXPECT_DOUBLE_EQ(Duration(TI(1, 4, true, true)), 3);
  EXPECT_DOUBLE_EQ(Duration(TimeInterval::At(7)), 0);
}

// Property sweep: Disjoint/Adjacent are symmetric, Intersect agrees with
// Contains on sampled points.
class IntervalPairProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalPairProperty, IntersectMatchesPointwiseMembership) {
  int seed = GetParam();
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> pick(0, 10);
  std::bernoulli_distribution flag(0.5);
  auto random_interval = [&]() {
    double a = pick(rng), b = pick(rng);
    if (a > b) std::swap(a, b);
    bool lc = flag(rng), rc = flag(rng);
    if (a == b) lc = rc = true;
    return TI(a, b, lc, rc);
  };
  TimeInterval u = random_interval();
  TimeInterval v = random_interval();
  EXPECT_EQ(TimeInterval::Disjoint(u, v), TimeInterval::Disjoint(v, u));
  EXPECT_EQ(TimeInterval::Adjacent(u, v), TimeInterval::Adjacent(v, u));
  auto inter = TimeInterval::Intersect(u, v);
  for (int i = 0; i <= 50; ++i) {
    double t = 10.0 * i / 50;
    bool both = u.Contains(t) && v.Contains(t);
    bool in_inter = inter.has_value() && inter->Contains(t);
    EXPECT_EQ(both, in_inter) << "t=" << t << " u=" << u.ToString()
                              << " v=" << v.ToString();
  }
  if (inter.has_value()) {
    EXPECT_FALSE(TimeInterval::Disjoint(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalPairProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace modb
