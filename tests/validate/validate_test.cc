#include "validate/validate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/range_set.h"
#include "spatial/halfsegment.h"
#include "spatial/line.h"
#include "spatial/region.h"
#include "temporal/const_unit.h"
#include "temporal/moving.h"

namespace modb {
namespace {

TimeInterval IV(double s, double e, bool lc = true, bool rc = false) {
  return *TimeInterval::Make(s, e, lc, rc);
}

UInt U(double s, double e, std::int64_t v) {
  return *UInt::Make(IV(s, e), v);
}

Seg S(double ax, double ay, double bx, double by) {
  return *Seg::Make(Point(ax, ay), Point(bx, by));
}

// -- range(α) ----------------------------------------------------------------

TEST(ValidateRangeSet, CanonicalSetPasses) {
  Periods p = Periods::FromIntervals({IV(0, 1, true, true), IV(3, 5)});
  EXPECT_TRUE(validate::ValidateRangeSet(p).ok());
  EXPECT_TRUE(validate::ValidateRangeSet(Periods()).ok());
}

TEST(ValidateRangeSet, RejectsOverlappingIntervals) {
  Periods bad = Periods::MakeTrusted({IV(0, 5), IV(3, 8)});
  Status s = validate::ValidateRangeSet(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("overlap"), std::string::npos);
}

TEST(ValidateRangeSet, RejectsOutOfOrderIntervals) {
  Periods bad = Periods::MakeTrusted({IV(10, 12), IV(0, 1)});
  Status s = validate::ValidateRangeSet(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("order"), std::string::npos);
}

TEST(ValidateRangeSet, RejectsAdjacentIntervals) {
  // [0,1) and [1,2) are disjoint but adjacent: a canonical range value
  // must have merged them.
  Periods bad = Periods::MakeTrusted({IV(0, 1), IV(1, 2)});
  Status s = validate::ValidateRangeSet(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("adjacent"), std::string::npos);
}

// -- mapping(U) --------------------------------------------------------------

TEST(ValidateMapping, ValidMappingPasses) {
  Result<MovingInt> m = MovingInt::Make({U(0, 1, 7), U(1, 2, 8), U(4, 5, 7)});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(validate::ValidateMapping(*m).ok());
  EXPECT_TRUE(validate::ValidateMapping(MovingInt()).ok());
}

TEST(ValidateMapping, RejectsOverlappingUnitIntervals) {
  MovingInt bad = MovingInt::MakeTrusted({U(0, 5, 1), U(3, 8, 2)});
  Status s = validate::ValidateMapping(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("overlap"), std::string::npos);
}

TEST(ValidateMapping, RejectsUnitsOutOfTimeOrder) {
  MovingInt bad = MovingInt::MakeTrusted({U(4, 5, 1), U(0, 1, 2)});
  Status s = validate::ValidateMapping(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("order"), std::string::npos);
}

TEST(ValidateMapping, RejectsAdjacentUnitsWithEqualValue) {
  // Adjacent intervals carrying the same unit function violate the
  // minimality clause of the mapping constraint (Section 3.2.4).
  MovingInt bad = MovingInt::MakeTrusted({U(0, 1, 7), U(1, 2, 7)});
  Status s = validate::ValidateMapping(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("equal unit function"), std::string::npos);
}

TEST(ValidateMapping, AcceptsAdjacentUnitsWithDistinctValues) {
  MovingInt good = MovingInt::MakeTrusted({U(0, 1, 7), U(1, 2, 8)});
  EXPECT_TRUE(validate::ValidateMapping(good).ok());
}

// -- halfsegment order -------------------------------------------------------

TEST(ValidateHalfSegments, SortedPairedArrayPasses) {
  std::vector<HalfSegment> hs =
      MakeHalfSegments({S(0, 0, 2, 0), S(2, 0, 2, 2), S(0, 0, 2, 2)});
  EXPECT_TRUE(validate::ValidateHalfSegmentOrder(hs).ok());
  EXPECT_TRUE(validate::ValidateHalfSegmentOrder({}).ok());
}

TEST(ValidateHalfSegments, RejectsUnorderedArray) {
  std::vector<HalfSegment> hs =
      MakeHalfSegments({S(0, 0, 2, 0), S(2, 0, 2, 2), S(0, 0, 2, 2)});
  std::swap(hs[0], hs[3]);
  Status s = validate::ValidateHalfSegmentOrder(hs);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ROSE order"), std::string::npos);
}

TEST(ValidateHalfSegments, RejectsOddLength) {
  std::vector<HalfSegment> hs = MakeHalfSegments({S(0, 0, 2, 0)});
  hs.pop_back();
  Status s = validate::ValidateHalfSegmentOrder(hs);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("odd length"), std::string::npos);
}

TEST(ValidateHalfSegments, RejectsUnpairedSegment) {
  // Drop the right-dominating halves of two different segments: the
  // array stays even-length and strictly ROSE-ordered, but each of
  // those segments now appears with only one dominance.
  std::vector<HalfSegment> hs =
      MakeHalfSegments({S(0, 0, 2, 0), S(0, 1, 2, 1), S(0, 2, 2, 2)});
  hs.erase(std::remove_if(hs.begin(), hs.end(),
                          [](const HalfSegment& h) {
                            return !h.left_dominating && h.seg.a().y > 0;
                          }),
           hs.end());
  ASSERT_EQ(hs.size(), 4u);
  Status s = validate::ValidateHalfSegmentOrder(hs);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("exactly once"), std::string::npos);
}

// -- line / region -----------------------------------------------------------

TEST(ValidateLine, ValidLinePasses) {
  Result<Line> line = Line::Make({S(0, 0, 1, 1), S(2, 2, 3, 3)});
  ASSERT_TRUE(line.ok());
  EXPECT_TRUE(validate::ValidateLine(*line).ok());
  EXPECT_TRUE(validate::ValidateLine(Line()).ok());
}

TEST(ValidateRegion, ValidRegionPasses) {
  Result<Region> region = Region::FromPolygon(
      {Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(validate::ValidateRegion(*region).ok());
  EXPECT_TRUE(validate::ValidateRegion(Region()).ok());
}

TEST(ValidateRegion, RejectsUnorderedStoredHalfsegments) {
  Result<Region> region = Region::FromPolygon(
      {Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
  ASSERT_TRUE(region.ok());
  std::vector<HalfSegment> hs = region->halfsegments();
  ASSERT_GE(hs.size(), 2u);
  std::swap(hs.front(), hs.back());
  Result<Region> rebuilt =
      Region::FromParts(hs, region->cycles(), region->faces(), region->Area(),
                        region->Perimeter(), region->BoundingBox());
  // The trusted reassembly path only bounds-checks links; the validator
  // must be the one to notice the broken ROSE order.
  ASSERT_TRUE(rebuilt.ok());
  Status s = validate::ValidateRegion(*rebuilt);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ROSE order"), std::string::npos);
}

}  // namespace
}  // namespace modb
