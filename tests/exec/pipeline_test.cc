#include "exec/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "db/parallel.h"
#include "db/query.h"
#include "db/relation_io.h"
#include "exec/planner.h"
#include "gen/flights_gen.h"
#include "obs/metrics.h"
#include "storage/page_store.h"

namespace modb {
namespace exec {
namespace {

// AttributeValue has no operator==; compare through the storage
// serialization, name and schema included — the "byte-identical"
// contract the engine promises against the materializing operators.
void ExpectByteIdentical(const Relation& a, const Relation& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.schema().NumAttributes(), b.schema().NumAttributes());
  for (std::size_t j = 0; j < a.schema().NumAttributes(); ++j) {
    EXPECT_EQ(a.schema().attribute(j).name, b.schema().attribute(j).name);
  }
  ASSERT_EQ(a.NumTuples(), b.NumTuples());
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    const Tuple& ta = a.tuple(i);
    const Tuple& tb = b.tuple(i);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      auto sa = SerializeAttribute(ta[j]);
      auto sb = SerializeAttribute(tb[j]);
      ASSERT_TRUE(sa.ok() && sb.ok());
      ASSERT_EQ(*sa, *sb) << "tuple " << i << " attr " << j;
    }
  }
}

Relation TestPlanes(int num_flights, std::uint64_t seed) {
  FlightsOptions opt;
  opt.num_flights = num_flights;
  opt.seed = seed;
  auto rel = GeneratePlanes(opt);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return *rel;
}

bool EvenUnits(const Tuple& t) {
  const auto& mp = std::get<MovingPoint>(t[std::size_t(kFlightAttrFlight)]);
  return mp.NumUnits() % 2 == 0;
}

const std::vector<int> kThreadCounts = {1, 2, 4, 7};

ExecOptions ThreadedOptions(ThreadPool* pool, ExecStats* stats = nullptr) {
  ExecOptions options;
  options.parallel.num_threads = 0;
  options.parallel.pool = pool;
  options.stats = stats;
  return options;
}

// Counter deltas can only be asserted when the metrics registry is
// compiled in; under MODB_NO_METRICS every counter reads 0.
std::uint64_t CounterValue(const char* name) {
#ifdef MODB_NO_METRICS
  (void)name;
  return 0;
#else
  return obs::Metrics::Global().counter(name)->value();
#endif
}

// ---------------------------------------------------------------------------
// Differential: fused pipelines vs composed materializing operators.
// ---------------------------------------------------------------------------

// Select → Project as ONE pipeline must equal Select() then Project()
// (two materializing operator calls), byte-for-byte, at every thread
// count — and must materialize exactly one Relation doing it.
TEST(PipelinedPlans, SelectProjectMatchesComposedOperators) {
  Relation planes = TestPlanes(60, 11);
  Relation composed = *Project(*Select(planes, EvenUnits),
                               {"airline", "flight"});

  LogicalQuery q;
  q.rel = &planes;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  q.project = std::vector<int>{kFlightAttrAirline, kFlightAttrFlight};
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ExecStats stats;
    const std::uint64_t sinks_before =
        CounterValue("exec.relations_materialized");
    auto out = RunPlan(*plan, ThreadedOptions(&pool, &stats));
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectByteIdentical(composed, *out);
    // Zero intermediate materializations: the fused plan builds one
    // Relation (the sink) where the composed chain builds two.
    EXPECT_EQ(stats.materializations, 1u);
#ifndef MODB_NO_METRICS
    EXPECT_EQ(CounterValue("exec.relations_materialized"), sinks_before + 1);
#else
    (void)sinks_before;
#endif
    EXPECT_EQ(stats.workers, std::uint64_t(threads));
    EXPECT_GE(stats.morsels, 1u);
    // Stage children: scan → select → project.
    ASSERT_EQ(stats.children.size(), 3u);
    EXPECT_EQ(stats.children[0].op, "scan");
    EXPECT_EQ(stats.children[1].op, "select");
    EXPECT_EQ(stats.children[2].op, "project");
    EXPECT_EQ(stats.children[1].predicate_evals, planes.NumTuples());
    EXPECT_EQ(stats.children[2].tuples_out, composed.NumTuples());
  }
}

// Select → IndexJoinOnMovingPoint as one pipeline vs the composed
// two-operator chain. The join predicate must not depend on the outer
// ordinal: the pipelined plan passes SOURCE row indices, the composed
// chain passes post-select ordinals.
TEST(PipelinedPlans, SelectIndexJoinMatchesComposedOperators) {
  Relation planes = TestPlanes(32, 12);
  Relation other = TestPlanes(32, 13);
  auto join_pred = [](const Tuple& ta, std::size_t, const Tuple& tb,
                      std::size_t) {
    const auto& ma = std::get<MovingPoint>(ta[std::size_t(kFlightAttrFlight)]);
    const auto& mb = std::get<MovingPoint>(tb[std::size_t(kFlightAttrFlight)]);
    return !ma.IsEmpty() && !mb.IsEmpty();
  };

  Relation composed = *IndexJoinOnMovingPoint(
      *Select(planes, EvenUnits), kFlightAttrFlight, other, kFlightAttrFlight,
      500.0, join_pred);

  LogicalQuery q;
  q.rel = &planes;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  LogicalQuery::JoinSpec join;
  join.algorithm = LogicalQuery::JoinSpec::Algorithm::kIndex;
  join.inner = &other;
  join.attr_outer = kFlightAttrFlight;
  join.attr_inner = kFlightAttrFlight;
  join.expand = 500.0;
  join.pred = JoinPred{join_pred, "nonempty_pair"};
  q.join = std::move(join);
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Index plan: a build step feeding the probe pipeline.
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_TRUE(plan->steps[0].build.has_value());

  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ExecStats stats;
    auto out = RunPlan(*plan, ThreadedOptions(&pool, &stats));
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectByteIdentical(composed, *out);
    EXPECT_EQ(stats.materializations, 1u);
    EXPECT_EQ(stats.index_builds, 1u);
    ASSERT_EQ(stats.children.size(), 4u);
    EXPECT_EQ(stats.children[0].op, "build_index");
    EXPECT_EQ(stats.children[3].op, "join_probe");
  }
}

// The nested-loop variant of the same fused plan.
TEST(PipelinedPlans, SelectNestedLoopJoinMatchesComposedOperators) {
  Relation planes = TestPlanes(16, 14);
  Relation other = TestPlanes(12, 15);
  auto join_pred = [](const Tuple& ta, std::size_t, const Tuple& tb,
                      std::size_t) {
    return std::get<StringValue>(ta[std::size_t(kFlightAttrAirline)]) <
           std::get<StringValue>(tb[std::size_t(kFlightAttrAirline)]);
  };
  Relation composed =
      *NestedLoopJoin(*Select(planes, EvenUnits), other, join_pred);

  LogicalQuery q;
  q.rel = &planes;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  LogicalQuery::JoinSpec join;
  join.algorithm = LogicalQuery::JoinSpec::Algorithm::kNestedLoop;
  join.inner = &other;
  join.pred = JoinPred{join_pred, "airline_lt"};
  q.join = std::move(join);
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto out = RunPlan(*plan, ThreadedOptions(&pool));
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectByteIdentical(composed, *out);
  }
}

TEST(PipelinedPlans, EmptySourceProducesEmptyOutput) {
  Relation planes = TestPlanes(3, 16);
  Relation empty("planes", planes.schema());
  LogicalQuery q;
  q.rel = &empty;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ExecStats stats;
  ExecOptions options;
  options.stats = &stats;
  auto out = RunPlan(*plan, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->NumTuples(), 0u);
  EXPECT_EQ(out->name(), "planes_sel");
  EXPECT_EQ(stats.workers, 1u);
}

// ---------------------------------------------------------------------------
// Spilled sources: pushdown and differential equivalence.
// ---------------------------------------------------------------------------

// A time-window select over a spilled relation must (a) produce exactly
// the in-memory result, and (b) never fault pages for rows whose
// resident stats already disqualify them.
TEST(PipelinedPlans, SpilledScanPushdownSkipsColdRows) {
  Relation planes = TestPlanes(48, 17);
  PageStore store;
  BufferPool pool(&store, 256);
  auto spilled =
      SpilledRelation::Spill(planes, kFlightAttrFlight, &store, &pool);
  ASSERT_TRUE(spilled.ok()) << spilled.status();

  // Window over the start of the departure range: some flights overlap,
  // later departures provably cannot.
  const Instant t0 = 0.0, t1 = 6.0;
  auto window_pred = [t0, t1](const Tuple& t) {
    const auto& mp = std::get<MovingPoint>(t[std::size_t(kFlightAttrFlight)]);
    if (mp.IsEmpty()) return false;
    return mp.units().front().interval().start() <= t1 &&
           t0 <= mp.units().back().interval().end();
  };

  LogicalQuery q;
  q.spilled = &*spilled;
  q.filters.push_back(Predicate{
      window_pred, "deftime_window", TimeWindow{kFlightAttrFlight, t0, t1}});
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ThreadPool tp(4);
  ExecStats stats;
  auto out = RunPlan(*plan, ThreadedOptions(&tp, &stats));
  ASSERT_TRUE(out.ok()) << out.status();

  // Rows the stats disqualified were never faulted in.
  EXPECT_GT(stats.pushdown_skips, 0u);
  std::size_t cold = 0;
  for (std::size_t i = 0; i < spilled->NumTuples(); ++i) {
    if (!spilled->stats(i).MayIntersectWindow(t0, t1)) {
      EXPECT_FALSE(spilled->IsLoaded(i)) << "row " << i << " was faulted";
      ++cold;
    }
  }
  EXPECT_EQ(stats.pushdown_skips, cold);
  EXPECT_GT(cold, 0u);

  // Byte-identical to the in-memory path over the fully loaded data.
  auto all = spilled->MaterializeAll();
  ASSERT_TRUE(all.ok()) << all.status();
  Relation reference = *Select(*all, window_pred);
  ExpectByteIdentical(reference, *out);
}

// Spilled scans stay byte-identical across thread counts (concurrent
// page faults on distinct rows).
TEST(PipelinedPlans, SpilledScanMatchesAcrossThreadCounts) {
  Relation planes = TestPlanes(30, 18);
  PageStore store;
  BufferPool pool(&store, 256);
  auto spilled =
      SpilledRelation::Spill(planes, kFlightAttrFlight, &store, &pool);
  ASSERT_TRUE(spilled.ok()) << spilled.status();

  LogicalQuery q;
  q.spilled = &*spilled;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ExecOptions serial;
  auto baseline = RunPlan(*plan, serial);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_GT(baseline->NumTuples(), 0u);
  for (int threads : kThreadCounts) {
    ThreadPool tp(threads);
    auto out = RunPlan(*plan, ThreadedOptions(&tp));
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectByteIdentical(*baseline, *out);
  }
}

// A faulting row (corrupted page) must surface the SAME error whatever
// the schedule: the engine reports the smallest failing morsel.
TEST(PipelinedPlans, SpilledLoadErrorIsDeterministic) {
  Relation planes = TestPlanes(12, 19);
  PageStore store;
  BufferPool pool(&store, 64);
  auto spilled =
      SpilledRelation::Spill(planes, kFlightAttrFlight, &store, &pool);
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  // Row 0 spilled first, so page 0 belongs to it; trash the page.
  std::string garbage(kPageSize, '\x5a');
  ASSERT_TRUE(store.WritePage(0, garbage.data()).ok());

  LogicalQuery q;
  q.spilled = &*spilled;
  q.filters.push_back(
      Predicate{[](const Tuple&) { return true; }, "all", std::nullopt});
  q.morsel_rows = 1;
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ExecOptions serial;
  auto serial_out = RunPlan(*plan, serial);
  ASSERT_FALSE(serial_out.ok());
  for (int threads : {2, 4}) {
    ThreadPool tp(threads);
    auto out = RunPlan(*plan, ThreadedOptions(&tp));
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().ToString(), serial_out.status().ToString());
  }
}

// ---------------------------------------------------------------------------
// Work stealing: determinism under permuted completion orders.
// ---------------------------------------------------------------------------

// Fixed thread count, 1-row morsels, and a hook that stalls one chosen
// worker per run: completion order (and who steals what) is permuted
// across runs, the output must not move a byte, and the stalled runs
// must actually exercise stealing.
TEST(PipelinedPlans, WorkStealingPermutationsAreByteIdentical) {
  Relation planes = TestPlanes(40, 20);
  LogicalQuery q;
  q.rel = &planes;
  q.filters.push_back(Predicate{EvenUnits, "even_units", std::nullopt});
  q.morsel_rows = 1;  // maximize scheduling freedom
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();

  ExecOptions serial;
  auto baseline = RunPlan(*plan, serial);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  std::uint64_t total_stolen = 0;
  for (std::size_t slow_worker = 0; slow_worker < 4; ++slow_worker) {
    ExecTestHooks hooks;
    hooks.before_morsel = [slow_worker](std::size_t worker, std::size_t) {
      if (worker == slow_worker) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    };
    SetExecTestHooks(&hooks);
    ThreadPool tp(4);
    ExecStats stats;
    ExecOptions options = ThreadedOptions(&tp, &stats);
    options.parallel.num_threads = 4;
    auto out = RunPlan(*plan, options);
    SetExecTestHooks(nullptr);
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectByteIdentical(*baseline, *out);
    // Every morsel claimed exactly once regardless of who ran it.
    EXPECT_EQ(stats.morsels, 40u);
    total_stolen += stats.morsels_stolen;
  }
  // A stalled worker sheds most of its shard: across the four
  // permutations stealing must have happened.
  EXPECT_GT(total_stolen, 0u);
}

// ---------------------------------------------------------------------------
// Plan validation.
// ---------------------------------------------------------------------------

TEST(RunPlanValidation, RejectsMalformedPlans) {
  Relation planes = TestPlanes(3, 21);
  // No pipeline step.
  PhysicalPlan no_pipe;
  no_pipe.out_schema = planes.schema();
  ExecOptions options;
  EXPECT_FALSE(RunPlan(no_pipe, options).ok());

  // Dependency cycle.
  PhysicalPlan cycle;
  cycle.out_name = "x";
  cycle.out_schema = planes.schema();
  PlanStep step;
  step.pipe = Pipeline{};
  step.pipe->rel = &planes;
  step.deps = {0};  // depends on itself
  cycle.steps.push_back(std::move(step));
  EXPECT_FALSE(RunPlan(cycle, options).ok());

  // Thread-count sanity bound comes from the shared helper.
  PhysicalPlan ok_plan;
  ok_plan.out_name = "y";
  ok_plan.out_schema = planes.schema();
  PlanStep ok_step;
  ok_step.pipe = Pipeline{};
  ok_step.pipe->rel = &planes;
  ok_plan.steps.push_back(std::move(ok_step));
  ExecOptions absurd;
  absurd.parallel.num_threads = kMaxQueryThreads + 1;
  auto r = RunPlan(ok_plan, absurd);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace exec
}  // namespace modb
