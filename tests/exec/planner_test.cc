#include "exec/planner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/flights_gen.h"
#include "obs/metrics.h"
#include "storage/page_store.h"

namespace modb {
namespace exec {
namespace {

Relation TestPlanes(int num_flights, std::uint64_t seed) {
  FlightsOptions opt;
  opt.num_flights = num_flights;
  opt.seed = seed;
  auto rel = GeneratePlanes(opt);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return *rel;
}

bool AnyTuple(const Tuple&) { return true; }

bool AnyPair(const Tuple&, std::size_t, const Tuple&, std::size_t) {
  return true;
}

// Counter deltas can only be asserted when the metrics registry is
// compiled in; under MODB_NO_METRICS every counter reads 0.
std::uint64_t CounterValue(const char* name) {
#ifdef MODB_NO_METRICS
  (void)name;
  return 0;
#else
  return obs::Metrics::Global().counter(name)->value();
#endif
}

LogicalQuery JoinQuery(const Relation* outer, const Relation* inner,
                       LogicalQuery::JoinSpec::Algorithm algorithm =
                           LogicalQuery::JoinSpec::Algorithm::kAuto) {
  LogicalQuery q;
  q.rel = outer;
  LogicalQuery::JoinSpec join;
  join.algorithm = algorithm;
  join.inner = inner;
  join.attr_outer = kFlightAttrFlight;
  join.attr_inner = kFlightAttrFlight;
  join.expand = 100.0;
  join.pred = JoinPred{AnyPair, "any_pair"};
  q.join = std::move(join);
  return q;
}

// ---------------------------------------------------------------------------
// Rule 2: join algorithm choice.
// ---------------------------------------------------------------------------

// Tiny join: outer×inner below the eval budget, nested loop wins (no
// build step, probe kind kNestedLoop).
TEST(Planner, AutoPicksNestedLoopForTinyJoin) {
  PlanCacheClear();
  Relation a = TestPlanes(8, 1);
  Relation b = TestPlanes(8, 2);
  auto plan = PlanQuery(JoinQuery(&a, &b));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 1u);
  ASSERT_TRUE(plan->steps[0].pipe.has_value());
  ASSERT_TRUE(plan->steps[0].pipe->join.has_value());
  EXPECT_EQ(plan->steps[0].pipe->join->kind, JoinProbeOp::Kind::kNestedLoop);
  EXPECT_EQ(plan->out_name, "planes_x_planes");
}

// Large join: the index pays for its build; the plan grows a build step
// the probe pipeline depends on.
TEST(Planner, AutoPicksIndexJoinForLargeJoin) {
  PlanCacheClear();
  Relation a = TestPlanes(100, 3);
  Relation b = TestPlanes(100, 4);
  auto plan = PlanQuery(JoinQuery(&a, &b));
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 2u);
  ASSERT_TRUE(plan->steps[0].build.has_value());
  ASSERT_TRUE(plan->steps[1].pipe.has_value());
  const Pipeline& pipe = *plan->steps[1].pipe;
  ASSERT_TRUE(pipe.join.has_value());
  EXPECT_EQ(pipe.join->kind, JoinProbeOp::Kind::kIndex);
  EXPECT_EQ(pipe.join->build_step, 0);
  ASSERT_EQ(plan->steps[1].deps.size(), 1u);
  EXPECT_EQ(plan->steps[1].deps[0], 0u);
  EXPECT_EQ(plan->out_name, "planes_ix_planes");
}

// A prebuilt tree makes the index free: chosen even for tiny inputs,
// with no build step.
TEST(Planner, PrebuiltTreeForcesIndexJoinWithoutBuildStep) {
  PlanCacheClear();
  Relation a = TestPlanes(4, 5);
  Relation b = TestPlanes(4, 6);
  auto tree = BuildMovingPointIndex(b, kFlightAttrFlight);
  ASSERT_TRUE(tree.ok()) << tree.status();
  LogicalQuery q = JoinQuery(&a, &b);
  q.join->prebuilt = &*tree;
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 1u);
  ASSERT_TRUE(plan->steps[0].pipe->join.has_value());
  EXPECT_EQ(plan->steps[0].pipe->join->kind, JoinProbeOp::Kind::kIndex);
  EXPECT_EQ(plan->steps[0].pipe->join->tree, &*tree);
}

// ---------------------------------------------------------------------------
// Rule 1: predicate pushdown into spilled scans.
// ---------------------------------------------------------------------------

TEST(Planner, PushesWindowIntersectionIntoSpilledScan) {
  PlanCacheClear();
  Relation planes = TestPlanes(6, 7);
  PageStore store;
  BufferPool pool(&store, 64);
  auto spilled =
      SpilledRelation::Spill(planes, kFlightAttrFlight, &store, &pool);
  ASSERT_TRUE(spilled.ok()) << spilled.status();

  LogicalQuery q;
  q.spilled = &*spilled;
  q.filters.push_back(
      Predicate{AnyTuple, "w1", TimeWindow{kFlightAttrFlight, 0.0, 10.0}});
  q.filters.push_back(
      Predicate{AnyTuple, "w2", TimeWindow{kFlightAttrFlight, 4.0, 20.0}});
  // A window on a different attribute must not narrow the scan window.
  q.filters.push_back(
      Predicate{AnyTuple, "w3", TimeWindow{kFlightAttrAirline, 99.0, 100.0}});
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 1u);
  const Pipeline& pipe = *plan->steps[0].pipe;
  ASSERT_TRUE(pipe.scan_window.has_value());
  EXPECT_EQ(pipe.scan_window->attr, kFlightAttrFlight);
  EXPECT_EQ(pipe.scan_window->t0, 4.0);
  EXPECT_EQ(pipe.scan_window->t1, 10.0);
}

TEST(Planner, NoPushdownForInMemorySource) {
  PlanCacheClear();
  Relation planes = TestPlanes(4, 8);
  LogicalQuery q;
  q.rel = &planes;
  q.filters.push_back(
      Predicate{AnyTuple, "w1", TimeWindow{kFlightAttrFlight, 0.0, 10.0}});
  auto plan = PlanQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->steps[0].pipe->scan_window.has_value());
}

// ---------------------------------------------------------------------------
// Rule 3: the plan cache.
// ---------------------------------------------------------------------------

TEST(Planner, CachesDecisionsByQueryShape) {
  PlanCacheClear();
  ASSERT_EQ(PlanCacheSize(), 0u);
  Relation a = TestPlanes(100, 9);
  Relation b = TestPlanes(100, 10);
  const LogicalQuery q = JoinQuery(&a, &b);

  const std::uint64_t misses_before = CounterValue("exec.plan_cache.misses");
  const std::uint64_t hits_before = CounterValue("exec.plan_cache.hits");
  auto first = PlanQuery(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(PlanCacheSize(), 1u);
#ifndef MODB_NO_METRICS
  EXPECT_EQ(CounterValue("exec.plan_cache.misses"), misses_before + 1);
#else
  (void)misses_before;
#endif

  // Same shape again: a hit, no new entry, same physical shape.
  auto second = PlanQuery(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(PlanCacheSize(), 1u);
#ifndef MODB_NO_METRICS
  EXPECT_EQ(CounterValue("exec.plan_cache.hits"), hits_before + 1);
#else
  (void)hits_before;
#endif
  EXPECT_EQ(second->steps.size(), first->steps.size());

  // A different predicate shape is a different key → a new entry.
  LogicalQuery q2 = JoinQuery(&a, &b);
  q2.join->pred.shape = "close_pair";
  EXPECT_NE(PlanCacheKey(q), PlanCacheKey(q2));
  auto third = PlanQuery(q2);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(PlanCacheSize(), 2u);
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(Planner, RejectsMalformedQueries) {
  Relation planes = TestPlanes(4, 11);

  LogicalQuery no_source;
  EXPECT_FALSE(PlanQuery(no_source).ok());

  LogicalQuery both_terminals;
  both_terminals.rel = &planes;
  both_terminals.project = std::vector<int>{0};
  both_terminals.join = LogicalQuery::JoinSpec{};
  both_terminals.join->inner = &planes;
  both_terminals.join->pred = JoinPred{AnyPair, "any"};
  EXPECT_FALSE(PlanQuery(both_terminals).ok());

  LogicalQuery bad_proj;
  bad_proj.rel = &planes;
  bad_proj.project = std::vector<int>{99};
  EXPECT_FALSE(PlanQuery(bad_proj).ok());

  LogicalQuery no_inner;
  no_inner.rel = &planes;
  no_inner.join = LogicalQuery::JoinSpec{};
  no_inner.join->pred = JoinPred{AnyPair, "any"};
  EXPECT_FALSE(PlanQuery(no_inner).ok());

  // Index join over a non-moving-point outer attribute.
  LogicalQuery bad_attr = JoinQuery(&planes, &planes,
                                    LogicalQuery::JoinSpec::Algorithm::kIndex);
  bad_attr.join->attr_outer = kFlightAttrAirline;
  EXPECT_FALSE(PlanQuery(bad_attr).ok());

  // Nested loop has no attribute requirements.
  LogicalQuery nl = JoinQuery(&planes, &planes,
                              LogicalQuery::JoinSpec::Algorithm::kNestedLoop);
  nl.join->attr_outer = -1;
  nl.join->attr_inner = -1;
  EXPECT_TRUE(PlanQuery(nl).ok());
}

}  // namespace
}  // namespace exec
}  // namespace modb
