#include "ext/simplify.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ext/quadratic_motion.h"
#include "gen/trajectory_gen.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e, bool lc = true, bool rc = true) {
  return *TimeInterval::Make(s, e, lc, rc);
}

TEST(SimplifyTest, StraightLineCollapsesToOneUnit) {
  // Many slices of one straight constant-speed motion.
  MovingPoint mp = *StraightRoute(Point(0, 0), Point(100, 0), 0, 10, 1);
  // StraightRoute merges equal motions already; build a noisy-free
  // multi-unit version manually with distinct roundings.
  MappingBuilder<UPoint> b;
  for (int i = 0; i < 10; ++i) {
    double t0 = i, t1 = i + 1;
    (void)b.Append(*UPoint::FromEndpoints(TI(t0, t1, true, i == 9),
                                          Point(10 * t0, 0),
                                          Point(10 * t1, 0)));
  }
  MovingPoint many = *b.Build();
  MovingPoint simple = *SimplifyTrajectory(many, 0.001);
  EXPECT_EQ(simple.NumUnits(), 1u);
  EXPECT_TRUE(ApproxEqual(simple.Initial().val(), Point(0, 0)));
  EXPECT_TRUE(ApproxEqual(simple.Final().val(), Point(100, 0)));
}

TEST(SimplifyTest, ErrorBoundHolds) {
  std::mt19937_64 rng(5);
  TrajectoryOptions opts;
  opts.num_units = 200;
  opts.max_step = 10;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  for (double tol : {1.0, 5.0, 25.0}) {
    auto simple = SimplifyTrajectory(mp, tol);
    ASSERT_TRUE(simple.ok()) << simple.status();
    EXPECT_LE(simple->NumUnits(), mp.NumUnits());
    // Douglas–Peucker with the synchronous metric keeps every sample
    // within tol of the simplified chain; probe densely for the bound
    // (allow the usual DP slack at interior instants).
    double dev = TrajectoryDeviation(mp, *simple);
    EXPECT_LE(dev, tol * 1.0001) << "tol=" << tol;
  }
}

TEST(SimplifyTest, MoreToleranceFewerUnits) {
  std::mt19937_64 rng(9);
  TrajectoryOptions opts;
  opts.num_units = 300;
  opts.max_step = 15;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  std::size_t tight = SimplifyTrajectory(mp, 0.5)->NumUnits();
  std::size_t loose = SimplifyTrajectory(mp, 50.0)->NumUnits();
  EXPECT_LT(loose, tight);
  EXPECT_GE(tight, 10u);
}

TEST(SimplifyTest, RecoversLinearizedQuadratic) {
  // Linearize tightly, then simplify with a coarser tolerance: the unit
  // count must drop while the coarse bound still holds.
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(10, 20), Point(0, -4));
  MovingPoint fine = *Linearize(q, TI(0, 10), 0.01);
  MovingPoint coarse = *SimplifyTrajectory(fine, 1.0);
  EXPECT_LT(coarse.NumUnits(), fine.NumUnits());
  double worst = 0;
  for (double t = 0; t <= 10; t += 0.05) {
    worst = std::max(worst, Distance(coarse.AtInstant(t).val(), q.At(t)));
  }
  EXPECT_LE(worst, 1.2);  // Coarse tolerance plus the fine residue.
}

TEST(SimplifyTest, PreservesEndpointsAndDeftime) {
  std::mt19937_64 rng(11);
  TrajectoryOptions opts;
  opts.num_units = 50;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  MovingPoint simple = *SimplifyTrajectory(mp, 100.0);
  EXPECT_DOUBLE_EQ(simple.DefTime().Minimum(), mp.DefTime().Minimum());
  EXPECT_DOUBLE_EQ(simple.DefTime().Maximum(), mp.DefTime().Maximum());
  EXPECT_TRUE(ApproxEqual(simple.Initial().val(), mp.Initial().val()));
  EXPECT_TRUE(ApproxEqual(simple.Final().val(), mp.Final().val()));
}

TEST(SimplifyTest, RejectsGapsAndBadTolerance) {
  MovingPoint gappy = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 0)),
       *UPoint::FromEndpoints(TI(5, 6), Point(1, 0), Point(2, 0))});
  EXPECT_EQ(SimplifyTrajectory(gappy, 1.0).status().code(),
            StatusCode::kFailedPrecondition);
  MovingPoint one = *MovingPoint::Make(
      {*UPoint::FromEndpoints(TI(0, 1), Point(0, 0), Point(1, 0))});
  EXPECT_FALSE(SimplifyTrajectory(one, -1).ok());
  EXPECT_EQ(SimplifyTrajectory(one, 1.0)->NumUnits(), 1u);
}

}  // namespace
}  // namespace modb
