#include "ext/quadratic_motion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "temporal/lifted_ops.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e) { return *TimeInterval::Make(s, e, true, true); }

TEST(QuadraticMotionTest, BallisticEvaluation) {
  // Thrown from (0, 0) with velocity (10, 10) under gravity (0, -2).
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(10, 10), Point(0, -2));
  EXPECT_TRUE(ApproxEqual(q.At(0), Point(0, 0)));
  EXPECT_TRUE(ApproxEqual(q.At(1), Point(10, 9)));    // 10 - 1.
  EXPECT_TRUE(ApproxEqual(q.At(10), Point(100, 0)));  // Lands at t=10.
  EXPECT_DOUBLE_EQ(q.AccelerationNorm(), 2);
}

TEST(QuadraticMotionTest, BallisticWithNonZeroStart) {
  QuadraticMotion q = QuadraticMotion::Ballistic(Point(5, 5), Point(1, 0),
                                                 Point(0, -2), /*t0=*/3);
  EXPECT_TRUE(ApproxEqual(q.At(3), Point(5, 5)));
  EXPECT_TRUE(ApproxEqual(q.At(4), Point(6, 4)));
}

TEST(LinearizeTest, ErrorBoundRespected) {
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(10, 10), Point(0, -2));
  for (double tol : {1.0, 0.1, 0.01}) {
    MovingPoint mp = *Linearize(q, TI(0, 10), tol);
    double worst = 0;
    for (double t = 0; t <= 10; t += 0.01) {
      worst = std::max(worst, Distance(mp.AtInstant(t).val(), q.At(t)));
    }
    EXPECT_LE(worst, tol * (1 + 1e-9)) << "tol=" << tol;
  }
}

TEST(LinearizeTest, SliceCountScalesWithInverseSqrtTolerance) {
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(10, 10), Point(0, -2));
  int coarse = LinearizeSliceCount(q, TI(0, 10), 0.1);
  int fine = LinearizeSliceCount(q, TI(0, 10), 0.001);
  // Error ~ h²: 100× tighter tolerance needs ~10× more slices.
  EXPECT_NEAR(double(fine) / double(coarse), 10.0, 2.0);
}

TEST(LinearizeTest, LinearMotionNeedsOneSlice) {
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(3, 4), Point(0, 0));
  EXPECT_EQ(LinearizeSliceCount(q, TI(0, 10), 0.001), 1);
  MovingPoint mp = *Linearize(q, TI(0, 10), 0.001);
  EXPECT_EQ(mp.NumUnits(), 1u);
}

TEST(LinearizeTest, RejectsBadTolerance) {
  QuadraticMotion q;
  EXPECT_FALSE(Linearize(q, TI(0, 1), 0).ok());
  EXPECT_FALSE(Linearize(q, TI(0, 1), -1).ok());
}

TEST(LinearizeTest, DegenerateInterval) {
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(1, 2), Point(3, 4), Point(5, 6));
  MovingPoint mp = *Linearize(q, TimeInterval::At(2), 0.1);
  ASSERT_EQ(mp.NumUnits(), 1u);
  EXPECT_TRUE(ApproxEqual(mp.AtInstant(2).val(), q.At(2)));
}

TEST(LinearizePathTest, CircleApproximation) {
  auto circle = [](Instant t) {
    return Point(std::cos(t), std::sin(t));
  };
  MovingPoint mp = *LinearizePath(circle, TI(0, 2 * std::numbers::pi), 0.01);
  EXPECT_GT(mp.NumUnits(), 8u);
  double worst = 0;
  for (double t = 0; t <= 2 * std::numbers::pi; t += 0.003) {
    worst = std::max(worst, Distance(mp.AtInstant(t).val(), circle(t)));
  }
  // The midpoint probe is a heuristic; allow a small slack factor.
  EXPECT_LE(worst, 0.03);
  // The trajectory length approaches the circumference from below.
  EXPECT_NEAR(Trajectory(mp).Length(), 2 * std::numbers::pi, 0.05);
}

TEST(LinearizePathTest, ToleranceDrivesUnitCount) {
  auto wave = [](Instant t) { return Point(t, std::sin(t)); };
  MovingPoint coarse = *LinearizePath(wave, TI(0, 20), 0.1);
  MovingPoint fine = *LinearizePath(wave, TI(0, 20), 0.001);
  EXPECT_GT(fine.NumUnits(), coarse.NumUnits());
}

TEST(LinearizePathTest, MaxDepthBoundsWork) {
  // A pathological path with a kink: depth cap keeps it terminating.
  auto kink = [](Instant t) {
    return Point(t, t < 5 ? 0.0 : (t - 5) * 100);
  };
  auto mp = LinearizePath(kink, TI(0, 10), 1e-9, /*max_depth=*/6);
  ASSERT_TRUE(mp.ok());
  EXPECT_LE(mp->NumUnits(), 64u);
}

}  // namespace
}  // namespace modb
