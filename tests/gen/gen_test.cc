#include <gtest/gtest.h>

#include <random>

#include "gen/flights_gen.h"
#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

TEST(TrajectoryGen, RandomWalkProducesRequestedSlicing) {
  std::mt19937_64 rng(1);
  TrajectoryOptions opts;
  opts.num_units = 32;
  opts.unit_duration = 2;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  // Merging of equal-motion units may reduce the count, never increase.
  EXPECT_LE(mp.NumUnits(), 32u);
  EXPECT_GE(mp.NumUnits(), 16u);
  EXPECT_DOUBLE_EQ(mp.TotalDuration(), 64);
  // Continuity across unit boundaries.
  for (std::size_t i = 0; i + 1 < mp.NumUnits(); ++i) {
    Point end = mp.unit(i).EndPoint();
    Point start = mp.unit(i + 1).StartPoint();
    EXPECT_TRUE(ApproxEqual(end, start));
  }
}

TEST(TrajectoryGen, StaysInExtent) {
  std::mt19937_64 rng(2);
  TrajectoryOptions opts;
  opts.num_units = 50;
  opts.extent = 100;
  opts.max_step = 50;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  for (double t = 0; t < 50; t += 0.5) {
    Point p = mp.AtInstant(t).val();
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 100 + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, 100 + 1e-9);
  }
}

TEST(TrajectoryGen, StopProbabilityCreatesStationaryUnits) {
  std::mt19937_64 rng(3);
  TrajectoryOptions opts;
  opts.num_units = 60;
  opts.stop_probability = 0.5;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  EXPECT_FALSE(Locations(mp).IsEmpty());
}

TEST(TrajectoryGen, StraightRouteGeometry) {
  MovingPoint mp = *StraightRoute(Point(0, 0), Point(100, 0), 5, 10, 4);
  EXPECT_TRUE(ApproxEqual(mp.Initial().val(), Point(0, 0)));
  EXPECT_TRUE(ApproxEqual(mp.Final().val(), Point(100, 0)));
  EXPECT_DOUBLE_EQ(mp.Initial().inst(), 5);
  EXPECT_DOUBLE_EQ(mp.Final().inst(), 15);
  // Constant speed 10 throughout.
  MovingReal s = *Speed(mp);
  EXPECT_NEAR(s.AtInstant(7).val(), 10, 1e-9);
  EXPECT_FALSE(StraightRoute(Point(0, 0), Point(1, 0), 0, -1, 4).ok());
}

TEST(RegionGen, StaticRegionValid) {
  std::mt19937_64 rng(4);
  RegionGenOptions opts;
  opts.num_vertices = 24;
  opts.radius = 50;
  auto r = GenerateRegion(rng, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumSegments(), 24u);
  EXPECT_GT(r->Area(), 0);
}

TEST(RegionGen, WithHole) {
  std::mt19937_64 rng(5);
  RegionGenOptions opts;
  opts.num_vertices = 12;
  opts.radius = 50;
  opts.with_hole = true;
  auto r = GenerateRegion(rng, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumCycles(), 2u);
  EXPECT_FALSE(r->Contains(opts.center));  // Center is inside the hole.
}

TEST(RegionGen, MovingRegionContinuity) {
  std::mt19937_64 rng(6);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 10;
  opts.shape.radius = 30;
  opts.num_units = 4;
  opts.unit_duration = 5;
  opts.drift = Point(10, -5);
  opts.scale_per_unit = 1.2;
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  ASSERT_EQ(mr.NumUnits(), 4u);
  // The region evolves continuously across unit boundaries.
  for (std::size_t i = 0; i + 1 < mr.NumUnits(); ++i) {
    double boundary = mr.unit(i).interval().end();
    double a0 = mr.unit(i).ValueAt(boundary - 1e-6).Area();
    double a1 = mr.unit(i + 1).ValueAt(boundary + 1e-6).Area();
    EXPECT_NEAR(a0, a1, 0.01 * a0);
  }
}

TEST(RegionGen, ConstantDriftMergesIntoOneUnit) {
  // A rigid constant-velocity motion has identical unit functions in
  // every slice, so the builder collapses them (minimality); the zig-zag
  // alternation keeps the slicing observable.
  std::mt19937_64 rng(12);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 6;
  opts.num_units = 8;
  opts.unit_duration = 1;
  opts.drift = Point(5, 0);
  MovingRegion merged = *GenerateMovingRegion(rng, opts);
  EXPECT_LT(merged.NumUnits(), 8u);
  std::mt19937_64 rng2(12);
  opts.drift_alternation = Point(0, 1);
  MovingRegion sliced = *GenerateMovingRegion(rng2, opts);
  EXPECT_EQ(sliced.NumUnits(), 8u);
  EXPECT_DOUBLE_EQ(sliced.TotalDuration(), 8);
}

TEST(FlightsGen, SchemaAndContents) {
  auto planes = GeneratePlanes({.num_airports = 5,
                                .num_flights = 20,
                                .extent = 1000,
                                .units_per_flight = 6,
                                .speed = 100,
                                .departure_window = 10,
                                .seed = 7});
  ASSERT_TRUE(planes.ok()) << planes.status();
  EXPECT_EQ(planes->NumTuples(), 20u);
  EXPECT_EQ(planes->schema().attribute(2).type, AttributeType::kMovingPoint);
  for (const Tuple& t : planes->tuples()) {
    const auto& mp = std::get<MovingPoint>(t[kFlightAttrFlight]);
    EXPECT_FALSE(mp.IsEmpty());
    // Flights travel at the configured speed.
    MovingReal s = *Speed(mp);
    EXPECT_NEAR(s.AtInstant(s.unit(0).interval().start()).val(), 100, 1e-6);
  }
}

TEST(FlightsGen, Deterministic) {
  FlightsOptions opts;
  opts.num_flights = 5;
  auto a = GeneratePlanes(opts);
  auto b = GeneratePlanes(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < a->NumTuples(); ++i) {
    EXPECT_EQ(std::get<StringValue>(a->tuple(i)[1]).value(),
              std::get<StringValue>(b->tuple(i)[1]).value());
  }
  EXPECT_FALSE(GeneratePlanes({.num_airports = 1}).ok());
}

}  // namespace
}  // namespace modb
