// Crash campaign over the live-ingest durability path: every device
// write of a multi-batch ingest+persist workload (with LSM merges
// between batches — the "mid-merge era") is crashed, both as a hard
// failure and as a torn write, and recovery must land on a committed
// batch prefix: the store opens, accounts for every page, and the
// recovered tails are BITWISE identical to replaying exactly the
// committed batches. An acked batch (Persist returned OK) must never
// be lost.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/live_relation.h"
#include "storage/fault.h"
#include "storage/recovery.h"

namespace modb {
namespace ingest {
namespace {

std::vector<std::vector<IngestFix>> Batches() {
  // 3 objects x 8 steps, 4 batches of 6 fixes. Small on purpose: the
  // campaign replays the workload once per write site.
  std::vector<std::vector<IngestFix>> batches;
  std::vector<IngestFix> cur;
  for (int t = 0; t < 8; ++t) {
    for (int o = 0; o < 3; ++o) {
      cur.push_back({"obj" + std::to_string(o), double(t),
                     double(o * 10 + t), double(o * -5 - t)});
      if (cur.size() == 6) {
        batches.push_back(cur);
        cur.clear();
      }
    }
  }
  if (!cur.empty()) batches.push_back(cur);
  return batches;
}

// Replays the workload: per batch Ingest + Persist, with an inline
// merge after every even batch so commits land in distinct merge eras.
// Returns the number of batches ACKED. A batch is acked only if Persist
// returned OK *and* no fault fired during it: a torn write is silent
// (the Commit may "succeed"), but firing means the process died inside
// the call, so the ack never reached the client — exactly how the PR-5
// crash campaign counts its commit points.
std::size_t RunWorkload(LiveRelation* live,
                        const std::vector<std::vector<IngestFix>>& batches) {
  std::size_t acked = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (!live->Ingest(batches[b]).ok()) break;
    const Status persisted = live->Persist();
    if (FaultInjector::Global().FiredCount() > 0) break;
    if (!persisted.ok()) break;
    ++acked;
    if (b % 2 == 0) live->MergeNow();
  }
  return acked;
}

void ExpectTailsMatch(const LiveRelation& got, const LiveRelation& want) {
  ASSERT_EQ(got.NumObjects(), want.NumObjects());
  for (std::size_t row = 0; row < want.NumObjects(); ++row) {
    const TailSeries& g = got.tail(row);
    const TailSeries& w = want.tail(row);
    ASSERT_EQ(g.NumUnits(), w.NumUnits()) << "row " << row;
    for (std::size_t i = 0; i < w.NumUnits(); ++i) {
      const double gd[6] = {g.units()[i].interval().start(),
                            g.units()[i].interval().end(),
                            g.units()[i].motion().x0,
                            g.units()[i].motion().x1,
                            g.units()[i].motion().y0,
                            g.units()[i].motion().y1};
      const double wd[6] = {w.units()[i].interval().start(),
                            w.units()[i].interval().end(),
                            w.units()[i].motion().x0,
                            w.units()[i].motion().x1,
                            w.units()[i].motion().y0,
                            w.units()[i].motion().y1};
      EXPECT_EQ(0, std::memcmp(gd, wd, sizeof gd))
          << "row " << row << " unit " << i;
    }
    const double ga[2] = {g.last_point().x, g.last_point().y};
    const double wa[2] = {w.last_point().x, w.last_point().y};
    EXPECT_EQ(g.last_time(), w.last_time()) << "row " << row;
    EXPECT_EQ(0, std::memcmp(ga, wa, sizeof ga)) << "row " << row;
  }
}

TEST(IngestCrash, EveryWriteSiteRecoversToACommittedBatchPrefix) {
  if (!kFaultsEnabled) GTEST_SKIP() << "faults compiled out (MODB_FAULTS=OFF)";
  const std::string path = ::testing::TempDir() + "/ingest_crash_store.bin";
  const std::vector<std::vector<IngestFix>> batches = Batches();
  FaultInjector& injector = FaultInjector::Global();

  // Clean pass: enumerate the workload's write sites.
  std::uint64_t write_sites = 0;
  std::uint64_t base_epoch = 0;
  {
    Result<VersionedSpillStore> store = VersionedSpillStore::Create(path);
    ASSERT_TRUE(store.ok()) << store.status();
    base_epoch = store->epoch();
    LiveRelation live("fleet", LiveOptions{2, 8, 16});
    ASSERT_TRUE(live.AttachStore(&*store).ok());
    injector.Disarm();  // count from here: the workload's own writes
    ASSERT_EQ(batches.size(), RunWorkload(&live, batches));
    write_sites = injector.OpCount(FaultOp::kWrite);
  }
  ASSERT_GT(write_sites, 0u);

  std::uint64_t crashes = 0, recoveries = 0;
  for (int torn = 0; torn < 2; ++torn) {
    for (std::uint64_t site = 0; site < write_sites; ++site) {
      injector.Disarm();
      {
        Result<VersionedSpillStore> store = VersionedSpillStore::Create(path);
        ASSERT_TRUE(store.ok());
        LiveRelation live("fleet", LiveOptions{2, 8, 16});
        ASSERT_TRUE(live.AttachStore(&*store).ok());
        if (torn != 0) {
          injector.TearNth(site, 7);  // persist 7 bytes, then die
        } else {
          injector.FailNth(FaultOp::kWrite, site);
        }
        injector.HaltAfterFire();
        const std::size_t acked = RunWorkload(&live, batches);
        ASSERT_GT(injector.FiredCount(), 0u)
            << "site " << site << " never fired";
        ++crashes;
        injector.Disarm();
        store->Abandon();  // the dead process's handle

        // Recovery: reopen and re-attach, as modbd --store does.
        Result<VersionedSpillStore> reopened =
            VersionedSpillStore::Open(path);
        ASSERT_TRUE(reopened.ok())
            << "site " << site << ": " << reopened.status();
        ASSERT_TRUE(reopened->VerifyAccounting().ok())
            << "site " << site << " leaked pages";
        const std::uint64_t committed = reopened->epoch() - base_epoch;
        // Acked implies durable; at most the in-flight batch beyond it
        // can have committed before the crash point.
        ASSERT_GE(committed, acked) << "site " << site << " lost an ack";
        ASSERT_LE(committed, acked + 1) << "site " << site;
        ASSERT_LE(committed, batches.size()) << "site " << site;

        LiveRelation recovered("fleet", LiveOptions{2, 8, 16});
        ASSERT_TRUE(recovered.AttachStore(&*reopened).ok())
            << "site " << site;
        LiveRelation reference("fleet", LiveOptions{2, 8, 16});
        for (std::size_t b = 0; b < committed; ++b) {
          ASSERT_TRUE(reference.Ingest(batches[b]).ok());
        }
        ExpectTailsMatch(recovered, reference);

        // The recovered relation must accept the remaining batches.
        for (std::size_t b = committed; b < batches.size(); ++b) {
          ASSERT_TRUE(recovered.Ingest(batches[b]).ok()) << "site " << site;
          ASSERT_TRUE(recovered.Persist().ok()) << "site " << site;
        }
        ++recoveries;
      }
    }
  }
  injector.Disarm();
  EXPECT_EQ(crashes, 2 * write_sites);
  EXPECT_EQ(recoveries, crashes);
}

}  // namespace
}  // namespace ingest
}  // namespace modb
