// The PR-8 identity theorem, end to end: a live relation grown fix by
// fix through Db::Apply — tails absorbing, seals feeding the delta run,
// merges compacting — must answer EVERY query kind with result blocks
// BYTE-IDENTICAL to a static relation bulk-built from the same fixes.
// The comparison is on serve::EncodeResultBlock bytes, the same bytes
// loadgen --verify compares over the wire, so nothing (row order, unit
// slicing, float rounding, index layering) can hide.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval.h"
#include "db/modb.h"
#include "db/relation.h"
#include "db/value.h"
#include "gen/flights_gen.h"
#include "serve/wire.h"
#include "temporal/mapping.h"
#include "temporal/upoint.h"

namespace modb {
namespace {

struct Fix {
  std::string id;
  Instant t;
  double x, y;
};

// Deterministic interleaved walks: object o gets fixes at t = 0,1,2,...
// with an LCG step, exactly the shape loadgen --ingest streams.
std::vector<Fix> FleetFixes(int objects, int steps, std::uint64_t seed) {
  const std::size_t n = std::size_t(objects);
  std::vector<std::uint64_t> rng(n);
  std::vector<double> px(n), py(n);
  std::vector<Fix> fixes;
  for (int o = 0; o < objects; ++o) {
    rng[std::size_t(o)] = seed * 6364136223846793005ULL +
                          std::uint64_t(o + 1) * 1442695040888963407ULL;
    px[std::size_t(o)] = o * 10.0;
    py[std::size_t(o)] = o * -5.0;
  }
  auto step = [&rng](int o) {
    std::uint64_t& s = rng[std::size_t(o)];
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return double(std::int64_t((s >> 33) % 2001) - 1000) / 100.0;
  };
  for (int t = 0; t < steps; ++t) {
    for (int o = 0; o < objects; ++o) {
      px[std::size_t(o)] += step(o);
      py[std::size_t(o)] += step(o);
      fixes.push_back({"obj" + std::to_string(o), double(t),
                       px[std::size_t(o)], py[std::size_t(o)]});
    }
  }
  return fixes;
}

// The bulk reference: one static relation, trails built through
// MappingBuilder with the generator slicing convention.
Relation BulkRelation(const std::string& name, const std::vector<Fix>& fixes,
                      int objects) {
  Relation rel(name, Schema({{"id", AttributeType::kString},
                             {"trail", AttributeType::kMovingPoint}}));
  for (int o = 0; o < objects; ++o) {
    const std::string id = "obj" + std::to_string(o);
    std::vector<Fix> own;
    for (const Fix& f : fixes) {
      if (f.id == id) own.push_back(f);
    }
    MappingBuilder<UPoint> builder;
    for (std::size_t i = 0; i + 1 < own.size(); ++i) {
      const bool last = i + 2 == own.size();
      Result<TimeInterval> iv =
          TimeInterval::Make(own[i].t, own[i + 1].t, true, last);
      EXPECT_TRUE(iv.ok());
      Result<UPoint> u = UPoint::FromEndpoints(
          *iv, Point(own[i].x, own[i].y), Point(own[i + 1].x, own[i + 1].y));
      EXPECT_TRUE(u.ok());
      EXPECT_TRUE(builder.Append(*u).ok());
    }
    Result<MovingPoint> mp = builder.Build();
    EXPECT_TRUE(mp.ok());
    Tuple tuple;
    tuple.emplace_back(StringValue(id));
    tuple.emplace_back(*std::move(mp));
    EXPECT_TRUE(rel.Insert(std::move(tuple)).ok());
  }
  return rel;
}

// Ingests `fixes` into `db`'s live relation `name` in batches of
// `batch` fixes via the same mutation path the server uses.
void IngestAll(Db* db, const std::string& name, const std::vector<Fix>& fixes,
               std::size_t batch) {
  MutationRequest req;
  req.kind = MutationRequest::Kind::kIngest;
  req.relation = name;
  for (const Fix& f : fixes) {
    req.fixes.push_back({f.id, f.t, f.x, f.y});
    if (req.fixes.size() >= batch) {
      ASSERT_TRUE(db->Apply(req).ok());
      req.fixes.clear();
    }
  }
  if (!req.fixes.empty()) {
    ASSERT_TRUE(db->Apply(req).ok());
  }
}

// Every query kind, aimed at relation `rel`.
std::vector<QueryRequest> AllKinds(const std::string& rel, int steps) {
  std::vector<QueryRequest> kinds;
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kSelect;
    q.relation = rel;
    q.filters.push_back({FilterSpec::Kind::kDeftimeIntersects, "trail", "", 0,
                         1.0, double(steps) / 2});
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kProject;
    q.relation = rel;
    q.filters.push_back(
        {FilterSpec::Kind::kPresentAt, "trail", "", 0, 1.5, 0});
    q.project = {"id"};
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kJoin;
    q.relation = rel;
    q.join_relation = rel;
    q.attr = "trail";
    q.join_attr = "trail";
    q.distance = 40;
    q.distinct_pairs = true;
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kIndexJoin;
    q.relation = rel;
    q.join_relation = rel;
    q.attr = "trail";
    q.join_attr = "trail";
    q.distance = 40;
    q.distinct_pairs = true;
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kAtInstantBatch;
    q.relation = rel;
    q.attr = "trail";
    for (int t = 0; t < steps; ++t) q.instants.push_back(t + 0.25);
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kPresentBatch;
    q.relation = rel;
    q.attr = "trail";
    for (int t = 0; t < steps; ++t) q.instants.push_back(t + 0.25);
    kinds.push_back(q);
  }
  {
    QueryRequest q;
    q.kind = QueryRequest::Kind::kWindowAggregate;
    q.relation = rel;
    q.attr = "trail";
    q.window_t0 = 0;
    q.window_t1 = steps;
    q.window_width = 3;
    q.window_step = 2;  // sliding: width > step
    kinds.push_back(q);
  }
  return kinds;
}

std::string RunBlock(const Db& db, const QueryRequest& req) {
  Result<QueryResult> result = db.Run(req);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return std::string();
  Result<std::string> block = serve::EncodeResultBlock(*result);
  EXPECT_TRUE(block.ok());
  return block.ok() ? *block : std::string();
}

TEST(LiveDifferential, EveryQueryKindIsByteIdenticalToBulk) {
  const int kObjects = 6, kSteps = 24;
  const std::vector<Fix> fixes = FleetFixes(kObjects, kSteps, 7);

  Db bulk;
  ASSERT_TRUE(bulk.Register(BulkRelation("fleet", fixes, kObjects)).ok());
  ASSERT_TRUE(bulk.BuildIndex("fleet", "trail").ok());

  Db live;
  ingest::LiveOptions opts;
  opts.seal_units = 2;       // seal often: delta sees real traffic
  opts.merge_threshold = 16;  // and inline merges actually fire
  ASSERT_TRUE(live.RegisterLive("fleet", opts).ok());
  IngestAll(&live, "fleet", fixes, 5);

  const std::vector<QueryRequest> kinds = AllKinds("fleet", kSteps);
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    EXPECT_EQ(RunBlock(bulk, kinds[k]), RunBlock(live, kinds[k]))
        << "query kind #" << k << " diverged after ingest";
  }

  // An LSM maintenance round must be invisible in the bytes...
  ASSERT_TRUE(live.MergeLive("fleet").ok());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    EXPECT_EQ(RunBlock(bulk, kinds[k]), RunBlock(live, kinds[k]))
        << "query kind #" << k << " diverged after MergeLive";
  }

  // ...and so must the shutdown drain (seal everything, compact).
  ASSERT_TRUE(live.DrainLive("fleet").ok());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    EXPECT_EQ(RunBlock(bulk, kinds[k]), RunBlock(live, kinds[k]))
        << "query kind #" << k << " diverged after DrainLive";
  }
}

TEST(LiveDifferential, SealPolicyNeverShowsInTheBytes) {
  // Two live Dbs with maximally different layering policies must agree
  // byte for byte: layering is an implementation detail of the union.
  const int kObjects = 4, kSteps = 16;
  const std::vector<Fix> fixes = FleetFixes(kObjects, kSteps, 11);

  Db eager;  // seal after every unit, merge constantly
  ingest::LiveOptions eager_opts;
  eager_opts.seal_units = 1;
  eager_opts.merge_threshold = 1;
  ASSERT_TRUE(eager.RegisterLive("fleet", eager_opts).ok());
  IngestAll(&eager, "fleet", fixes, 3);

  Db lazy;  // never seal, never merge: everything stays in mem
  ingest::LiveOptions lazy_opts;
  lazy_opts.seal_units = 1u << 20;
  lazy_opts.merge_threshold = 1u << 20;
  ASSERT_TRUE(lazy.RegisterLive("fleet", lazy_opts).ok());
  IngestAll(&lazy, "fleet", fixes, 7);  // different batching too

  for (const QueryRequest& q : AllKinds("fleet", kSteps)) {
    EXPECT_EQ(RunBlock(eager, q), RunBlock(lazy, q));
  }
}

TEST(LiveDifferential, MutationErrorTaxonomy) {
  Db db;
  ASSERT_TRUE(db.RegisterLive("fleet").ok());

  // Ingest into an unknown relation is a typed NotFound.
  MutationRequest req;
  req.kind = MutationRequest::Kind::kIngest;
  req.relation = "nowhere";
  req.fixes.push_back({"a", 0, 0, 0});
  EXPECT_EQ(StatusCode::kNotFound, db.Apply(req).status().code());

  // Ingest into a static relation is FailedPrecondition.
  FlightsOptions gen;
  gen.num_flights = 2;
  Result<Relation> planes = GeneratePlanes(gen);
  ASSERT_TRUE(planes.ok());
  ASSERT_TRUE(db.Register(*std::move(planes)).ok());
  req.relation = "planes";
  EXPECT_EQ(StatusCode::kFailedPrecondition, db.Apply(req).status().code());

  // Registering a taken name is FailedPrecondition.
  MutationRequest reg;
  reg.kind = MutationRequest::Kind::kRegisterLive;
  reg.relation = "fleet";
  EXPECT_EQ(StatusCode::kFailedPrecondition, db.Apply(reg).status().code());

  // BuildIndex on a live relation is FailedPrecondition (it maintains
  // its own layered index).
  EXPECT_EQ(StatusCode::kFailedPrecondition,
            db.BuildIndex("fleet", "trail").code());

  // A batch with one bad fix (stale timestamp) is rejected whole: the
  // good fixes must NOT land.
  MutationRequest good;
  good.kind = MutationRequest::Kind::kIngest;
  good.relation = "fleet";
  good.fixes.push_back({"a", 1.0, 0, 0});
  good.fixes.push_back({"a", 2.0, 1, 1});
  ASSERT_TRUE(db.Apply(good).ok());
  MutationRequest bad;
  bad.kind = MutationRequest::Kind::kIngest;
  bad.relation = "fleet";
  bad.fixes.push_back({"b", 5.0, 0, 0});   // fine on its own
  bad.fixes.push_back({"a", 1.5, 2, 2});   // stale vs a's frontier
  Result<MutationResult> r = db.Apply(bad);
  EXPECT_EQ(StatusCode::kOutOfRange, r.status().code());
  // "b" must not exist: the batch was atomic.
  QueryRequest q;
  q.kind = QueryRequest::Kind::kSelect;
  q.relation = "fleet";
  Result<QueryResult> rows = db.Run(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(1u, rows->rows.NumTuples());

  // Drop takes the live relation with it.
  MutationRequest drop;
  drop.kind = MutationRequest::Kind::kDropRelation;
  drop.relation = "fleet";
  ASSERT_TRUE(db.Apply(drop).ok());
  EXPECT_EQ(StatusCode::kNotFound, db.Run(q).status().code());
}

TEST(LiveDifferential, WindowBoundaryFixLandsInExactlyOneWindow) {
  // One object whose motion ends exactly on a window boundary: the
  // trajectory covers [0, 2] (last unit right-CLOSED at t = 2). Windows
  // are closed-open [s, s+2), so instant 2 belongs to [2, 4) and NOT to
  // [0, 2) — the object must be counted in the second window purely by
  // its boundary instant, contributing zero distance there.
  Db db;
  ASSERT_TRUE(db.RegisterLive("edge").ok());
  MutationRequest req;
  req.kind = MutationRequest::Kind::kIngest;
  req.relation = "edge";
  req.fixes = {{"a", 0.0, 0, 0}, {"a", 1.0, 3, 4}, {"a", 2.0, 6, 8}};
  ASSERT_TRUE(db.Apply(req).ok());

  QueryRequest q;
  q.kind = QueryRequest::Kind::kWindowAggregate;
  q.relation = "edge";
  q.attr = "trail";
  q.window_t0 = 0;
  q.window_t1 = 8;
  q.window_width = 2;
  q.window_step = 2;  // tumbling: [0,2) [2,4) [4,6) [6,8)
  Result<QueryResult> result = db.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  const Relation& rows = result->rows;
  ASSERT_EQ(4u, rows.NumTuples());
  auto count_of = [&rows](std::size_t row) {
    return std::get<IntValue>(rows.tuples()[row][2]).value();
  };
  auto distance_of = [&rows](std::size_t row) {
    return std::get<RealValue>(rows.tuples()[row][3]).value();
  };
  // [0,2): present, moving at speed 5 for 2 time units.
  EXPECT_EQ(1, count_of(0));
  EXPECT_DOUBLE_EQ(10.0, distance_of(0));
  // [2,4): present only at the degenerate boundary instant t = 2.
  EXPECT_EQ(1, count_of(1));
  EXPECT_DOUBLE_EQ(0.0, distance_of(1));
  // [4,6), [6,8): empty windows still emit rows, with count 0.
  EXPECT_EQ(0, count_of(2));
  EXPECT_EQ(0, count_of(3));
  EXPECT_DOUBLE_EQ(0.0, distance_of(2));
  EXPECT_DOUBLE_EQ(0.0, distance_of(3));
}

TEST(LiveDifferential, WindowSpatialRectGatesQualification) {
  // Object a sits still at (0, 0); object b sits still at (100, 100).
  // A rect around the origin must count only a, in every window where a
  // is defined.
  Db db;
  ASSERT_TRUE(db.RegisterLive("still").ok());
  MutationRequest req;
  req.kind = MutationRequest::Kind::kIngest;
  req.relation = "still";
  req.fixes = {{"a", 0.0, 0, 0},
               {"a", 4.0, 0, 0},
               {"b", 0.0, 100, 100},
               {"b", 4.0, 100, 100}};
  ASSERT_TRUE(db.Apply(req).ok());

  QueryRequest q;
  q.kind = QueryRequest::Kind::kWindowAggregate;
  q.relation = "still";
  q.attr = "trail";
  q.window_t0 = 0;
  q.window_t1 = 4;
  q.window_width = 2;
  q.window_step = 2;
  q.min_x = -1;
  q.min_y = -1;
  q.max_x = 1;
  q.max_y = 1;
  Result<QueryResult> result = db.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(2u, result->rows.NumTuples());
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_EQ(1, std::get<IntValue>(result->rows.tuples()[w][2]).value());
  }
}

TEST(LiveDifferential, WindowValidationIsTyped) {
  Db db;
  ASSERT_TRUE(db.RegisterLive("v").ok());
  QueryRequest q;
  q.kind = QueryRequest::Kind::kWindowAggregate;
  q.relation = "v";
  q.attr = "trail";
  q.window_t0 = 0;
  q.window_t1 = 10;
  q.window_width = 0;  // must be > 0
  q.window_step = 1;
  EXPECT_EQ(StatusCode::kInvalidArgument, db.Run(q).status().code());
  q.window_width = 1;
  q.window_step = 0;  // must be > 0
  EXPECT_EQ(StatusCode::kInvalidArgument, db.Run(q).status().code());
  q.window_step = 1;
  q.window_t1 = -1;  // t1 < t0
  EXPECT_EQ(StatusCode::kInvalidArgument, db.Run(q).status().code());
  q.window_t1 = 1e18;  // way past the window-count cap
  q.window_step = 1e-9;
  EXPECT_EQ(StatusCode::kInvalidArgument, db.Run(q).status().code());
}

TEST(LiveDifferential, PersistAndRecoverResumeByteIdentically) {
  // Ingest half the fixes into a store-backed Db, "crash" (drop the Db,
  // reopen the store), ingest the other half, and compare every query
  // kind against an uninterrupted bulk build of the full fix set.
  const int kObjects = 4, kSteps = 16;
  const std::vector<Fix> fixes = FleetFixes(kObjects, kSteps, 13);
  const std::size_t half = fixes.size() / 2;
  const std::vector<Fix> first(fixes.begin(), fixes.begin() + long(half));
  const std::vector<Fix> second(fixes.begin() + long(half), fixes.end());
  const std::string path =
      ::testing::TempDir() + "/live_differential_store.bin";

  {
    Result<VersionedSpillStore> store = VersionedSpillStore::Create(path);
    ASSERT_TRUE(store.ok());
    Db db;
    ingest::LiveOptions opts;
    opts.seal_units = 2;
    ASSERT_TRUE(db.RegisterLive("fleet", opts).ok());
    ASSERT_TRUE(db.AttachLiveStore("fleet", &*store).ok());
    IngestAll(&db, "fleet", first, 6);
    // No DrainLive: the last acked batch IS the recovery point.
  }

  Result<VersionedSpillStore> store = VersionedSpillStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->VerifyAccounting().ok());
  Db live;
  ingest::LiveOptions opts;
  opts.seal_units = 2;
  ASSERT_TRUE(live.RegisterLive("fleet", opts).ok());
  ASSERT_TRUE(live.AttachLiveStore("fleet", &*store).ok());
  IngestAll(&live, "fleet", second, 6);

  Db bulk;
  ASSERT_TRUE(bulk.Register(BulkRelation("fleet", fixes, kObjects)).ok());
  ASSERT_TRUE(bulk.BuildIndex("fleet", "trail").ok());
  for (const QueryRequest& q : AllKinds("fleet", kSteps)) {
    EXPECT_EQ(RunBlock(bulk, q), RunBlock(live, q));
  }
}

}  // namespace
}  // namespace modb
