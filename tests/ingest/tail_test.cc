// TailSeries: the incremental append path must stay BITWISE identical
// to bulk-building the same fix sequence through MappingBuilder with
// the generator slicing convention (interior units right-open, last
// unit right-closed, coefficients from UPoint::FromEndpoints). These
// tests enforce the identity stepwise — after EVERY absorbed fix — so
// a divergence pins the exact fix that introduced it.

#include "ingest/tail.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/interval.h"
#include "temporal/mapping.h"
#include "temporal/upoint.h"

namespace modb {
namespace ingest {
namespace {

struct Fix {
  Instant t;
  Point p;
};

// A deterministic walk with a mid-stream constant-velocity stretch
// (fixes 4..7 continue the same motion), so the builder's merge rule is
// exercised, not just plain appends.
std::vector<Fix> Walk() {
  std::vector<Fix> fixes;
  fixes.push_back({0.0, Point(0, 0)});
  fixes.push_back({1.0, Point(1, 2)});
  fixes.push_back({2.5, Point(-0.5, 3)});
  fixes.push_back({4.0, Point(1, 1)});
  // Constant velocity (2, -1) per unit time across three fixes.
  fixes.push_back({5.0, Point(3, 0)});
  fixes.push_back({6.0, Point(5, -1)});
  fixes.push_back({7.0, Point(7, -2)});
  fixes.push_back({9.0, Point(0, 0)});
  return fixes;
}

// The bulk reference: slice fixes [0, n) through MappingBuilder exactly
// as gen/trajectory_gen.cc does.
std::vector<UPoint> BulkUnits(const std::vector<Fix>& fixes, std::size_t n) {
  MappingBuilder<UPoint> builder;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const bool last = i + 2 == n;
    Result<TimeInterval> iv =
        TimeInterval::Make(fixes[i].t, fixes[i + 1].t, true, last);
    EXPECT_TRUE(iv.ok());
    Result<UPoint> u =
        UPoint::FromEndpoints(*iv, fixes[i].p, fixes[i + 1].p);
    EXPECT_TRUE(u.ok());
    EXPECT_TRUE(builder.Append(*u).ok());
  }
  Result<Mapping<UPoint>> m = builder.Build();
  EXPECT_TRUE(m.ok());
  return std::vector<UPoint>(m->units().begin(), m->units().end());
}

// Bitwise equality: every double compared by representation (memcmp),
// so -0.0 vs 0.0 or any rounding difference fails.
void ExpectBitwiseEqual(const std::vector<UPoint>& got,
                        const std::vector<UPoint>& want,
                        std::size_t prefix_len) {
  ASSERT_EQ(got.size(), want.size()) << "after " << prefix_len << " fixes";
  for (std::size_t i = 0; i < got.size(); ++i) {
    const TimeInterval& gi = got[i].interval();
    const TimeInterval& wi = want[i].interval();
    const double gd[4] = {gi.start(), gi.end(), got[i].motion().x0,
                          got[i].motion().y0};
    const double wd[4] = {wi.start(), wi.end(), want[i].motion().x0,
                          want[i].motion().y0};
    EXPECT_EQ(0, std::memcmp(gd, wd, sizeof gd))
        << "unit " << i << " after " << prefix_len << " fixes";
    const double gm[2] = {got[i].motion().x1, got[i].motion().y1};
    const double wm[2] = {want[i].motion().x1, want[i].motion().y1};
    EXPECT_EQ(0, std::memcmp(gm, wm, sizeof gm))
        << "unit " << i << " after " << prefix_len << " fixes";
    EXPECT_EQ(gi.left_closed(), wi.left_closed()) << "unit " << i;
    EXPECT_EQ(gi.right_closed(), wi.right_closed()) << "unit " << i;
  }
}

TEST(TailSeries, StepwiseBitwiseIdentityWithBulkBuilder) {
  const std::vector<Fix> fixes = Walk();
  TailSeries tail;
  for (std::size_t n = 1; n <= fixes.size(); ++n) {
    ASSERT_TRUE(tail.Absorb(fixes[n - 1].t, fixes[n - 1].p).ok());
    ExpectBitwiseEqual(tail.units(), BulkUnits(fixes, n), n);
  }
  // The constant-velocity stretch merged: strictly fewer units than
  // fix gaps proves the merge rule fired at least once.
  EXPECT_LT(tail.NumUnits(), fixes.size() - 1);
}

TEST(TailSeries, SealingNeverPerturbsTheIdentity) {
  const std::vector<Fix> fixes = Walk();
  TailSeries tail;
  for (std::size_t n = 1; n <= fixes.size(); ++n) {
    ASSERT_TRUE(tail.Absorb(fixes[n - 1].t, fixes[n - 1].p).ok());
    tail.Seal();  // seal after EVERY fix: the most adversarial policy
    if (tail.NumUnits() > 0) {
      EXPECT_EQ(tail.sealed(), tail.NumUnits() - 1)
          << "the newest unit must stay hot";
    }
    ExpectBitwiseEqual(tail.units(), BulkUnits(fixes, n), n);
  }
}

TEST(TailSeries, StaleOrDuplicateTimestampIsOutOfRangeAndLeavesStateAlone) {
  TailSeries tail;
  ASSERT_TRUE(tail.Absorb(1.0, Point(0, 0)).ok());
  ASSERT_TRUE(tail.Absorb(2.0, Point(1, 1)).ok());
  const std::size_t units_before = tail.NumUnits();
  EXPECT_EQ(StatusCode::kOutOfRange, tail.Absorb(2.0, Point(2, 2)).code());
  EXPECT_EQ(StatusCode::kOutOfRange, tail.Absorb(1.5, Point(2, 2)).code());
  EXPECT_EQ(units_before, tail.NumUnits());
  EXPECT_EQ(2.0, tail.last_time());
}

TEST(TailSeries, MaterializeMatchesBulkMapping) {
  const std::vector<Fix> fixes = Walk();
  TailSeries tail;
  for (const Fix& f : fixes) ASSERT_TRUE(tail.Absorb(f.t, f.p).ok());
  Result<MovingPoint> mp = tail.Materialize();
  ASSERT_TRUE(mp.ok());
  const std::vector<UPoint> bulk = BulkUnits(fixes, fixes.size());
  ExpectBitwiseEqual(
      std::vector<UPoint>(mp->units().begin(), mp->units().end()), bulk,
      fixes.size());
}

TEST(TailSeries, ResumeContinuesBitwiseIdentically) {
  const std::vector<Fix> fixes = Walk();
  const std::size_t cut = 5;
  TailSeries full;
  TailSeries before;
  for (std::size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(full.Absorb(fixes[i].t, fixes[i].p).ok());
    ASSERT_TRUE(before.Absorb(fixes[i].t, fixes[i].p).ok());
  }
  Result<MovingPoint> persisted = before.Materialize();
  ASSERT_TRUE(persisted.ok());
  Result<TailSeries> resumed = TailSeries::Resume(
      *persisted, before.last_time(), before.last_point());
  ASSERT_TRUE(resumed.ok());
  // Same persisted units, and the exact anchor survived.
  ExpectBitwiseEqual(resumed->units(), before.units(), cut);
  EXPECT_EQ(before.last_time(), resumed->last_time());
  for (std::size_t i = cut; i < fixes.size(); ++i) {
    ASSERT_TRUE(full.Absorb(fixes[i].t, fixes[i].p).ok());
    ASSERT_TRUE(resumed->Absorb(fixes[i].t, fixes[i].p).ok());
    ExpectBitwiseEqual(resumed->units(), full.units(), i + 1);
  }
}

TEST(TailSeries, SingleFixHasAnchorButNoUnits) {
  TailSeries tail;
  ASSERT_TRUE(tail.Absorb(3.0, Point(7, -7)).ok());
  EXPECT_TRUE(tail.has_fix());
  EXPECT_EQ(0u, tail.NumUnits());
  Result<MovingPoint> mp = tail.Materialize();
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(0u, mp->units().size());
}

}  // namespace
}  // namespace ingest
}  // namespace modb
