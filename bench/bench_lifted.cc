// Lifted-operation pipeline benchmarks: the per-unit-pair scheme of
// Section 5.2 applied to distance, comparison, and atmin — the building
// blocks of the Q2 join predicate — plus trajectory and speed
// projections.

#include <benchmark/benchmark.h>

#include <random>

#include "gen/trajectory_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

MovingPoint Track(int units, uint64_t seed) {
  std::mt19937_64 rng(seed);
  TrajectoryOptions opts;
  opts.num_units = units;
  opts.extent = 1000;
  opts.max_step = 30;
  return *RandomWalkPoint(rng, opts);
}

void BM_LiftedDistance(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 1);
  MovingPoint b = Track(int(state.range(0)), 2);
  for (auto _ : state) {
    auto d = LiftedDistance(a, b);
    benchmark::DoNotOptimize(d);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LiftedDistance)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_Compare_Const(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 1);
  MovingPoint b = Track(int(state.range(0)), 2);
  MovingReal d = *LiftedDistance(a, b);
  for (auto _ : state) {
    auto c = Compare(d, 100.0, CmpOp::kLt);
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Compare_Const)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_AtMin(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 1);
  MovingPoint b = Track(int(state.range(0)), 2);
  MovingReal d = *LiftedDistance(a, b);
  for (auto _ : state) {
    auto m = AtMin(d);
    benchmark::DoNotOptimize(m);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AtMin)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

// The full Q2 predicate pipeline on one pair.
void BM_JoinPredicatePipeline(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 1);
  MovingPoint b = Track(int(state.range(0)), 2);
  for (auto _ : state) {
    auto d = LiftedDistance(a, b);
    auto m = AtMin(*d);
    benchmark::DoNotOptimize(m->Initial().val());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JoinPredicatePipeline)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Trajectory(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 3);
  for (auto _ : state) {
    Line l = Trajectory(a);
    benchmark::DoNotOptimize(l);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Trajectory)->RangeMultiplier(4)->Range(16, 1024);

void BM_Speed(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 3);
  for (auto _ : state) {
    auto s = Speed(a);
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Speed)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_Equals(benchmark::State& state) {
  MovingPoint a = Track(int(state.range(0)), 1);
  MovingPoint b = Track(int(state.range(0)), 2);
  for (auto _ : state) {
    auto e = Equals(a, b);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Equals)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace modb
