// Thread-scaling sweep (Experiment P6): the same three workloads at
// every thread count from --modb_threads (default 1,2,4,8), each run on
// a dedicated ThreadPool of exactly that size so the reported real time
// measures that concurrency and nothing else. Benchmarks are registered
// at runtime via the strong RegisterScalingBenchmarks override (the
// weak default in bench_main.cc is a no-op for the other binaries):
//
//   BM_Scaling_Select/T             σ with the Q1 trajectory predicate
//   BM_Scaling_IndexJoin/T          prebuilt R-tree spatio-temporal join
//   BM_Scaling_PipelinedSelectJoin/T  fused Select→Join plan (exec engine)
//
// bench_compare --scaling gates the /1 vs /4 real-time ratio of the
// pipelined plan. Real time (not CPU time) is the honest scaling
// metric: pool workers' CPU seconds grow with T even when wall time
// does not.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "db/parallel.h"
#include "db/query.h"
#include "exec/pipeline.h"
#include "exec/planner.h"
#include "gen/flights_gen.h"
#include "temporal/lifted_ops.h"

namespace modb_bench {

// Strong override of the weak hook in bench_main.cc.
void RegisterScalingBenchmarks(const std::vector<int>& threads);

namespace {

using namespace modb;  // NOLINT — bench TU, mirrors bench_queries.cc idiom.

// Same generator settings as bench_queries.cc so numbers line up with
// the Q1/Q2 records.
Relation Planes(int flights) {
  FlightsOptions opts;
  opts.num_airports = 12;
  opts.num_flights = flights;
  opts.extent = 10000;
  opts.units_per_flight = 8;
  opts.speed = 800;
  opts.departure_window = 24;
  opts.seed = 99;
  return *GeneratePlanes(opts);
}

bool Q1Pred(const Tuple& t) {
  return std::get<StringValue>(t[kFlightAttrAirline]).value() == "Lufthansa" &&
         Trajectory(std::get<MovingPoint>(t[kFlightAttrFlight])).Length() >
             5000;
}

bool ClosePred(const Tuple& a, std::size_t i, const Tuple& b, std::size_t j,
               double dist) {
  if (i >= j) return false;
  auto d = LiftedDistance(std::get<MovingPoint>(a[kFlightAttrFlight]),
                          std::get<MovingPoint>(b[kFlightAttrFlight]));
  if (!d.ok() || d->IsEmpty()) return false;
  auto am = AtMin(*d);
  return am.ok() && !am->IsEmpty() && am->Initial().val() < dist;
}

// Relations, prebuilt trees, and the fused plan live here; the plan
// holds pointers into this struct, so it is heap-allocated once and
// shared by every registered benchmark.
struct ScalingContext {
  Relation select_src;
  Relation join_src;
  RTree3D join_tree;
  Relation pipe_src;
  RTree3D pipe_tree;
  exec::PhysicalPlan pipe_plan;
};

std::shared_ptr<ScalingContext> MakeContext() {
  auto ctx = std::make_shared<ScalingContext>();
  ctx->select_src = Planes(256);
  ctx->join_src = Planes(64);
  ctx->join_tree = *BuildMovingPointIndex(ctx->join_src, kFlightAttrFlight);
  ctx->pipe_src = Planes(96);
  ctx->pipe_tree = *BuildMovingPointIndex(ctx->pipe_src, kFlightAttrFlight);

  // The fused plan: filter out one airline, index-join the survivors
  // against the full relation on the prebuilt tree. Cheap filter +
  // heavy probe keeps the morsel stage chain dominated by
  // parallelizable work.
  exec::LogicalQuery q;
  q.rel = &ctx->pipe_src;
  q.filters.push_back(exec::Predicate{
      [](const Tuple& t) {
        return std::get<StringValue>(t[kFlightAttrAirline]).value() !=
               "Lufthansa";
      },
      "not_lufthansa",
      std::nullopt});
  exec::LogicalQuery::JoinSpec join;
  join.algorithm = exec::LogicalQuery::JoinSpec::Algorithm::kIndex;
  join.inner = &ctx->pipe_src;
  join.attr_outer = kFlightAttrFlight;
  join.attr_inner = kFlightAttrFlight;
  join.expand = 50;
  join.pred = exec::JoinPred{
      [](const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
        return ClosePred(a, i, b, j, 50);
      },
      "close_50"};
  join.prebuilt = &ctx->pipe_tree;
  q.join = std::move(join);
  ctx->pipe_plan = *exec::PlanQuery(q);
  return ctx;
}

ExecOptions PoolOptions(ThreadPool* pool, int threads) {
  ExecOptions options;
  options.parallel.num_threads = threads;
  options.parallel.pool = pool;
  return options;
}

void RunSelect(benchmark::State& state, std::shared_ptr<ScalingContext> ctx,
               int threads) {
  ThreadPool pool(threads);
  const ExecOptions options = PoolOptions(&pool, threads);
  for (auto _ : state) {
    Relation r = *Select(ctx->select_src, Q1Pred, options);
    benchmark::DoNotOptimize(r);
  }
}

void RunIndexJoin(benchmark::State& state, std::shared_ptr<ScalingContext> ctx,
                  int threads) {
  ThreadPool pool(threads);
  const ExecOptions options = PoolOptions(&pool, threads);
  for (auto _ : state) {
    Relation r = *IndexJoinOnMovingPoint(
        ctx->join_src, kFlightAttrFlight, ctx->join_src, ctx->join_tree, 50,
        [](const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
          return ClosePred(a, i, b, j, 50);
        },
        options);
    benchmark::DoNotOptimize(r);
  }
}

void RunPipelinedSelectJoin(benchmark::State& state,
                            std::shared_ptr<ScalingContext> ctx, int threads) {
  ThreadPool pool(threads);
  const ExecOptions options = PoolOptions(&pool, threads);
  for (auto _ : state) {
    Relation r = *exec::RunPlan(ctx->pipe_plan, options);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

void RegisterScalingBenchmarks(const std::vector<int>& threads) {
  auto ctx = MakeContext();
  for (int t : threads) {
    const std::string suffix = "/" + std::to_string(t);
    benchmark::RegisterBenchmark(("BM_Scaling_Select" + suffix).c_str(),
                                 RunSelect, ctx, t)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("BM_Scaling_IndexJoin" + suffix).c_str(),
                                 RunIndexJoin, ctx, t)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_Scaling_PipelinedSelectJoin" + suffix).c_str(),
        RunPipelinedSelectJoin, ctx, t)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace modb_bench
