// Experiment C1/D2 (Section 5.1): atinstant on a moving region is
// O(log n + r) — binary search over the unit array plus linear unit
// evaluation — or O(log n + r log r) when the full halfsegment-ordered
// region structure must be produced.
//
// Series:
//   BM_FindUnit_Binary/n      — the O(log n) unit lookup (Section 4.3).
//   BM_FindUnit_Linear/n      — baseline linear scan (ablation D2).
//   BM_AtInstant_Snapshot/r   — evaluation only, O(r) ("for display").
//   BM_AtInstant_FullRegion/r — evaluation + close, O(r log r).

#include <benchmark/benchmark.h>

#include <random>

#include "gen/region_gen.h"
#include "spatial/region_builder.h"
#include "temporal/moving.h"

namespace modb {
namespace {

// A long-lived moving region with `n` units (small fixed shape). The
// zig-zag drift keeps consecutive unit functions distinct so the mapping
// really has n units (constant drift would merge them all).
MovingRegion MakeManyUnits(int n) {
  std::mt19937_64 rng(42);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 4;
  opts.shape.jitter = 0;
  opts.shape.radius = 5;
  opts.shape.center = Point(0, 0);
  opts.num_units = n;
  opts.unit_duration = 1;
  opts.drift = Point(3, 0);
  opts.drift_alternation = Point(0, 1);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  return mr;
}

// One unit whose snapshot has `r` segments.
URegion MakeBigUnit(int r) {
  std::mt19937_64 rng(7);
  MovingRegionOptions opts;
  opts.shape.num_vertices = r;
  opts.shape.jitter = 0.2;
  opts.shape.radius = 100;
  opts.shape.center = Point(0, 0);
  opts.num_units = 1;
  opts.unit_duration = 10;
  opts.drift = Point(20, 10);
  MovingRegion mr = *GenerateMovingRegion(rng, opts);
  return mr.unit(0);
}

void BM_FindUnit_Binary(benchmark::State& state) {
  MovingRegion mr = MakeManyUnits(int(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> t(0, double(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mr.FindUnit(t(rng)));
  }
  state.counters["units"] = double(mr.NumUnits());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindUnit_Binary)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oLogN);

void BM_FindUnit_Linear(benchmark::State& state) {
  MovingRegion mr = MakeManyUnits(int(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> t(0, double(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mr.FindUnitLinear(t(rng)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindUnit_Linear)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_AtInstant_Snapshot(benchmark::State& state) {
  URegion u = MakeBigUnit(int(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> t(0.1, 9.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.Snapshot(t(rng)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AtInstant_Snapshot)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity(benchmark::oN);

void BM_AtInstant_FullRegion(benchmark::State& state) {
  URegion u = MakeBigUnit(int(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> t(0.1, 9.9);
  for (auto _ : state) {
    Region r = u.ValueAt(t(rng));
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AtInstant_FullRegion)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity(benchmark::oNLogN);

// End-to-end atinstant: lookup + full region, the paper's composite
// O(log n + r log r).
void BM_AtInstant_EndToEnd(benchmark::State& state) {
  MovingRegion mr = MakeManyUnits(int(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> t(0, double(state.range(0)));
  for (auto _ : state) {
    auto v = mr.AtInstant(t(rng));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AtInstant_EndToEnd)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace modb
