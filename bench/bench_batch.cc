// Batch/parallel execution experiments: the O(n+k) AtInstantBatch merge
// sweep vs. k independent O(log n) AtInstant searches, the SoA search
// index, the refinement scratch buffer, and the parallel query
// operators (deterministic chunked outer loops).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "db/query.h"
#include "db/relation_io.h"
#include "gen/flights_gen.h"
#include "temporal/batch_ops.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

// A 10k-unit moving point: contiguous half-open [i, i+1) slices with
// alternating velocities so adjacent units cannot be merged away.
MovingPoint DenseTrack(int units) {
  MappingBuilder<UPoint> builder;
  builder.Reserve(std::size_t(units));
  double x = 0;
  for (int i = 0; i < units; ++i) {
    double vx = (i % 2 == 0) ? 1.0 : -0.5;
    auto iv = *TimeInterval::Make(i, i + 1, true, false);
    (void)builder.Append(*UPoint::Make(iv, LinearMotion{x, vx, 0.0, 0.25}));
    x += vx;
  }
  return *builder.Build();
}

std::vector<Instant> SortedInstants(int k, int units, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0.0, double(units));
  std::vector<Instant> out(static_cast<std::size_t>(k), 0.0);
  for (Instant& t : out) t = d(rng);
  std::sort(out.begin(), out.end());
  return out;
}

// Baseline: k independent binary searches, O(k log n). Uses the SoA
// index too, so the comparison isolates the sweep vs. repeated search.
void BM_AtInstant_Loop(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = DenseTrack(units);
  mp.BuildSearchIndex();
  std::vector<Instant> instants = SortedInstants(k, units, 7);
  for (auto _ : state) {
    double acc = 0;
    for (Instant t : instants) {
      Intime<Point> it = mp.AtInstant(t);
      if (it.defined) acc += it.value.x;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstant_Loop)
    ->ArgsProduct({{10000}, {8, 16, 32, 64, 128, 256, 1024, 8192}});

// The merge sweep: one forward pass over units and instants, O(n + k)
// dense / O(k log n) sparse via galloping.
void BM_AtInstant_Batch(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = DenseTrack(units);
  mp.BuildSearchIndex();
  std::vector<Instant> instants = SortedInstants(k, units, 7);
  std::vector<Intime<Point>> out;
  BatchScratch scratch;
  for (auto _ : state) {
    (void)AtInstantBatchInto(mp, instants, &out, &scratch);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstant_Batch)
    ->ArgsProduct({{10000}, {8, 16, 32, 64, 128, 256, 1024, 8192}})
    ->ArgsProduct({{16384}, {16384}});

// FindUnit through the packed SoA arrays vs. the unit-record path.
void BM_FindUnit_SoAIndex(benchmark::State& state) {
  MovingPoint mp = DenseTrack(10000);
  if (state.range(0)) mp.BuildSearchIndex();
  std::vector<Instant> instants = SortedInstants(1024, 10000, 11);
  for (auto _ : state) {
    std::size_t acc = 0;
    for (Instant t : instants) acc += mp.FindUnit(t).value_or(0);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1024);
}
BENCHMARK(BM_FindUnit_SoAIndex)->Arg(0)->Arg(1);

// Refinement partition: fresh allocation per pair vs. the reusable
// scratch buffer driver.
MovingReal DenseReal(int units, double offset) {
  MappingBuilder<UReal> builder;
  builder.Reserve(std::size_t(units));
  for (int i = 0; i < units; ++i) {
    auto iv = *TimeInterval::Make(offset + i, offset + i + 1, true, false);
    (void)builder.Append(*UReal::Make(iv, 0, (i % 3) - 1.0, double(i), false));
  }
  return *builder.Build();
}

void BM_Refinement_Alloc(benchmark::State& state) {
  MovingReal a = DenseReal(int(state.range(0)), 0.0);
  MovingReal b = DenseReal(int(state.range(0)), 0.25);
  for (auto _ : state) {
    auto rp = RefinementPartition(a, b);
    benchmark::DoNotOptimize(rp);
  }
}
BENCHMARK(BM_Refinement_Alloc)->Arg(256)->Arg(2048);

void BM_Refinement_Scratch(benchmark::State& state) {
  MovingReal a = DenseReal(int(state.range(0)), 0.0);
  MovingReal b = DenseReal(int(state.range(0)), 0.25);
  RefinementScratch scratch;
  for (auto _ : state) {
    std::size_t pairs = 0;
    (void)ForEachRefinementPair(a, b, &scratch,
                                [&pairs](const RefinementEntry&) {
                                  ++pairs;
                                  return Status::OK();
                                });
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_Refinement_Scratch)->Arg(256)->Arg(2048);

// ---------------------------------------------------------------------------
// Parallel operators. arg = thread count (0 = serial operator).
// ---------------------------------------------------------------------------

Relation Planes(int flights, std::uint64_t seed) {
  FlightsOptions opts;
  opts.num_flights = flights;
  opts.seed = seed;
  return *GeneratePlanes(opts);
}

bool ClosePred(const Tuple& a, std::size_t i, const Tuple& b, std::size_t j,
               double dist) {
  if (i >= j) return false;
  auto d = LiftedDistance(std::get<MovingPoint>(a[kFlightAttrFlight]),
                          std::get<MovingPoint>(b[kFlightAttrFlight]));
  if (!d.ok() || d->IsEmpty()) return false;
  auto am = AtMin(*d);
  return am.ok() && !am->IsEmpty() && am->Initial().val() < dist;
}

// One-time check that the parallel join is byte-identical to serial
// (the bench asserts what the tests verify exhaustively).
bool JoinsMatch(const Relation& serial, const Relation& parallel) {
  if (serial.NumTuples() != parallel.NumTuples()) return false;
  for (std::size_t i = 0; i < serial.NumTuples(); ++i) {
    for (std::size_t j = 0; j < serial.tuple(i).size(); ++j) {
      auto sa = SerializeAttribute(serial.tuple(i)[j]);
      auto sb = SerializeAttribute(parallel.tuple(i)[j]);
      if (!sa.ok() || !sb.ok() || *sa != *sb) return false;
    }
  }
  return true;
}

void BM_IndexJoin_Parallel(benchmark::State& state) {
  const int threads = int(state.range(0));
  Relation planes = Planes(96, 99);
  auto pred = [](const Tuple& a, std::size_t i, const Tuple& b,
                 std::size_t j) { return ClosePred(a, i, b, j, 50); };
  Relation serial = *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                            kFlightAttrFlight, 50, pred);
  if (threads > 0) {
    ThreadPool pool(threads);
    ExecOptions options;
    options.parallel.num_threads = 0;  // one chunk per pool thread
    options.parallel.pool = &pool;
    Relation check =
        *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                kFlightAttrFlight, 50, pred, options);
    if (!JoinsMatch(serial, check)) {
      state.SkipWithError("parallel join output differs from serial");
      return;
    }
    for (auto _ : state) {
      Relation r =
          *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                  kFlightAttrFlight, 50, pred, options);
      benchmark::DoNotOptimize(r);
    }
  } else {
    for (auto _ : state) {
      Relation r = *IndexJoinOnMovingPoint(planes, kFlightAttrFlight, planes,
                                           kFlightAttrFlight, 50, pred);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_IndexJoin_Parallel)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Select_Parallel(benchmark::State& state) {
  const int threads = int(state.range(0));
  Relation planes = Planes(192, 99);
  auto pred = [](const Tuple& t) {
    return Trajectory(std::get<MovingPoint>(t[kFlightAttrFlight])).Length() >
           5000;
  };
  if (threads > 0) {
    ThreadPool pool(threads);
    ExecOptions options;
    options.parallel.num_threads = 0;  // one chunk per pool thread
    options.parallel.pool = &pool;
    for (auto _ : state) {
      Relation r = *Select(planes, pred, options);
      benchmark::DoNotOptimize(r);
    }
  } else {
    for (auto _ : state) {
      Relation r = *Select(planes, pred);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_Select_Parallel)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace modb
