// Experiment F8 (Figure 8): the refinement partition of two unit lists is
// produced by a parallel scan in O(n + m).

#include <benchmark/benchmark.h>

#include <random>

#include "temporal/lifted_ops.h"
#include "temporal/moving.h"
#include "temporal/refinement.h"

namespace modb {
namespace {

MovingBool RandomBoolMapping(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> gap(0.01, 0.5);
  std::uniform_real_distribution<double> dur(0.1, 1.5);
  MappingBuilder<UBool> b;
  double t = gap(rng);
  bool v = true;
  for (int i = 0; i < n; ++i) {
    double e = t + dur(rng);
    (void)b.Append(*UBool::Make(*TimeInterval::Make(t, e, true, true), v));
    v = !v;
    t = e + gap(rng);
  }
  return *b.Build();
}

void BM_RefinementPartition(benchmark::State& state) {
  int n = int(state.range(0));
  MovingBool a = RandomBoolMapping(n, 1);
  MovingBool b = RandomBoolMapping(n, 2);
  for (auto _ : state) {
    auto rp = RefinementPartition(a, b);
    benchmark::DoNotOptimize(rp);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RefinementPartition)->RangeMultiplier(4)->Range(16, 65536)
    ->Complexity(benchmark::oN);

// Asymmetric sizes: still linear in n + m.
void BM_RefinementAsymmetric(benchmark::State& state) {
  MovingBool a = RandomBoolMapping(int(state.range(0)), 1);
  MovingBool b = RandomBoolMapping(64, 2);
  for (auto _ : state) {
    auto rp = RefinementPartition(a, b);
    benchmark::DoNotOptimize(rp);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RefinementAsymmetric)->RangeMultiplier(4)->Range(64, 65536)
    ->Complexity(benchmark::oN);

// Downstream consumer: lifted And over the partition (concat merging).
void BM_LiftedAnd(benchmark::State& state) {
  int n = int(state.range(0));
  MovingBool a = RandomBoolMapping(n, 1);
  MovingBool b = RandomBoolMapping(n, 2);
  for (auto _ : state) {
    auto r = And(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LiftedAnd)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace modb
