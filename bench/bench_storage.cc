// Experiment S1/F7 (Section 4): flat attribute representations — root
// record + database arrays, subarrays shared across the units of a
// mapping, inline-vs-paged placement per [DG98]. Measures (de)serialization
// throughput and reports representation sizes as counters.

#include <benchmark/benchmark.h>

#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "storage/flat.h"

namespace modb {
namespace {

MovingPoint MakeTrack(int units) {
  std::mt19937_64 rng(17);
  TrajectoryOptions opts;
  opts.num_units = units;
  return *RandomWalkPoint(rng, opts);
}

MovingRegion MakeStorm(int units) {
  std::mt19937_64 rng(19);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 16;
  opts.shape.radius = 40;
  opts.num_units = units;
  opts.unit_duration = 2;
  opts.drift = Point(5, 5);
  opts.drift_alternation = Point(2, 1);
  return *GenerateMovingRegion(rng, opts);
}

void BM_Serialize_MovingPoint(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    FlatValue f = ToFlat(mp);
    std::string blob = SerializeFlat(f);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["blob_bytes"] = double(bytes);
  state.counters["bytes_per_unit"] = double(bytes) / double(mp.NumUnits());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Serialize_MovingPoint)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Deserialize_MovingPoint(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  std::string blob = SerializeFlat(ToFlat(mp));
  for (auto _ : state) {
    auto back = MovingPointFromFlat(*ParseFlat(blob));
    benchmark::DoNotOptimize(back);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Deserialize_MovingPoint)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Serialize_MovingRegion(benchmark::State& state) {
  MovingRegion mr = MakeStorm(int(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    FlatValue f = ToFlat(mr);
    std::string blob = SerializeFlat(f);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["blob_bytes"] = double(bytes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Serialize_MovingRegion)->RangeMultiplier(2)->Range(2, 32)
    ->Complexity(benchmark::oN);

void BM_Deserialize_MovingRegion(benchmark::State& state) {
  MovingRegion mr = MakeStorm(int(state.range(0)));
  std::string blob = SerializeFlat(ToFlat(mr));
  for (auto _ : state) {
    auto back = MovingRegionFromFlat(*ParseFlat(blob));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_Deserialize_MovingRegion)->RangeMultiplier(2)->Range(2, 32);

// [DG98] placement: tuple stays small, arrays page out past the
// threshold.
void BM_AttributeStore_PutGet(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  FlatValue f = ToFlat(mp);
  std::size_t tuple_bytes = 0, pages = 0;
  for (auto _ : state) {
    AttributeStore store(256);
    std::string tuple = store.Put(f);
    auto back = store.Get(tuple);
    tuple_bytes = tuple.size();
    pages = store.page_store().NumPages();
    benchmark::DoNotOptimize(back);
  }
  state.counters["tuple_bytes"] = double(tuple_bytes);
  state.counters["pages"] = double(pages);
}
BENCHMARK(BM_AttributeStore_PutGet)->RangeMultiplier(4)->Range(4, 4096);

}  // namespace
}  // namespace modb
