// Experiment S1/F7 (Section 4): flat attribute representations — root
// record + database arrays, subarrays shared across the units of a
// mapping, inline-vs-paged placement per [DG98]. Measures (de)serialization
// throughput and reports representation sizes as counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <system_error>
#include <vector>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "storage/buffer_pool.h"
#include "storage/flat.h"
#include "storage/mmap_device.h"
#include "storage/page_store.h"
#include "storage/recovery.h"
#include "storage/spill.h"

namespace modb {
namespace {

MovingPoint MakeTrack(int units) {
  std::mt19937_64 rng(17);
  TrajectoryOptions opts;
  opts.num_units = units;
  return *RandomWalkPoint(rng, opts);
}

MovingRegion MakeStorm(int units) {
  std::mt19937_64 rng(19);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 16;
  opts.shape.radius = 40;
  opts.num_units = units;
  opts.unit_duration = 2;
  opts.drift = Point(5, 5);
  opts.drift_alternation = Point(2, 1);
  return *GenerateMovingRegion(rng, opts);
}

void BM_Serialize_MovingPoint(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    FlatValue f = ToFlat(mp);
    std::string blob = SerializeFlat(f);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["blob_bytes"] = double(bytes);
  state.counters["bytes_per_unit"] = double(bytes) / double(mp.NumUnits());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Serialize_MovingPoint)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Deserialize_MovingPoint(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  std::string blob = SerializeFlat(ToFlat(mp));
  for (auto _ : state) {
    auto back = MovingPointFromFlat(*ParseFlat(blob));
    benchmark::DoNotOptimize(back);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Deserialize_MovingPoint)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Serialize_MovingRegion(benchmark::State& state) {
  MovingRegion mr = MakeStorm(int(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    FlatValue f = ToFlat(mr);
    std::string blob = SerializeFlat(f);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["blob_bytes"] = double(bytes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Serialize_MovingRegion)->RangeMultiplier(2)->Range(2, 32)
    ->Complexity(benchmark::oN);

void BM_Deserialize_MovingRegion(benchmark::State& state) {
  MovingRegion mr = MakeStorm(int(state.range(0)));
  std::string blob = SerializeFlat(ToFlat(mr));
  for (auto _ : state) {
    auto back = MovingRegionFromFlat(*ParseFlat(blob));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_Deserialize_MovingRegion)->RangeMultiplier(2)->Range(2, 32);

// [DG98] placement: tuple stays small, arrays page out past the
// threshold.
void BM_AttributeStore_PutGet(benchmark::State& state) {
  MovingPoint mp = MakeTrack(int(state.range(0)));
  FlatValue f = ToFlat(mp);
  std::size_t tuple_bytes = 0, pages = 0;
  for (auto _ : state) {
    AttributeStore store(256);
    std::string tuple = store.Put(f);
    auto back = store.Get(tuple);
    tuple_bytes = tuple.size();
    pages = store.page_store().NumPages();
    benchmark::DoNotOptimize(back);
  }
  state.counters["tuple_bytes"] = double(tuple_bytes);
  state.counters["pages"] = double(pages);
}
BENCHMARK(BM_AttributeStore_PutGet)->RangeMultiplier(4)->Range(4, 4096);

// -- device scan experiments (EXPERIMENTS.md, mmap vs file) ------------------
//
// One MODBPAGE file of spilled blobs, scanned through a BufferPool far
// smaller than the working set, so every scan pays real device reads.
// FilePageDevice pays a pread syscall + copy-in per page; MmapPageDevice
// serves the same page as a pointer into the mapping. "Warm" means the
// OS cache (and mapping) is primed — the steady state of a resident
// server — and is what the bench_compare --storage ratio gate reads.
// "Cold" re-opens the device and pool per iteration, adding the open +
// first-fault cost.

constexpr int kScanBlobs = 64;
constexpr std::size_t kScanBlobBytes = 3 * kSpillPayloadSize + 1000;

struct ScanFile {
  std::string path;
  std::vector<SpillLocator> locs;
  bool ok = false;
};

// Written once per process (FilePageDevice and MmapPageDevice share the
// format, so both benches open the same file).
const ScanFile& GetScanFile() {
  static const ScanFile* file = [] {
    auto* f = new ScanFile;
    f->path = (std::filesystem::temp_directory_path() /
               "modb_bench_device_scan.bin")
                  .string();
    std::error_code ec;
    std::filesystem::remove(f->path, ec);  // stale copy from a prior run
    auto dev = FilePageDevice::Create(f->path);
    if (!dev.ok()) return f;
    for (int i = 0; i < kScanBlobs; ++i) {
      std::string blob(kScanBlobBytes, char('a' + i % 26));
      auto loc = SpillBlob(&*dev, blob);
      if (!loc.ok()) return f;
      f->locs.push_back(*loc);
    }
    f->ok = dev->Sync().ok();
    return f;
  }();
  return *file;
}

// Page-granular sequential scan: pin every data page in order through
// the pool (with a readahead hint window) and read every byte. This is
// the device contract itself — what the file device answers with a
// pread + copy-in and the mmap device with a pointer into the mapping —
// and the shape paged unit scans (temporal/paged_ops.h) put on the
// pool. The bench_compare --storage warm ratio gate reads these rows.
bool ScanPagesOnce(BufferPool* pool, std::uint32_t num_pages) {
  constexpr std::uint32_t kWindow = 16;
  std::uint64_t sum = 0;
  for (std::uint32_t p = 0; p < num_pages; ++p) {
    if (p % kWindow == 0) {
      pool->Prefetch(p, std::min(kWindow, num_pages - p));
    }
    auto ref = pool->Pin(p);
    if (!ref.ok()) return false;
    const char* d = ref->data();
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < kPageSize; ++i) s += std::uint8_t(d[i]);
    sum += s;
  }
  benchmark::DoNotOptimize(sum);
  return true;
}

template <typename Device>
void RunWarmScan(benchmark::State& state,
                 Result<Device> (*open)(const std::string&)) {
  const ScanFile& f = GetScanFile();
  if (!f.ok) {
    state.SkipWithError("scan file setup failed");
    return;
  }
  Result<Device> dev = open(f.path);
  if (!dev.ok()) {
    state.SkipWithError("device open failed");
    return;
  }
  const std::uint32_t num_pages = std::uint32_t(dev->NumPages());
  BufferPool pool(&*dev, 8);  // << working set: every scan hits the device
  if (!ScanPagesOnce(&pool, num_pages)) {  // prime the OS cache / mapping
    state.SkipWithError("prime scan failed");
    return;
  }
  for (auto _ : state) {
    if (!ScanPagesOnce(&pool, num_pages)) state.SkipWithError("scan failed");
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * num_pages);
  state.SetBytesProcessed(int64_t(state.iterations()) * num_pages *
                          int64_t(kPageSize));
}

void BM_SpilledScanWarm_File(benchmark::State& state) {
  RunWarmScan<FilePageDevice>(state, &FilePageDevice::Open);
}
BENCHMARK(BM_SpilledScanWarm_File);

void BM_SpilledScanWarm_Mmap(benchmark::State& state) {
  RunWarmScan<MmapPageDevice>(state, &MmapPageDevice::Open);
}
BENCHMARK(BM_SpilledScanWarm_Mmap);

template <typename Device>
void RunColdScan(benchmark::State& state,
                 Result<Device> (*open)(const std::string&)) {
  const ScanFile& f = GetScanFile();
  if (!f.ok) {
    state.SkipWithError("scan file setup failed");
    return;
  }
  for (auto _ : state) {
    Result<Device> dev = open(f.path);
    if (!dev.ok()) {
      state.SkipWithError("device open failed");
      return;
    }
    BufferPool pool(&*dev, 8);
    if (!ScanPagesOnce(&pool, std::uint32_t(dev->NumPages()))) {
      state.SkipWithError("scan failed");
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}

void BM_SpilledScanCold_File(benchmark::State& state) {
  RunColdScan<FilePageDevice>(state, &FilePageDevice::Open);
}
BENCHMARK(BM_SpilledScanCold_File);

void BM_SpilledScanCold_Mmap(benchmark::State& state) {
  RunColdScan<MmapPageDevice>(state, &MmapPageDevice::Open);
}
BENCHMARK(BM_SpilledScanCold_Mmap);

// Blob-level warm scan: the same pages pulled through ReadSpilledBlob,
// adding per-page header verification (CRC over the payload) and the
// payload reassembly copy on top of the device read. Informational —
// it shows how much of the end-to-end spill read the device itself is.
template <typename Device>
void RunBlobScan(benchmark::State& state,
                 Result<Device> (*open)(const std::string&)) {
  const ScanFile& f = GetScanFile();
  if (!f.ok) {
    state.SkipWithError("scan file setup failed");
    return;
  }
  Result<Device> dev = open(f.path);
  if (!dev.ok()) {
    state.SkipWithError("device open failed");
    return;
  }
  BufferPool pool(&*dev, 8);
  for (auto _ : state) {
    std::size_t bytes = 0;
    for (const SpillLocator& loc : f.locs) {
      auto blob = ReadSpilledBlob(&pool, loc);
      if (!blob.ok()) state.SkipWithError("blob read failed");
      bytes += blob->size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kScanBlobs);
  state.SetBytesProcessed(int64_t(state.iterations()) * kScanBlobs *
                          int64_t(kScanBlobBytes));
}

void BM_SpilledBlobScanWarm_File(benchmark::State& state) {
  RunBlobScan<FilePageDevice>(state, &FilePageDevice::Open);
}
BENCHMARK(BM_SpilledBlobScanWarm_File);

void BM_SpilledBlobScanWarm_Mmap(benchmark::State& state) {
  RunBlobScan<MmapPageDevice>(state, &MmapPageDevice::Open);
}
BENCHMARK(BM_SpilledBlobScanWarm_Mmap);

// Epoch-pinned snapshot readers against a committed store (mmap device):
// each operation pins the current epoch, reads one root through the pin,
// and releases — the per-request pattern Db::Run uses. Run at 4 threads
// to expose the lock-free pin-read path; the items/s floor in
// bench_compare --storage warn-skips on hosts with fewer than 4 CPUs.
void BM_EpochPinnedReaders(benchmark::State& state) {
  static VersionedSpillStore* store = [] {
    const std::string path = (std::filesystem::temp_directory_path() /
                              "modb_bench_pin_store.bin")
                                 .string();
    VersionedSpillStore::Options options;
    options.device = StoreDeviceKind::kMmap;
    options.pool_capacity = 64;
    auto created = VersionedSpillStore::Create(path, options);
    if (!created.ok()) return static_cast<VersionedSpillStore*>(nullptr);
    auto* s = new VersionedSpillStore(std::move(*created));
    for (int i = 0; i < 8; ++i) {
      if (!s->StageBlob(std::string(5000, char('a' + i)),
                        SpillValueType::kOpaque)
               .ok()) {
        return static_cast<VersionedSpillStore*>(nullptr);
      }
    }
    if (!s->Commit().ok()) return static_cast<VersionedSpillStore*>(nullptr);
    return s;
  }();
  if (store == nullptr) {
    state.SkipWithError("store setup failed");
    return;
  }
  std::size_t i = std::size_t(state.thread_index());
  for (auto _ : state) {
    VersionedSpillStore::EpochPin pin = store->PinEpoch();
    auto blob = store->ReadRootBlob(pin, i++ % pin.NumRoots());
    if (!blob.ok()) state.SkipWithError("pinned read failed");
    benchmark::DoNotOptimize(blob->data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_EpochPinnedReaders)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace modb

