// Shared main() for every bench binary, replacing benchmark_main: runs
// the registered benchmarks, then exports the global obs metrics
// registry as JSON so each perf record (BENCH_<name>.json) is paired
// with the work-attribution record that explains it (METRICS_<name>.json
// — R-tree node visits, sweep dispatches, page I/O, operator counters).
//
// The output path comes from $MODB_METRICS_OUT (set by the <name>_json
// CMake targets); without it the dump goes to stderr so ad-hoc runs
// still surface the numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string json = modb::obs::Metrics::Global().ToJson();
  const char* out_path = std::getenv("MODB_METRICS_OUT");
  if (out_path != nullptr && out_path[0] != '\0') {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "bench_main: cannot write metrics to %s\n",
                   out_path);
      return 1;
    }
  } else {
    std::fprintf(stderr, "-- metrics --\n%s\n", json.c_str());
  }
  return 0;
}
