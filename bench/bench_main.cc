// Shared main() for every bench binary, replacing benchmark_main: runs
// the registered benchmarks, then exports the global obs metrics
// registry as JSON so each perf record (BENCH_<name>.json) is paired
// with the work-attribution record that explains it (METRICS_<name>.json
// — R-tree node visits, sweep dispatches, page I/O, operator counters).
//
// The output path comes from $MODB_METRICS_OUT (set by the <name>_json
// CMake targets); without it the dump goes to stderr so ad-hoc runs
// still surface the numbers.
//
// Two extras for the honest-benchmark rig:
//  - Every run stamps "modb_build_type" into the benchmark JSON context
//    from the CMake config that compiled THIS binary. The library_build_type
//    field only describes how libbenchmark was built (a debug package on
//    Debian), so bench_compare --require-release trusts this key instead.
//  - `--modb_threads=1,2,4,8` selects the thread counts for binaries that
//    define RegisterScalingBenchmarks (bench_scaling). The flag is consumed
//    here before benchmark::Initialize sees it; registration must happen
//    before Initialize so runtime-registered benchmarks honour filters.

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

#ifndef MODB_BUILD_TYPE
#define MODB_BUILD_TYPE "unknown"
#endif

namespace modb_bench {

// Weak default so binaries without a scaling translation unit link; the
// strong definition in bench_scaling.cc registers the sweep.
__attribute__((weak)) void RegisterScalingBenchmarks(
    const std::vector<int>& threads) {
  (void)threads;
}

namespace {

// Parses "1,2,4,8"; returns false (leaving out untouched) on anything
// that is not a comma list of positive integers.
bool ParseThreadList(const char* text, std::vector<int>* out) {
  std::vector<int> parsed;
  int value = 0;
  bool have_digit = false;
  for (const char* p = text;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + (*p - '0');
      have_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (!have_digit || value <= 0) return false;
      parsed.push_back(value);
      value = 0;
      have_digit = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  if (parsed.empty()) return false;
  *out = std::move(parsed);
  return true;
}

std::string LowerCase(std::string s) {
  for (char& c : s) c = char(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace
}  // namespace modb_bench

int main(int argc, char** argv) {
  std::vector<int> threads = {1, 2, 4, 8};
  constexpr char kThreadsFlag[] = "--modb_threads=";
  constexpr std::size_t kThreadsFlagLen = sizeof(kThreadsFlag) - 1;
  for (int i = 1; i < argc;) {
    if (std::strncmp(argv[i], kThreadsFlag, kThreadsFlagLen) == 0) {
      if (!modb_bench::ParseThreadList(argv[i] + kThreadsFlagLen, &threads)) {
        std::fprintf(stderr,
                     "bench_main: bad %s value '%s' (want e.g. 1,2,4,8)\n",
                     kThreadsFlag, argv[i] + kThreadsFlagLen);
        return 1;
      }
      for (int j = i; j < argc - 1; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  modb_bench::RegisterScalingBenchmarks(threads);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("modb_build_type",
                              modb_bench::LowerCase(MODB_BUILD_TYPE));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::string json = modb::obs::Metrics::Global().ToJson();
  const char* out_path = std::getenv("MODB_METRICS_OUT");
  if (out_path != nullptr && out_path[0] != '\0') {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "bench_main: cannot write metrics to %s\n",
                   out_path);
      return 1;
    }
  } else {
    std::fprintf(stderr, "-- metrics --\n%s\n", json.c_str());
  }
  return 0;
}
