// Experiment C2/D4 (Section 5.2): inside(mpoint, mregion) runs in
// O(n + m + S) — n, m unit counts, S total moving segments — and in
// O(n + m) when the per-pair bounding cubes never intersect.
//
// Series:
//   BM_Inside_Units/n      — sweep the number of units (S fixed/unit).
//   BM_Inside_MSegs/S      — sweep the moving-segment count per unit.
//   BM_Inside_FarApart/n   — disjoint bounding boxes: the O(n+m) path.
//   BM_Inside_NoBBox/n     — ablation: bounding-box filter disabled.

#include <benchmark/benchmark.h>

#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

MovingRegion MakeRegion(int units, int msegs, Point origin) {
  std::mt19937_64 rng(11);
  MovingRegionOptions opts;
  opts.shape.num_vertices = msegs;
  opts.shape.jitter = 0.1;
  opts.shape.radius = 50;
  opts.shape.center = origin;
  opts.num_units = units;
  opts.unit_duration = 4;
  opts.drift = Point(5, 2);
  opts.drift_alternation = Point(1, 2);
  return *GenerateMovingRegion(rng, opts);
}

MovingPoint MakePoint(int units, double extent, Instant t0 = 0) {
  std::mt19937_64 rng(13);
  TrajectoryOptions opts;
  opts.num_units = units;
  opts.start_time = t0;
  opts.unit_duration = 4.0 * 8 / units;  // Align with the region deftime.
  opts.extent = extent;
  opts.max_step = extent / 10;
  return *RandomWalkPoint(rng, opts);
}

void BM_Inside_Units(benchmark::State& state) {
  int n = int(state.range(0));
  MovingRegion mr = MakeRegion(8, 12, Point(60, 60));
  MovingPoint mp = MakePoint(n, 160);
  for (auto _ : state) {
    auto r = Inside(mp, mr);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Inside_Units)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_Inside_MSegs(benchmark::State& state) {
  int msegs = int(state.range(0));
  MovingRegion mr = MakeRegion(4, msegs, Point(60, 60));
  MovingPoint mp = MakePoint(32, 160);
  for (auto _ : state) {
    auto r = Inside(mp, mr);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(msegs);
}
BENCHMARK(BM_Inside_MSegs)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_Inside_FarApart(benchmark::State& state) {
  int n = int(state.range(0));
  // The point walks a region of the plane 100000 units away: every
  // bounding-box test fails, so no crossing computation happens.
  MovingRegion mr = MakeRegion(8, 64, Point(100000, 100000));
  MovingPoint mp = MakePoint(n, 160);
  for (auto _ : state) {
    auto r = Inside(mp, mr);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Inside_FarApart)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_Inside_FarApart_NoBBox(benchmark::State& state) {
  int n = int(state.range(0));
  MovingRegion mr = MakeRegion(8, 64, Point(100000, 100000));
  MovingPoint mp = MakePoint(n, 160);
  InsideOptions options;
  options.use_bounding_boxes = false;
  for (auto _ : state) {
    auto r = Inside(mp, mr, options);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Inside_FarApart_NoBBox)->RangeMultiplier(2)->Range(8, 512);

}  // namespace
}  // namespace modb
