// Experiment T2 (Table 2): the discrete type system, exercised end to
// end. For every type of the catalog: construct a representative value,
// run its flat round trip, and report the representation size as
// counters. The benchmark names double as the implemented-type inventory:
//   int real string bool | point points line region | instant range |
//   const(int/string/bool) ureal upoint upoints uline uregion | mapping.

#include <benchmark/benchmark.h>

#include <random>

#include "gen/region_gen.h"
#include "gen/trajectory_gen.h"
#include "storage/flat.h"

namespace modb {
namespace {

TimeInterval TI(double s, double e) {
  return *TimeInterval::Make(s, e, true, true);
}

template <typename T, typename ToFn, typename FromFn>
void RoundTrip(benchmark::State& state, const T& value, ToFn to, FromFn from) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto flat = to(value);
    bytes = flat.TotalBytes();
    auto back = from(flat);
    benchmark::DoNotOptimize(back);
  }
  state.counters["flat_bytes"] = double(bytes);
}

void BM_Type_Int(benchmark::State& state) {
  RoundTrip(state, IntValue(42), [](const IntValue& v) { return ToFlat(v); },
            [](const FlatValue& f) { return IntFromFlat(f); });
}
BENCHMARK(BM_Type_Int);

void BM_Type_Real(benchmark::State& state) {
  RoundTrip(state, RealValue(3.14),
            [](const RealValue& v) { return ToFlat(v); },
            [](const FlatValue& f) { return RealFromFlat(f); });
}
BENCHMARK(BM_Type_Real);

void BM_Type_Bool(benchmark::State& state) {
  RoundTrip(state, BoolValue(true),
            [](const BoolValue& v) { return ToFlat(v); },
            [](const FlatValue& f) { return BoolFromFlat(f); });
}
BENCHMARK(BM_Type_Bool);

void BM_Type_String(benchmark::State& state) {
  RoundTrip(state, StringValue(std::string("Lufthansa")),
            [](const StringValue& v) { return *ToFlat(v); },
            [](const FlatValue& f) { return StringFromFlat(f); });
}
BENCHMARK(BM_Type_String);

void BM_Type_Point(benchmark::State& state) {
  RoundTrip(state, Point(1, 2), [](const Point& v) { return ToFlat(v); },
            [](const FlatValue& f) { return PointFromFlat(f); });
}
BENCHMARK(BM_Type_Point);

void BM_Type_Points(benchmark::State& state) {
  Points ps = Points::FromVector({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  RoundTrip(state, ps, [](const Points& v) { return ToFlat(v); },
            [](const FlatValue& f) { return PointsFromFlat(f); });
}
BENCHMARK(BM_Type_Points);

void BM_Type_Line(benchmark::State& state) {
  Line l = *Line::Make({*Seg::Make(Point(0, 0), Point(1, 1)),
                        *Seg::Make(Point(2, 0), Point(3, 1)),
                        *Seg::Make(Point(4, 0), Point(5, 1))});
  RoundTrip(state, l, [](const Line& v) { return ToFlat(v); },
            [](const FlatValue& f) { return LineFromFlat(f); });
}
BENCHMARK(BM_Type_Line);

void BM_Type_Region(benchmark::State& state) {
  std::mt19937_64 rng(1);
  RegionGenOptions opts;
  opts.num_vertices = 16;
  opts.with_hole = true;
  Region r = *GenerateRegion(rng, opts);
  RoundTrip(state, r, [](const Region& v) { return ToFlat(v); },
            [](const FlatValue& f) { return RegionFromFlat(f); });
}
BENCHMARK(BM_Type_Region);

void BM_Type_RangeInstant(benchmark::State& state) {
  Periods p = Periods::FromIntervals({TI(0, 1), TI(2, 3), TI(5, 9)});
  RoundTrip(state, p, [](const Periods& v) { return ToFlat(v); },
            [](const FlatValue& f) { return PeriodsFromFlat(f); });
}
BENCHMARK(BM_Type_RangeInstant);

void BM_Type_MappingConstBool(benchmark::State& state) {
  MovingBool m = *MovingBool::Make(
      {*UBool::Make(*TimeInterval::Make(0, 1, true, false), true),
       *UBool::Make(TI(1, 2), false)});
  RoundTrip(state, m, [](const MovingBool& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingBoolFromFlat(f); });
}
BENCHMARK(BM_Type_MappingConstBool);

void BM_Type_MappingConstInt(benchmark::State& state) {
  MovingInt m = *MovingInt::Make({*UInt::Make(TI(0, 5), 7)});
  RoundTrip(state, m, [](const MovingInt& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingIntFromFlat(f); });
}
BENCHMARK(BM_Type_MappingConstInt);

void BM_Type_MappingConstString(benchmark::State& state) {
  MovingString m = *MovingString::Make({*UString::Make(TI(0, 5), "cruise")});
  RoundTrip(state, m, [](const MovingString& v) { return *ToFlat(v); },
            [](const FlatValue& f) { return MovingStringFromFlat(f); });
}
BENCHMARK(BM_Type_MappingConstString);

void BM_Type_MappingUReal(benchmark::State& state) {
  MovingReal m = *MovingReal::Make({*UReal::Make(TI(0, 5), 1, 2, 3, true)});
  RoundTrip(state, m, [](const MovingReal& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingRealFromFlat(f); });
}
BENCHMARK(BM_Type_MappingUReal);

void BM_Type_MappingUPoint(benchmark::State& state) {
  std::mt19937_64 rng(2);
  TrajectoryOptions opts;
  opts.num_units = 16;
  MovingPoint m = *RandomWalkPoint(rng, opts);
  RoundTrip(state, m, [](const MovingPoint& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingPointFromFlat(f); });
}
BENCHMARK(BM_Type_MappingUPoint);

void BM_Type_MappingUPoints(benchmark::State& state) {
  MovingPoints m = *MovingPoints::Make({*UPoints::Make(
      TI(0, 5), {LinearMotion{0, 1, 0, 0}, LinearMotion{5, 0, 5, 0}})});
  RoundTrip(state, m, [](const MovingPoints& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingPointsFromFlat(f); });
}
BENCHMARK(BM_Type_MappingUPoints);

void BM_Type_MappingULine(benchmark::State& state) {
  MSeg ms = *MSeg::FromEndSegments(0, *Seg::Make(Point(0, 0), Point(1, 0)),
                                   5, *Seg::Make(Point(2, 2), Point(3, 2)));
  MovingLine m = *MovingLine::Make({*ULine::Make(TI(0, 5), {ms})});
  RoundTrip(state, m, [](const MovingLine& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingLineFromFlat(f); });
}
BENCHMARK(BM_Type_MappingULine);

void BM_Type_MappingURegion(benchmark::State& state) {
  std::mt19937_64 rng(3);
  MovingRegionOptions opts;
  opts.shape.num_vertices = 8;
  opts.num_units = 2;
  opts.drift = Point(5, 5);
  opts.drift_alternation = Point(1, 1);
  MovingRegion m = *GenerateMovingRegion(rng, opts);
  RoundTrip(state, m, [](const MovingRegion& v) { return ToFlat(v); },
            [](const FlatValue& f) { return MovingRegionFromFlat(f); });
}
BENCHMARK(BM_Type_MappingURegion);

}  // namespace
}  // namespace modb
