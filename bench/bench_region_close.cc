// Experiment D1 (Section 4.1): the `close` operation — building the
// cycle/face structure from a halfsegment soup. The pairwise validity
// check dominates; the grid-accelerated strategy stays near-linear while
// the naive all-pairs baseline grows quadratically (with the x-sorted
// early exit softening it on thin data).

#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "spatial/region_builder.h"

namespace modb {
namespace {

// Segment soup of `rings` square rings arranged in a grid (4 segments
// each), all disjoint — a realistic multi-face region boundary.
std::vector<Seg> RingSoup(int rings) {
  std::vector<Seg> segs;
  int per_row = std::max(1, int(std::sqrt(double(rings))));
  for (int i = 0; i < rings; ++i) {
    double x0 = (i % per_row) * 3.0;
    double y0 = (i / per_row) * 3.0;
    Point a(x0, y0), b(x0 + 2, y0), c(x0 + 2, y0 + 2), d(x0, y0 + 2);
    segs.push_back(*Seg::Make(a, b));
    segs.push_back(*Seg::Make(b, c));
    segs.push_back(*Seg::Make(c, d));
    segs.push_back(*Seg::Make(d, a));
  }
  return segs;
}

// One big jittered polygon with n vertices.
std::vector<Seg> PolygonSoup(int n) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> jitter(-0.2, 0.2);
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * std::numbers::pi * i / n;
    double r = 100 * (1 + jitter(rng));
    ring.push_back(Point(r * std::cos(angle), r * std::sin(angle)));
  }
  std::vector<Seg> segs;
  for (int i = 0; i < n; ++i) {
    segs.push_back(*Seg::Make(ring[std::size_t(i)],
                              ring[std::size_t((i + 1) % n)]));
  }
  return segs;
}

void BM_Close_Grid_ManyFaces(benchmark::State& state) {
  std::vector<Seg> segs = RingSoup(int(state.range(0)));
  for (auto _ : state) {
    auto r = RegionBuilder::Close(segs, RegionBuilder::Validation::kGrid);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Close_Grid_ManyFaces)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity();

void BM_Close_Naive_ManyFaces(benchmark::State& state) {
  std::vector<Seg> segs = RingSoup(int(state.range(0)));
  for (auto _ : state) {
    auto r = RegionBuilder::Close(segs, RegionBuilder::Validation::kNaive);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Close_Naive_ManyFaces)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity();

void BM_Close_Grid_OnePolygon(benchmark::State& state) {
  std::vector<Seg> segs = PolygonSoup(int(state.range(0)));
  for (auto _ : state) {
    auto r = RegionBuilder::Close(segs, RegionBuilder::Validation::kGrid);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Close_Grid_OnePolygon)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity();

void BM_Close_Naive_OnePolygon(benchmark::State& state) {
  std::vector<Seg> segs = PolygonSoup(int(state.range(0)));
  for (auto _ : state) {
    auto r = RegionBuilder::Close(segs, RegionBuilder::Validation::kNaive);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Close_Naive_OnePolygon)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity();

// The plumbline primitive used by inside (Section 5.2).
void BM_Plumbline(benchmark::State& state) {
  std::vector<Seg> segs = PolygonSoup(int(state.range(0)));
  Region r = *RegionBuilder::Close(segs);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> pos(-120, 120);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Contains(Point(pos(rng), pos(rng))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Plumbline)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace modb
