// Spatial-algebra benchmarks: the overlay pipeline (boolean set
// operations feeding the close operation), line canonicalization, and
// the cross-type predicates — the non-temporal operations that temporal
// lifting builds on.

#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <random>

#include "gen/region_gen.h"
#include "spatial/overlay.h"
#include "spatial/spatial_ops.h"

namespace modb {
namespace {

Region Polygon(int n, Point center, uint64_t seed) {
  std::mt19937_64 rng(seed);
  RegionGenOptions opts;
  opts.num_vertices = n;
  opts.radius = 100;
  opts.jitter = 0.2;
  opts.center = center;
  return *GenerateRegion(rng, opts);
}

void BM_Overlay_Union(benchmark::State& state) {
  int n = int(state.range(0));
  Region a = Polygon(n, Point(0, 0), 1);
  Region b = Polygon(n, Point(60, 40), 2);
  for (auto _ : state) {
    auto u = Union(a, b);
    benchmark::DoNotOptimize(u);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Overlay_Union)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Overlay_Intersection(benchmark::State& state) {
  int n = int(state.range(0));
  Region a = Polygon(n, Point(0, 0), 1);
  Region b = Polygon(n, Point(60, 40), 2);
  for (auto _ : state) {
    auto u = Intersection(a, b);
    benchmark::DoNotOptimize(u);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Overlay_Intersection)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity();

void BM_Overlay_Difference(benchmark::State& state) {
  int n = int(state.range(0));
  Region a = Polygon(n, Point(0, 0), 1);
  Region b = Polygon(n, Point(60, 40), 2);
  for (auto _ : state) {
    auto u = Difference(a, b);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_Overlay_Difference)->RangeMultiplier(2)->Range(8, 256);

void BM_Line_Canonical(benchmark::State& state) {
  // Segment soup with collinear chains to merge.
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> pos(0, 1000);
  std::vector<Seg> segs;
  for (int i = 0; i < int(state.range(0)); ++i) {
    double x = pos(rng), y = pos(rng);
    segs.push_back(*Seg::Make(Point(x, y), Point(x + 10, y)));
    if (i % 3 == 0) {
      segs.push_back(*Seg::Make(Point(x + 5, y), Point(x + 15, y)));
    }
  }
  for (auto _ : state) {
    Line l = Line::Canonical(segs);
    benchmark::DoNotOptimize(l);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Line_Canonical)->RangeMultiplier(2)->Range(16, 512);

void BM_Region_Contains(benchmark::State& state) {
  Region r = Polygon(int(state.range(0)), Point(0, 0), 7);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> pos(-130, 130);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Contains(Point(pos(rng), pos(rng))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Region_Contains)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_Region_Distance(benchmark::State& state) {
  Region a = Polygon(int(state.range(0)), Point(0, 0), 1);
  Region b = Polygon(int(state.range(0)), Point(500, 0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpatialDistance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Region_Distance)->RangeMultiplier(2)->Range(8, 256);

}  // namespace
}  // namespace modb
