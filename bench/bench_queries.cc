// Experiments Q1/Q2 (Section 2): the two example queries on the planes
// relation, plus the D4 ablation (unit bounding cubes + R-tree for the
// spatio-temporal join).

#include <benchmark/benchmark.h>

#include "db/query.h"
#include "gen/flights_gen.h"
#include "temporal/lifted_ops.h"

namespace modb {
namespace {

Relation Planes(int flights) {
  FlightsOptions opts;
  opts.num_airports = 12;
  opts.num_flights = flights;
  opts.extent = 10000;
  opts.units_per_flight = 8;
  opts.speed = 800;
  opts.departure_window = 24;
  opts.seed = 99;
  return *GeneratePlanes(opts);
}

// Q1: SELECT … WHERE airline = "Lufthansa" AND
//     length(trajectory(flight)) > 5000.
void BM_Q1_TrajectoryLength(benchmark::State& state) {
  Relation planes = Planes(int(state.range(0)));
  for (auto _ : state) {
    Relation r = *Select(planes, [](const Tuple& t) {
      return std::get<StringValue>(t[kFlightAttrAirline]).value() ==
                 "Lufthansa" &&
             Trajectory(std::get<MovingPoint>(t[kFlightAttrFlight]))
                     .Length() > 5000;
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Q1_TrajectoryLength)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity(benchmark::oN);

bool ClosePred(const Tuple& a, std::size_t i, const Tuple& b, std::size_t j,
               double dist) {
  if (i >= j) return false;
  auto d = LiftedDistance(std::get<MovingPoint>(a[kFlightAttrFlight]),
                          std::get<MovingPoint>(b[kFlightAttrFlight]));
  if (!d.ok() || d->IsEmpty()) return false;
  auto am = AtMin(*d);
  return am.ok() && !am->IsEmpty() && am->Initial().val() < dist;
}

// Q2: the spatio-temporal join via
//     val(initial(atmin(distance(p, q)))) < 50.
void BM_Q2_Join_NestedLoop(benchmark::State& state) {
  Relation planes = Planes(int(state.range(0)));
  for (auto _ : state) {
    Relation r = *NestedLoopJoin(
        planes, planes,
        [](const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
          return ClosePred(a, i, b, j, 50);
        });
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Q2_Join_NestedLoop)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity(benchmark::oNSquared);

// D4 ablation: R-tree over unit bounding cubes prunes candidate pairs.
void BM_Q2_Join_RTree(benchmark::State& state) {
  Relation planes = Planes(int(state.range(0)));
  for (auto _ : state) {
    Relation r = *IndexJoinOnMovingPoint(
        planes, kFlightAttrFlight, planes, kFlightAttrFlight, 50,
        [](const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
          return ClosePred(a, i, b, j, 50);
        });
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Q2_Join_RTree)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

// The probe loop in isolation: the R-tree is built once outside the
// timed region, so iterations measure candidate probing + refinement
// only — the loop the flattened SoA layout and zero-allocation scratch
// target.
void BM_Q2_Join_RTree_Prebuilt(benchmark::State& state) {
  Relation planes = Planes(int(state.range(0)));
  RTree3D index = *BuildMovingPointIndex(planes, kFlightAttrFlight);
  for (auto _ : state) {
    Relation r = *IndexJoinOnMovingPoint(
        planes, kFlightAttrFlight, planes, index, 50,
        [](const Tuple& a, std::size_t i, const Tuple& b, std::size_t j) {
          return ClosePred(a, i, b, j, 50);
        });
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Q2_Join_RTree_Prebuilt)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

// The join predicate in isolation: distance + atmin + initial pipeline.
void BM_Q2_PredicateOnly(benchmark::State& state) {
  Relation planes = Planes(64);
  for (auto _ : state) {
    int hits = 0;
    const auto& p = std::get<MovingPoint>(planes.tuple(0)[kFlightAttrFlight]);
    for (std::size_t j = 1; j < planes.NumTuples(); ++j) {
      const auto& q =
          std::get<MovingPoint>(planes.tuple(j)[kFlightAttrFlight]);
      auto d = LiftedDistance(p, q);
      if (!d.ok() || d->IsEmpty()) continue;
      auto am = AtMin(*d);
      if (am.ok() && !am->IsEmpty() && am->Initial().val() < 50) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Q2_PredicateOnly);

}  // namespace
}  // namespace modb
