// Extension benchmarks: linearization of higher-order motion into the
// sliced representation (Figure 5's refinement idea) and unit-list
// compression by trajectory simplification.

#include <benchmark/benchmark.h>

#include <random>

#include "ext/quadratic_motion.h"
#include "ext/simplify.h"
#include "gen/trajectory_gen.h"

namespace modb {
namespace {

void BM_Linearize_Quadratic(benchmark::State& state) {
  QuadraticMotion q =
      QuadraticMotion::Ballistic(Point(0, 0), Point(100, 200), Point(0, -9.81));
  double tol = 1.0 / double(state.range(0));
  auto iv = *TimeInterval::Make(0, 40, true, true);
  std::size_t units = 0;
  for (auto _ : state) {
    auto mp = Linearize(q, iv, tol);
    units = mp->NumUnits();
    benchmark::DoNotOptimize(mp);
  }
  state.counters["units"] = double(units);
}
BENCHMARK(BM_Linearize_Quadratic)->RangeMultiplier(4)->Range(1, 4096);

void BM_LinearizePath_Sine(benchmark::State& state) {
  auto wave = [](Instant t) { return Point(t, 50 * std::sin(t / 5)); };
  double tol = 10.0 / double(state.range(0));
  auto iv = *TimeInterval::Make(0, 100, true, true);
  std::size_t units = 0;
  for (auto _ : state) {
    auto mp = LinearizePath(wave, iv, tol);
    units = mp->NumUnits();
    benchmark::DoNotOptimize(mp);
  }
  state.counters["units"] = double(units);
}
BENCHMARK(BM_LinearizePath_Sine)->RangeMultiplier(4)->Range(1, 1024);

void BM_Simplify(benchmark::State& state) {
  std::mt19937_64 rng(3);
  TrajectoryOptions opts;
  opts.num_units = int(state.range(0));
  opts.max_step = 10;
  MovingPoint mp = *RandomWalkPoint(rng, opts);
  std::size_t units = 0;
  for (auto _ : state) {
    auto simple = SimplifyTrajectory(mp, 5.0);
    units = simple->NumUnits();
    benchmark::DoNotOptimize(simple);
  }
  state.counters["units_out"] = double(units);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Simplify)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

}  // namespace
}  // namespace modb
