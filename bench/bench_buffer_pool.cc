// Buffer-pool and spill experiments (EXPERIMENTS.md P3): what paging the
// Section-4 representation out to a device costs. Three regimes per
// query: cold (pages on the device, nothing cached), pool-warm (pages
// resident in the buffer pool but the value not decoded), and
// materialized-warm (the Spilled handle's memoized value, the steady
// state of a repeated query) — compared against the pure in-memory
// AtInstantBatch sweep. Also raw pool pin throughput at several
// capacity/working-set ratios, which is where the LRU hit rate shows up.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "gen/trajectory_gen.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/spill.h"
#include "temporal/batch_ops.h"
#include "temporal/paged_ops.h"
#include "validate/validate.h"

namespace modb {
namespace {

MovingPoint Trajectory(int units, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TrajectoryOptions opts;
  opts.num_units = units;
  return *RandomWalkPoint(rng, opts);
}

std::vector<Instant> SortedInstants(int k, int units, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0.0, double(units));
  std::vector<Instant> out(std::size_t(k), 0.0);
  for (Instant& t : out) t = d(rng);
  std::sort(out.begin(), out.end());
  return out;
}

// Raw pin throughput: a zipf-ish skewed page access stream against pools
// whose capacity is range(1) percent of the working set. The hit/miss/
// eviction counters land in METRICS_buffer_pool.json.
void BM_BufferPool_PinThroughput(benchmark::State& state) {
  const int pages = int(state.range(0));
  const std::size_t capacity =
      std::size_t(std::max<int64_t>(1, pages * state.range(1) / 100));
  PageStore store;
  (void)*store.AllocatePages(uint32_t(pages));
  BufferPool pool(&store, capacity);

  // Skewed stream: 80% of accesses hit the first 20% of pages.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<uint32_t> stream(4096);
  for (uint32_t& p : stream) {
    if (coin(rng) < 0.8) {
      p = uint32_t(coin(rng) * pages * 0.2);
    } else {
      p = uint32_t(coin(rng) * pages);
    }
    if (p >= uint32_t(pages)) p = uint32_t(pages) - 1;
  }

  std::size_t i = 0;
  for (auto _ : state) {
    auto ref = pool.Pin(stream[i++ & 4095]);
    if (!ref.ok()) state.SkipWithError("pin failed");
    benchmark::DoNotOptimize(ref->data()[0]);
  }
  BufferPoolStats stats = pool.stats();
  state.counters["hit_rate"] = benchmark::Counter(
      double(stats.hits) / double(std::max<std::uint64_t>(
                               1, stats.hits + stats.misses)));
  state.counters["evictions"] = benchmark::Counter(double(stats.evictions));
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BufferPool_PinThroughput)
    ->ArgsProduct({{4096}, {5, 25, 100}})
    ->ArgNames({"pages", "cap_pct"});

// The in-memory baseline every spilled regime is measured against.
void BM_AtInstantBatch_InMemory(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  mp.BuildSearchIndex();
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  std::vector<Intime<Point>> out;
  BatchScratch scratch;
  for (auto _ : state) {
    if (!AtInstantBatchInto(mp, instants, &out, &scratch).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_InMemory)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// Cold: every iteration drops both caches, so the query pays device
// reads, checksum verification, flat parsing, and decoding.
void BM_AtInstantBatch_SpilledCold(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  PageStore store;
  auto spilled = *Spilled<MovingPoint>::Spill(mp, &store);
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  BufferPool pool(&store, 1024);
  std::vector<Intime<Point>> out;
  for (auto _ : state) {
    state.PauseTiming();
    spilled.Release();
    if (!pool.DropAll().ok()) state.SkipWithError("drop failed");
    state.ResumeTiming();
    if (!AtInstantBatchSpilled(&spilled, &pool, instants, &out).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["spill_pages"] =
      benchmark::Counter(double(spilled.locator().num_pages));
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_SpilledCold)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// Pool-warm: the decoded value is dropped each iteration but the pages
// stay resident, isolating verify+parse+decode from device reads.
void BM_AtInstantBatch_SpilledPoolWarm(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  PageStore store;
  auto spilled = *Spilled<MovingPoint>::Spill(mp, &store);
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  BufferPool pool(&store, 1024);
  std::vector<Intime<Point>> out;
  for (auto _ : state) {
    state.PauseTiming();
    spilled.Release();
    state.ResumeTiming();
    if (!AtInstantBatchSpilled(&spilled, &pool, instants, &out).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_SpilledPoolWarm)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// Materialized-warm: the memoized value answers every query after the
// first — the steady state, and the regime the 2× acceptance bound in
// ISSUE.md is about.
void BM_AtInstantBatch_SpilledWarm(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  PageStore store;
  auto spilled = *Spilled<MovingPoint>::Spill(mp, &store);
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  BufferPool pool(&store, 1024);
  std::vector<Intime<Point>> out;
  // Prime the caches once, outside the timed region.
  (void)AtInstantBatchSpilled(&spilled, &pool, instants, &out);
  for (auto _ : state) {
    if (!AtInstantBatchSpilled(&spilled, &pool, instants, &out).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_SpilledWarm)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// Materialized-warm with validation-on-load: identical to SpilledWarm
// except the value was admitted through LoadValidated (the Section-3
// invariant pass recovery uses). Validation runs once at decode time,
// so the warm delta against BM_AtInstantBatch_SpilledWarm is the
// steady-state cost of running validated — the acceptance bound is 3%.
void BM_AtInstantBatch_SpilledWarmValidated(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  PageStore store;
  auto spilled = *Spilled<MovingPoint>::Spill(mp, &store);
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  BufferPool pool(&store, 1024);
  std::vector<Intime<Point>> out;
  // Prime through the validated path: decode + invariant check once.
  auto primed = spilled.LoadValidated(&pool, validate::MappingValidator{},
                                      /*build_search_index=*/true);
  if (!primed.ok()) {
    state.SkipWithError("validated load failed");
    return;
  }
  for (auto _ : state) {
    if (!AtInstantBatchSpilled(&spilled, &pool, instants, &out).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_SpilledWarmValidated)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// Cold with validation-on-load: the full price of admitting a value
// through the invariant pass — decode plus one linear scan per load.
void BM_AtInstantBatch_SpilledColdValidated(benchmark::State& state) {
  const int units = int(state.range(0));
  const int k = int(state.range(1));
  MovingPoint mp = Trajectory(units, 7);
  PageStore store;
  auto spilled = *Spilled<MovingPoint>::Spill(mp, &store);
  std::vector<Instant> instants = SortedInstants(k, units, 13);
  BufferPool pool(&store, 1024);
  std::vector<Intime<Point>> out;
  for (auto _ : state) {
    state.PauseTiming();
    spilled.Release();
    if (!pool.DropAll().ok()) state.SkipWithError("drop failed");
    state.ResumeTiming();
    auto loaded = spilled.LoadValidated(&pool, validate::MappingValidator{},
                                        /*build_search_index=*/true);
    if (!loaded.ok()) state.SkipWithError("validated load failed");
    if (!AtInstantBatchSpilled(&spilled, &pool, instants, &out).ok()) {
      state.SkipWithError("batch failed");
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * k);
}
BENCHMARK(BM_AtInstantBatch_SpilledColdValidated)
    ->ArgsProduct({{10000}, {1000}})
    ->ArgNames({"units", "k"});

// A scan over a spilled relation through a pool smaller than the
// relation: the many-values shape of Section 4.3, where the pool is the
// only thing bounding memory.
void BM_SpilledRelationScan(benchmark::State& state) {
  const int rows = int(state.range(0));
  const int units = 500;
  PageStore store;
  std::vector<Spilled<MovingPoint>> relation;
  relation.reserve(std::size_t(rows));
  for (int i = 0; i < rows; ++i) {
    relation.push_back(
        *Spilled<MovingPoint>::Spill(Trajectory(units, 100 + i), &store));
  }
  std::vector<Instant> instants = SortedInstants(64, units, 13);
  BufferPool pool(&store, 64);  // far smaller than the relation
  std::vector<Intime<Point>> out;
  for (auto _ : state) {
    for (auto& row : relation) {
      if (!AtInstantBatchSpilled(&row, &pool, instants, &out).ok()) {
        state.SkipWithError("scan failed");
      }
      benchmark::DoNotOptimize(out.data());
      row.Release();
    }
  }
  BufferPoolStats stats = pool.stats();
  state.counters["hit_rate"] = benchmark::Counter(
      double(stats.hits) / double(std::max<std::uint64_t>(
                               1, stats.hits + stats.misses)));
  state.SetItemsProcessed(int64_t(state.iterations()) * rows);
}
BENCHMARK(BM_SpilledRelationScan)->Arg(32)->ArgName("rows");

}  // namespace
}  // namespace modb
